// hic-report — bench-history ingestion, paper-claims checking and the
// measured-vs-constraint dashboard.
//
//   hic-report [options]
//
//   --bench-dir <dir>       where the BENCH_*.json files live (default .)
//   --history <dir>         history store root (default bench/history)
//   --ingest                ingest BENCH_*.json from --bench-dir into the
//                           history store before reporting
//   --run-id <id>           run id stamped onto ingested records
//   --timestamp <iso8601>   timestamp stamped onto ingested records
//   --emit=dashboard-md     measured-vs-constraint dashboard (default)
//   --emit=experiments-md   regenerate EXPERIMENTS.md's numeric tables
//   --emit=html             single-file HTML dashboard with sparklines
//   --out <path>            write the emitted report there (default stdout)
//   --check                 evaluate the paper-claim constraints and the
//                           median/MAD regression gate; fail on violation
//   --check-drift <file>    verify every regenerated table row appears
//                           verbatim in <file> (EXPERIMENTS.md)
//   --threshold k=pct       per-metric regression threshold override
//                           (repeatable); bare number sets the default
//   --diff <bundleA> <bundleB>
//                           append the hic-diff cross-run comparison
//                           section (trace alignment + §4-style delta
//                           tables) to the dashboard-md report; bundles
//                           are directories from hicc --trace=bundle
//
// Exit status:
//   0  success / all checks green
//   1  --check found a constraint violation or a bench regression
//   2  usage error
//   3  --check could not run (no history, missing bench data, schema skew)
//   5  --check-drift found committed tables diverging from regenerated

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "diffview/delta.h"
#include "perf/compare.h"
#include "perf/constraints.h"
#include "perf/history.h"
#include "perf/report.h"
#include "support/strings.h"

using namespace hicsync;

namespace {

constexpr const char* kUsageBody =
    "  --bench-dir <dir> | --history <dir>\n"
    "  --ingest [--run-id <id>] [--timestamp <iso8601>]\n"
    "  --emit=dashboard-md|experiments-md|html [--out <path>]\n"
    "  --check | --check-drift <file>\n"
    "  --threshold <key>=<pct> | --threshold <pct>\n"
    "  --diff <bundleA> <bundleB>\n"
    "exit codes: 0 ok, 1 check failed, 2 usage, 3 missing data, 5 drift\n";

void usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [options]\n%s", argv0, kUsageBody);
}

bool write_output(const std::string& out_path, const std::string& body) {
  if (out_path.empty()) {
    std::printf("%s", body.c_str());
    return true;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write '%s'\n", out_path.c_str());
    return false;
  }
  out << body;
  std::printf("wrote %s\n", out_path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string bench_dir = ".";
  std::string history_dir = "bench/history";
  std::string emit = "dashboard-md";
  std::string out_path;
  std::string run_id = "local";
  std::string timestamp;
  std::string drift_file;
  std::string diff_a;
  std::string diff_b;
  bool ingest = false;
  bool check = false;
  bool emit_explicit = false;
  perf::CompareOptions compare_options;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--bench-dir") {
      bench_dir = next();
    } else if (arg == "--history") {
      history_dir = next();
    } else if (arg == "--ingest") {
      ingest = true;
    } else if (arg == "--run-id") {
      run_id = next();
    } else if (arg == "--timestamp") {
      timestamp = next();
    } else if (arg == "--emit" || arg.rfind("--emit=", 0) == 0) {
      emit = arg == "--emit" ? next() : arg.substr(std::strlen("--emit="));
      emit_explicit = true;
      if (emit != "dashboard-md" && emit != "experiments-md" &&
          emit != "html") {
        std::fprintf(stderr, "unknown --emit format '%s'\n", emit.c_str());
        return 2;
      }
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--check-drift") {
      drift_file = next();
    } else if (arg == "--diff") {
      diff_a = next();
      diff_b = next();
    } else if (arg == "--threshold") {
      std::string spec = next();
      std::size_t eq = spec.find('=');
      char* end = nullptr;
      if (eq == std::string::npos) {
        compare_options.default_threshold_pct =
            std::strtod(spec.c_str(), &end);
        if (end == nullptr || *end != '\0') {
          std::fprintf(stderr, "bad --threshold '%s'\n", spec.c_str());
          return 2;
        }
      } else {
        const std::string key = spec.substr(0, eq);
        const std::string pct = spec.substr(eq + 1);
        double value = std::strtod(pct.c_str(), &end);
        if (key.empty() || end == nullptr || *end != '\0') {
          std::fprintf(stderr, "bad --threshold '%s'\n", spec.c_str());
          return 2;
        }
        compare_options.threshold_pct[key] = value;
      }
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  perf::HistoryStore store(history_dir);
  if (ingest) {
    std::string error;
    int n = store.ingest_directory(bench_dir, run_id, timestamp, &error);
    if (n < 0) {
      std::fprintf(stderr, "ingest failed: %s\n", error.c_str());
      return 2;
    }
    std::fprintf(stderr, "ingested %d BENCH_*.json file(s) from %s into %s\n",
                 n, bench_dir.c_str(), store.root().c_str());
  }

  perf::ReportInputs inputs = perf::ReportInputs::from_store(store);

  // Constraint + regression evaluation feeds both the dashboards and
  // --check, so compute it once.
  std::vector<perf::ConstraintResult> constraints =
      perf::check_constraints(inputs.latest);
  std::map<std::string, perf::CompareResult> comparisons;
  for (const auto& [bench, runs] : inputs.history) {
    comparisons.emplace(bench, perf::compare_runs(runs, compare_options));
  }

  int exit_code = 0;

  if (!drift_file.empty()) {
    std::ifstream in(drift_file);
    if (!in) {
      std::fprintf(stderr, "cannot open '%s'\n", drift_file.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string generated = perf::emit_experiments_md(inputs);
    std::vector<std::string> missing =
        perf::check_drift(ss.str(), generated);
    if (inputs.latest.empty()) {
      std::fprintf(stderr, "--check-drift: no bench history to regenerate "
                           "from\n");
      return 3;
    }
    if (!missing.empty()) {
      std::fprintf(stderr,
                   "--check-drift: %zu regenerated table row(s) missing "
                   "from %s:\n",
                   missing.size(), drift_file.c_str());
      for (const std::string& line : missing) {
        std::fprintf(stderr, "  %s\n", line.c_str());
      }
      return 5;
    }
    std::fprintf(stderr, "--check-drift: %s matches the regenerated "
                         "tables\n",
                 drift_file.c_str());
  }

  if (check) {
    if (inputs.latest.empty()) {
      std::fprintf(stderr, "--check: history store '%s' is empty\n",
                   store.root().c_str());
      return 3;
    }
    int failed = 0;
    int missing = 0;
    for (const perf::ConstraintResult& r : constraints) {
      if (r.status == perf::ConstraintStatus::Fail) {
        std::fprintf(stderr, "CONSTRAINT FAIL %s (%s): %s\n",
                     r.constraint.id.c_str(),
                     r.constraint.description.c_str(), r.detail.c_str());
        ++failed;
      } else if (r.status == perf::ConstraintStatus::MissingData) {
        std::fprintf(stderr, "constraint %s: %s\n", r.constraint.id.c_str(),
                     r.detail.c_str());
        ++missing;
      }
    }
    bool skew = false;
    int regressions = 0;
    for (const auto& [bench, cmp] : comparisons) {
      if (cmp.overall == perf::Verdict::SchemaSkew) {
        std::fprintf(stderr, "SCHEMA SKEW in history of %s\n", bench.c_str());
        skew = true;
      }
      for (const perf::MetricDelta* d : cmp.regressions()) {
        std::fprintf(stderr,
                     "REGRESSION %s.%s: %+.2f%% (median %.6g -> %.6g)\n",
                     bench.c_str(), d->key.c_str(), d->delta_pct,
                     d->baseline_median, d->latest);
        ++regressions;
      }
    }
    std::fprintf(stderr,
                 "--check: %zu constraints (%d failed, %d missing data), "
                 "%d regression(s)\n",
                 constraints.size(), failed, missing, regressions);
    if (failed > 0 || regressions > 0) {
      exit_code = 1;
    } else if (skew) {
      exit_code = 3;
    }
  }

  // Emit the requested report (skipped when the invocation was check-only
  // with the default emit target and no --out). --diff forces the
  // dashboard out even on a check-only invocation: the comparison section
  // is the requested artifact.
  const bool check_only = (check || !drift_file.empty()) && !emit_explicit &&
                          out_path.empty() && diff_a.empty();
  if (!check_only) {
    std::string body;
    if (emit == "experiments-md") {
      body = perf::emit_experiments_md(inputs);
    } else if (emit == "html") {
      body = perf::emit_html(inputs, constraints, comparisons);
    } else {
      body = perf::emit_dashboard_md(inputs, constraints, comparisons);
    }
    if (!diff_a.empty() && emit == "dashboard-md") {
      diffview::Bundle a;
      diffview::Bundle b;
      std::string error;
      if (!diffview::load_bundle(diff_a, &a, &error) ||
          !diffview::load_bundle(diff_b, &b, &error)) {
        std::fprintf(stderr, "--diff: %s\n", error.c_str());
        return 2;
      }
      body += "\n" + diffview::diff_bundles(a, b).markdown();
    }
    if (!write_output(out_path, body)) return 2;
  }
  return exit_code;
}
