// hic-cover — coverage-DB merging, reporting and threshold gating.
//
//   hic-cover [options] <db.jsonl>...
//
//   --list                  print the covergroup catalogue and exit
//   --report=md|json        render the merged coverage + hole report
//                           (md is the default action when no mode given)
//   --merge                 write the merged DBs as one JSONL record
//   --out <path>            write the report/merged record there
//                           (default stdout)
//   --check                 gate: fail when bin coverage < --min
//   --min <pct>             threshold for --check (required with it)
//   --group <prefix>        restrict --check to covergroups whose name
//                           starts with <prefix> (e.g. arbitrated.fsm.state)
//
// Inputs are JSONL coverage DBs appended by `hicc --cover=out.jsonl`; any
// number of files/records merge (union of groups and bins, hits sum).
// Zero-hit bins survive the round trip, so holes stay visible across runs.
//
// Exit status:
//   0  success / coverage at or above the threshold
//   1  --check found coverage below the threshold
//   2  usage error
//   3  no coverage data (no input files, unreadable file, malformed or
//      schema-skewed record)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "cover/db.h"
#include "cover/registry.h"
#include "cover/report.h"

using namespace hicsync;

namespace {

constexpr const char* kUsageBody =
    "  --list\n"
    "  --report=md|json [--out <path>]\n"
    "  --merge [--out <path>]\n"
    "  --check --min <pct> [--group <prefix>]\n"
    "exit codes: 0 ok, 1 below threshold, 2 usage, 3 no coverage data\n";

void usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [options] <db.jsonl>...\n%s", argv0,
               kUsageBody);
}

void list_covergroups() {
  std::printf("registered covergroups (qualified as <org>.<id>):\n");
  for (const auto& info : cover::CoverRegistry::builtin().infos()) {
    const char* scope = info.arbitrated_only    ? " [arbitrated only]"
                        : info.eventdriven_only ? " [event-driven only]"
                                                : "";
    std::printf("  %-20s %s%s\n", info.id, info.description, scope);
  }
}

bool write_output(const std::string& out_path, const std::string& body) {
  if (out_path.empty()) {
    std::printf("%s", body.c_str());
    return true;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write '%s'\n", out_path.c_str());
    return false;
  }
  out << body;
  std::printf("wrote %s\n", out_path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  std::string report_format;
  std::string out_path;
  std::string group_prefix;
  bool list = false;
  bool merge = false;
  bool check = false;
  double min_pct = -1.0;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--list") {
      list = true;
    } else if (arg == "--report" || arg.rfind("--report=", 0) == 0) {
      report_format =
          arg == "--report" ? "md" : arg.substr(std::strlen("--report="));
      if (report_format != "md" && report_format != "json") {
        std::fprintf(stderr, "unknown --report format '%s'\n",
                     report_format.c_str());
        return 2;
      }
    } else if (arg == "--merge") {
      merge = true;
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--min") {
      min_pct = std::atof(next());
    } else if (arg.rfind("--min=", 0) == 0) {
      min_pct = std::atof(arg.substr(std::strlen("--min=")).c_str());
    } else if (arg == "--group") {
      group_prefix = next();
    } else if (arg.rfind("--group=", 0) == 0) {
      group_prefix = arg.substr(std::strlen("--group="));
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    } else {
      inputs.push_back(arg);
    }
  }

  if (list) {
    list_covergroups();
    if (inputs.empty() && !merge && !check && report_format.empty()) {
      return 0;
    }
  }
  if (check && min_pct < 0.0) {
    std::fprintf(stderr, "--check needs --min <pct>\n");
    usage(argv[0]);
    return 2;
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "no coverage DB files given\n");
    usage(argv[0]);
    return 3;
  }

  cover::CoverageModel model;
  int total_records = 0;
  for (const std::string& path : inputs) {
    std::string error;
    int records = 0;
    if (!cover::load_file(path, &model, &error, &records)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 3;
    }
    total_records += records;
  }
  if (total_records == 0) {
    std::fprintf(stderr, "no coverage records in the given files\n");
    return 3;
  }

  if (merge) {
    const std::string record =
        cover::to_record(model, "merged", "merged") + "\n";
    if (!write_output(out_path, record)) return 2;
  }

  // Rendering the report is the default action.
  if (!report_format.empty() || (!merge && !check)) {
    const std::string body = report_format == "json"
                                 ? cover::emit_report_json(model) + "\n"
                                 : cover::emit_report_md(model);
    if (!write_output(out_path, body)) return 2;
  }

  if (check) {
    const cover::CheckResult result =
        cover::check_coverage(model, min_pct, group_prefix);
    if (!result.ok) {
      std::fprintf(stderr, "coverage check FAILED:\n%s",
                   result.detail.c_str());
      return 1;
    }
    std::printf("coverage check ok (%s >= %s over %d record(s))\n",
                group_prefix.empty() ? "overall" : group_prefix.c_str(),
                cover::format_pct(min_pct).c_str(), total_records);
  }
  return 0;
}
