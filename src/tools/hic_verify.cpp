// hic-verify — explicit-state model checker for hic programs.
//
//   hic-verify [options] <file.hic | ->
//
//   --org arbitrated|event-driven   check one organization (default: both)
//   --max-states <n>                state budget (default 1000000)
//   --max-depth <n>                 BFS depth budget (default unlimited)
//   --no-por                        disable partial-order reduction
//   --no-bounds                     skip the blocking-bound computation
//   --replay                        re-run each refutation through the
//                                   cycle-accurate simulator (sim::SystemSim
//                                   on the trace bus) and report whether it
//                                   reproduces
//   --replay-max-cycles <n>         replay cycle budget (default 20000)
//   --cex-out <path>                write refutation counterexamples as JSON
//   --infer                         infer producer/consumer pragmas (use-def)
//   --json                          machine-readable results on stdout
//
// Proves or refutes, per organization: deadlock-freedom, absence of runtime
// consume-before-produce, bounded blocking under round-robin fairness (with
// a concrete worst-case bound per consumer), and dependency-list occupancy
// within the generated CAM capacity. See docs/VERIFICATION.md.
//
// Exit status:
//   0  all checked properties proved for every requested organization
//   1  compile error (parse/sema reported errors)
//   2  usage error
//   3  a budget (states or depth) was exhausted: no refutation, but
//      unproved properties are inconclusive (raise --max-states /
//      --max-depth, or fall back to hic-bound for sound static bounds)
//   5  a property was refuted (counterexample reported)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/compiler.h"
#include "support/json.h"
#include "verify/checker.h"
#include "verify/replay.h"

using namespace hicsync;

namespace {

constexpr const char* kUsageBody =
    "  --org arbitrated|event-driven   (default: check both)\n"
    "  --max-states <n>\n"
    "  --max-depth <n>\n"
    "  --no-por\n"
    "  --no-bounds\n"
    "  --replay [--replay-max-cycles <n>]\n"
    "  --cex-out <path>\n"
    "  --infer\n"
    "  --json\n"
    // One source line: the usage_docs_in_sync ctest greps this exact table
    // here and in README.md.
    "exit codes: 0 verified, 1 compile error, 2 usage, 3 inconclusive, 5 refuted\n";  // NOLINT(whitespace/line_length)

void usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [options] <file.hic | ->\n%s", argv0,
               kUsageBody);
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::vector<sim::OrgKind> orgs;
  verify::VerifyOptions vopts;
  vopts.enabled = true;
  bool do_replay = false;
  verify::ReplayOptions ropts;
  std::string cex_out;
  bool infer = false;
  bool json_out = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--org") {
      std::string org = next();
      if (org == "arbitrated") {
        orgs.push_back(sim::OrgKind::Arbitrated);
      } else if (org == "event-driven") {
        orgs.push_back(sim::OrgKind::EventDriven);
      } else {
        std::fprintf(stderr, "unknown organization '%s'\n", org.c_str());
        return 2;
      }
    } else if (arg == "--max-states") {
      vopts.max_states = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--max-depth") {
      vopts.max_depth = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--no-por") {
      vopts.por = false;
    } else if (arg == "--no-bounds") {
      vopts.bounds = false;
    } else if (arg == "--replay") {
      do_replay = true;
    } else if (arg == "--replay-max-cycles") {
      ropts.max_cycles = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--cex-out") {
      cex_out = next();
    } else if (arg == "--infer") {
      infer = true;
    } else if (arg == "--json") {
      json_out = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    } else if (input.empty()) {
      input = arg;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (input.empty()) {
    usage(argv[0]);
    return 2;
  }
  if (orgs.empty()) {
    orgs = {sim::OrgKind::Arbitrated, sim::OrgKind::EventDriven};
  }

  std::string source;
  std::string source_name;
  if (input == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    source = ss.str();
    source_name = "<stdin>";
  } else {
    std::ifstream in(input);
    if (!in) {
      std::fprintf(stderr, "cannot open '%s'\n", input.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    source = ss.str();
    source_name = input;
  }

  // One front-end + allocation pass feeds every organization: the memory
  // map and port plans do not depend on the organization choice, only the
  // generated controllers do (and the checker models those abstractly).
  core::CompileOptions copts;
  copts.source_name = source_name;
  copts.infer_dependencies = infer;
  core::Compiler compiler(copts);
  auto compiled = compiler.compile(source);
  if (!compiled->ok()) {
    std::fprintf(stderr, "%s", compiled->diags().str().c_str());
    return 1;
  }

  support::DiagnosticEngine diags;
  diags.set_source_name(source_name);
  std::size_t refuted = 0;
  bool all_complete = true;
  std::vector<verify::VerifyResult> results;
  std::string replay_reports;
  bool all_replays_reproduced = true;
  for (sim::OrgKind org : orgs) {
    verify::VerifyResult vr = verify::run_verify(
        compiled->program(), compiled->sema(), compiled->memory_map(),
        compiled->port_plans(), org, vopts);
    refuted += verify::report_findings(vr, compiled->sema(), diags);
    all_complete = all_complete && vr.complete;
    if (do_replay && vr.has_cex) {
      verify::ReplayResult rr =
          verify::replay(compiled->program(), compiled->sema(),
                         compiled->memory_map(), compiled->port_plans(), org,
                         vr.cex, ropts);
      replay_reports += rr.report;
      all_replays_reproduced = all_replays_reproduced && rr.reproduced;
    }
    results.push_back(std::move(vr));
  }

  if (!cex_out.empty()) {
    support::JsonWriter w;
    w.begin_object();
    w.key("source").value(source_name);
    w.key("counterexamples").begin_array();
    for (const verify::VerifyResult& vr : results) {
      if (vr.has_cex) w.raw(vr.json());
    }
    w.end_array();
    w.end_object();
    std::ofstream out(cex_out);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", cex_out.c_str());
      return 2;
    }
    out << w.str() << "\n";
  }

  if (json_out) {
    support::JsonWriter w;
    w.begin_object();
    w.key("source").value(source_name);
    w.key("results").begin_array();
    for (const verify::VerifyResult& vr : results) w.raw(vr.json());
    w.end_array();
    w.key("diagnostics").raw(diags.json());
    w.end_object();
    std::printf("%s\n", w.str().c_str());
  } else {
    if (!diags.diagnostics().empty()) {
      std::fprintf(stderr, "%s", diags.str().c_str());
    }
    for (const verify::VerifyResult& vr : results) {
      std::printf("%s", vr.text().c_str());
    }
    if (do_replay && !replay_reports.empty()) {
      std::printf("replay against the cycle-accurate simulator:\n%s",
                  replay_reports.c_str());
    }
  }

  if (refuted > 0) {
    if (do_replay && !replay_reports.empty() && !all_replays_reproduced) {
      std::fprintf(stderr,
                   "warning: a counterexample did not reproduce in the "
                   "simulator; see the replay report\n");
    }
    return 5;
  }
  if (!all_complete) return 3;
  return 0;
}
