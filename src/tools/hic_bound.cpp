// hic-bound — abstract-interpretation bounds for hic programs.
//
//   hic-bound [options] <file.hic | ->
//
//   --org arbitrated|event-driven   analyze one organization (default: both)
//   --explain                       print per-derivation provenance traces
//   --infer                         infer producer/consumer pragmas (use-def)
//   --json                          machine-readable results on stdout
//
// Sound static bounds where hic-verify enumerates (docs/ANALYSIS.md):
// dependency-list occupancy vs the generated CAM capacity, per-consumer
// worst-case blocking (boundedness plus a saturating steps/cycles bound),
// and dead pseudo-ports with an estimated flip-flop saving. Every interval
// provably contains hic-verify's exact value, and the analysis completes
// in milliseconds at consumer counts where the checker exhausts any state
// budget.
//
// Exit status:
//   0  every bound holds (occupancy within capacity everywhere)
//   1  compile error (parse/sema reported errors)
//   2  usage error
//   6  a bound was exceeded (reported with a bound-* check ID)

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bound/bound.h"
#include "core/compiler.h"
#include "support/json.h"

using namespace hicsync;

namespace {

constexpr const char* kUsageBody =
    "  --org arbitrated|event-driven   (default: analyze both)\n"
    "  --explain\n"
    "  --infer\n"
    "  --json\n"
    // One source line: the usage_docs_in_sync ctest greps this exact table
    // here and in README.md.
    "exit codes: 0 bounds hold, 1 compile error, 2 usage, 6 bound exceeded\n";

void usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [options] <file.hic | ->\n%s", argv0,
               kUsageBody);
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::vector<sim::OrgKind> orgs;
  bound::BoundOptions bopts;
  bopts.enabled = true;
  bool infer = false;
  bool json_out = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--org") {
      std::string org = next();
      if (org == "arbitrated") {
        orgs.push_back(sim::OrgKind::Arbitrated);
      } else if (org == "event-driven") {
        orgs.push_back(sim::OrgKind::EventDriven);
      } else {
        std::fprintf(stderr, "unknown organization '%s'\n", org.c_str());
        return 2;
      }
    } else if (arg == "--explain") {
      bopts.explain = true;
    } else if (arg == "--infer") {
      infer = true;
    } else if (arg == "--json") {
      json_out = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    } else if (input.empty()) {
      input = arg;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (input.empty()) {
    usage(argv[0]);
    return 2;
  }
  if (orgs.empty()) {
    orgs = {sim::OrgKind::Arbitrated, sim::OrgKind::EventDriven};
  }

  std::string source;
  std::string source_name;
  if (input == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    source = ss.str();
    source_name = "<stdin>";
  } else {
    std::ifstream in(input);
    if (!in) {
      std::fprintf(stderr, "cannot open '%s'\n", input.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    source = ss.str();
    source_name = input;
  }

  // One front-end + allocation pass feeds every organization; lint-only
  // mode stops the flow after port planning — the clients need no RTL, so
  // a 1024-consumer program analyzes in milliseconds.
  core::CompileOptions copts;
  copts.source_name = source_name;
  copts.infer_dependencies = infer;
  copts.lint.enabled = true;
  copts.lint.only = true;
  core::Compiler compiler(copts);
  auto compiled = compiler.compile(source);
  if (!compiled->ok()) {
    std::fprintf(stderr, "%s", compiled->diags().str().c_str());
    return 1;
  }

  support::DiagnosticEngine diags;
  diags.set_source_name(source_name);
  std::size_t exceeded = 0;
  std::vector<bound::BoundResult> results;
  for (sim::OrgKind org : orgs) {
    bound::BoundResult br = bound::run_bound(
        compiled->program(), compiled->sema(), compiled->memory_map(),
        compiled->port_plans(), org, bopts);
    exceeded += bound::report_findings(br, compiled->sema(), diags);
    results.push_back(std::move(br));
  }

  if (json_out) {
    support::JsonWriter w;
    w.begin_object();
    w.key("source").value(source_name);
    w.key("results").begin_array();
    for (const bound::BoundResult& br : results) w.raw(br.json());
    w.end_array();
    w.key("diagnostics").raw(diags.json());
    w.end_object();
    std::printf("%s\n", w.str().c_str());
  } else {
    if (!diags.diagnostics().empty()) {
      std::fprintf(stderr, "%s", diags.str().c_str());
    }
    for (const bound::BoundResult& br : results) {
      std::printf("%s", br.text().c_str());
      if (bopts.explain) {
        std::string ex = br.explain_text();
        if (!ex.empty()) std::printf("%s", ex.c_str());
      }
    }
  }

  return exceeded > 0 ? 6 : 0;
}
