// hicc — the hic compiler command-line driver.
//
//   hicc [options] <file.hic | ->
//
//   --org arbitrated|event-driven   memory organization (default arbitrated)
//   --emit-verilog <out.v>          write the generated controllers' RTL
//   --report                        print the compilation report (default)
//   --no-report
//   --simulate <passes>             run the program cycle-accurately
//   --chain                         enable operation chaining in synthesis
//   --no-cam                        serial-scan dependency list (arbitrated)
//   --infer                         infer producer/consumer pragmas (use-def)
//   --dump-fsm                      print each thread's synthesized FSM
//   --target-mhz <f>                timing target for the report
//   --max-cycles <n>                simulation budget (default 100000)
//
// Exit status: 0 on success, 1 on compile error, 2 on usage error,
// 3 on simulation timeout.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/compiler.h"
#include "core/tbgen.h"

using namespace hicsync;

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options] <file.hic | ->\n"
               "  --org arbitrated|event-driven\n"
               "  --emit-verilog <out.v>\n"
               "  --emit-testbench <out_tb.v>\n"
               "  --report | --no-report\n"
               "  --simulate <passes>\n"
               "  --chain\n"
               "  --no-cam\n"
               "  --infer\n"
               "  --dump-fsm\n"
               "  --target-mhz <f>\n"
               "  --max-cycles <n>\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  core::CompileOptions options;
  std::string input;
  std::string verilog_out;
  std::string testbench_out;
  bool report = true;
  bool dump_fsm = false;
  int simulate_passes = 0;
  std::uint64_t max_cycles = 100000;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--org") {
      std::string org = next();
      if (org == "arbitrated") {
        options.organization = sim::OrgKind::Arbitrated;
      } else if (org == "event-driven") {
        options.organization = sim::OrgKind::EventDriven;
      } else {
        std::fprintf(stderr, "unknown organization '%s'\n", org.c_str());
        return 2;
      }
    } else if (arg == "--emit-verilog") {
      verilog_out = next();
    } else if (arg == "--emit-testbench") {
      testbench_out = next();
    } else if (arg == "--report") {
      report = true;
    } else if (arg == "--no-report") {
      report = false;
    } else if (arg == "--simulate") {
      simulate_passes = std::atoi(next());
    } else if (arg == "--chain") {
      options.schedule.chain_states = true;
    } else if (arg == "--no-cam") {
      options.use_cam = false;
    } else if (arg == "--infer") {
      options.infer_dependencies = true;
    } else if (arg == "--dump-fsm") {
      dump_fsm = true;
    } else if (arg == "--target-mhz") {
      options.target_clock_mhz = std::atof(next());
    } else if (arg == "--max-cycles") {
      max_cycles = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    } else if (input.empty()) {
      input = arg;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (input.empty()) {
    usage(argv[0]);
    return 2;
  }

  std::string source;
  if (input == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    source = ss.str();
  } else {
    std::ifstream in(input);
    if (!in) {
      std::fprintf(stderr, "cannot open '%s'\n", input.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    source = ss.str();
  }

  core::Compiler compiler(options);
  auto result = compiler.compile(source);
  if (!result->ok()) {
    std::fprintf(stderr, "%s", result->diags().str().c_str());
    return 1;
  }
  // Non-fatal diagnostics (warnings) still print.
  for (const auto& d : result->diags().diagnostics()) {
    std::fprintf(stderr, "%s\n", d.str().c_str());
  }

  if (report) {
    std::printf("%s", core::render_report(*result).c_str());
  }

  if (dump_fsm) {
    for (const auto& fsm : result->fsms()) {
      std::printf("%s\n", fsm.str().c_str());
    }
  }

  if (!verilog_out.empty()) {
    std::ofstream out(verilog_out);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", verilog_out.c_str());
      return 2;
    }
    out << result->verilog();
    std::printf("wrote %s\n", verilog_out.c_str());
  }

  if (!testbench_out.empty()) {
    std::ofstream out(testbench_out);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", testbench_out.c_str());
      return 2;
    }
    out << core::generate_controller_testbench(*result);
    std::printf("wrote %s (DUT + self-checking testbench)\n",
                testbench_out.c_str());
  }

  if (simulate_passes > 0) {
    auto simulator = result->make_simulator();
    if (!simulator->run_until_passes(simulate_passes, max_cycles)) {
      std::fprintf(stderr,
                   "simulation did not reach %d passes in %llu cycles\n",
                   simulate_passes,
                   static_cast<unsigned long long>(max_cycles));
      return 3;
    }
    std::printf("simulated %d pass(es) in %llu cycles\n", simulate_passes,
                static_cast<unsigned long long>(simulator->cycle()));
    for (const auto& round : simulator->rounds()) {
      std::printf("  %s: produce@%llu, %zu consumer read(s), "
                  "completion latency %llu\n",
                  round.dep_id.c_str(),
                  static_cast<unsigned long long>(round.produce_grant_cycle),
                  round.consume_cycles.size(),
                  static_cast<unsigned long long>(
                      round.completion_latency()));
    }
  }
  return 0;
}
