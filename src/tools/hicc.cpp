// hicc — the hic compiler command-line driver.
//
//   hicc [options] <file.hic | ->
//
//   --org arbitrated|event-driven   memory organization (default arbitrated)
//   --emit-verilog <out.v>          write the generated controllers' RTL
//   --emit-artifact <out.hicbin>    write a hic-rt program artifact (the
//                                   loadable form hic-rtd serves; see
//                                   docs/RUNTIME.md)
//   --report                        print the compilation report (default)
//   --no-report
//   --simulate <passes>             run the program cycle-accurately
//   --chain                         enable operation chaining in synthesis
//   --no-cam                        serial-scan dependency list (arbitrated)
//   --infer                         infer producer/consumer pragmas (use-def)
//   --dump-fsm                      print each thread's synthesized FSM
//   --target-mhz <f>                timing target for the report
//   --max-cycles <n>                simulation budget (default 100000)
//
// Observability (hic-trace / hic-perf; see docs/OBSERVABILITY.md):
//   --trace=kind[,out=PATH]         attach a trace sink to the simulation;
//                                   kind is metrics|vcd|chrome|bundle,
//                                   repeatable. Implies --simulate 1 when
//                                   --simulate is absent. Default outputs:
//                                   metrics to stdout, vcd to
//                                   <input stem>.vcd, chrome to
//                                   <input stem>.trace.json, bundle to the
//                                   <input stem>.bundle/ directory (a
//                                   hic-diff run bundle: manifest + full
//                                   event capture + metrics snapshot +
//                                   coverage record when --cover is on)
//   --profile[=out.json]            profile the compiler itself: per-pass
//                                   wall time, peak RSS and AST/netlist
//                                   node counts. Text report to stdout; the
//                                   =out.json form writes JSON instead.
//                                   Composes with --trace and --lint-only
//                                   (the profile still prints on exit 4)
//   --cover[=out.jsonl]             functional coverage (hic-cover): declare
//                                   the covergroup model for the compiled
//                                   program, attach a CoverageSink to the
//                                   simulation, and print the coverage +
//                                   hole report. The =out.jsonl form appends
//                                   one record to the coverage DB instead
//                                   (merge/report/gate with hic-cover).
//                                   Implies --simulate 1; composes with
//                                   --trace and --profile
//
// Static analysis (hic-lint; see docs/DIAGNOSTICS.md for the check
// catalogue):
//   --lint                          run the lint checks alongside compilation
//   --lint-only                     lint + port planning, skip RTL generation
//   -W<check>                       promote <check> findings to errors
//   -Wno-<check>                    disable <check>
//   --Werror                        every warning-severity finding is an error
//   --diag-format text|json         diagnostic rendering; json is the CI
//                                   interface (machine-readable, stdout)
//
// Verification (hic-verify; see docs/VERIFICATION.md — the standalone
// hic-verify tool adds counterexample replay and both-organization runs):
//   --verify                        model-check the program: deadlock-freedom,
//                                   consume-before-produce, blocking bounds,
//                                   CAM occupancy for the selected --org
//   --verify-max-states <n>         state budget (default 1000000); exhausting
//                                   it makes unproved properties inconclusive
//
// Static bounds (hic-bound; see docs/ANALYSIS.md — the standalone hic-bound
// tool adds --explain provenance traces and both-organization runs):
//   --bound                         abstract-interpretation bounds: dependency-
//                                   list occupancy vs CAM capacity, worst-case
//                                   blocking, dead ports. Composes with
//                                   --lint-only (no RTL needed) and feeds
//                                   sizing hints to the generators
//   --no-bound-sizing               report bounds but leave the generated
//                                   dependency lists untouched
//
// Netlist checks (hic-nlint; see docs/ANALYSIS.md — the standalone
// hic-nlint tool adds --check selection, --explain proof narration, --json
// and the seeded bug fixtures):
//   --nlint                         structural checks over the generated
//                                   controllers: comb loops, driver
//                                   conflicts, width consistency, one-hot
//                                   mutual-exclusion proofs, reset coverage,
//                                   census vs the area model. Composes with
//                                   --lint-only (the controllers are still
//                                   generated so the netlist pass can run)
//
// Exit status:
//   0  success
//   1  compile error (parse/sema/analysis reported errors)
//   2  usage error (bad flags, unreadable input, unknown lint check)
//   3  simulation did not converge within the cycle budget
//   4  lint findings at error severity (including -W/--Werror promotions)
//   5  verify refuted a property (reported with a verify-* check ID)
//   6  a hic-bound bound was exceeded (reported with a bound-* check ID)
//   7  hic-nlint found a structural defect (reported with an nlint-* check
//      ID)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/compiler.h"
#include "core/tbgen.h"
#include "core/tracerun.h"
#include "diffview/bundle.h"
#include "perf/profile.h"
#include "rt/artifact.h"
#include "trace/options.h"

using namespace hicsync;

namespace {

// Single source of truth for the option list and exit-code table: the
// header comment above, README.md's hicc section, and this string must
// agree (tests/core/cli grep for --trace in all three).
constexpr const char* kUsageBody =
    "  --org arbitrated|event-driven\n"
    "  --emit-verilog <out.v>\n"
    "  --emit-testbench <out_tb.v>\n"
    "  --emit-artifact <out.hicbin>\n"
    "  --report | --no-report\n"
    "  --simulate <passes>\n"
    "  --trace=metrics|vcd|chrome|bundle[,out=PATH]   (repeatable)\n"
    "  --profile[=out.json]\n"
    "  --cover[=out.jsonl]\n"
    "  --chain\n"
    "  --no-cam\n"
    "  --infer\n"
    "  --dump-fsm\n"
    "  --target-mhz <f>\n"
    "  --max-cycles <n>\n"
    "  --lint | --lint-only\n"
    "  -W<check> | -Wno-<check> | --Werror\n"
    "  --verify [--verify-max-states <n>]\n"
    "  --bound [--no-bound-sizing]\n"
    "  --nlint\n"
    "  --diag-format text|json\n"
    // NOLINTNEXTLINE(whitespace/line_length) — kept on one line so the
    // usage_docs_in_sync test can grep the whole table verbatim.
    "exit codes: 0 ok, 1 compile error, 2 usage, 3 sim timeout, 4 lint errors, 5 verify refuted, 6 bound exceeded, 7 nlint findings\n";

void usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [options] <file.hic | ->\n%s", argv0,
               kUsageBody);
}

void list_checks() {
  std::fprintf(stderr, "known lint checks:\n");
  for (const auto& info :
       analysis::lint::LintRegistry::builtin().check_infos()) {
    std::fprintf(stderr, "  %-24s %s (default %s)\n", info.id,
                 info.description, support::to_string(info.default_severity));
  }
}

}  // namespace

int main(int argc, char** argv) {
  core::CompileOptions options;
  std::string input;
  std::string verilog_out;
  std::string testbench_out;
  std::string artifact_out;
  bool report = true;
  bool report_explicit = false;
  bool dump_fsm = false;
  bool json_diags = false;
  int simulate_passes = 0;
  std::uint64_t max_cycles = 100000;
  trace::TraceOptions trace_opts;
  bool profile = false;
  std::string profile_out;
  bool cover = false;
  std::string cover_out;
  perf::PassTimer profiler;

  auto known_check = [](const std::string& id) {
    return analysis::lint::LintRegistry::builtin().find(id) != nullptr;
  };

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--org") {
      std::string org = next();
      if (org == "arbitrated") {
        options.organization = sim::OrgKind::Arbitrated;
      } else if (org == "event-driven") {
        options.organization = sim::OrgKind::EventDriven;
      } else {
        std::fprintf(stderr, "unknown organization '%s'\n", org.c_str());
        return 2;
      }
    } else if (arg == "--emit-verilog") {
      verilog_out = next();
    } else if (arg == "--emit-testbench") {
      testbench_out = next();
    } else if (arg == "--emit-artifact") {
      artifact_out = next();
    } else if (arg == "--report") {
      report = true;
      report_explicit = true;
    } else if (arg == "--no-report") {
      report = false;
      report_explicit = true;
    } else if (arg == "--simulate") {
      simulate_passes = std::atoi(next());
    } else if (arg == "--trace" || arg.rfind("--trace=", 0) == 0) {
      std::string spec = arg == "--trace"
                             ? next()
                             : arg.substr(std::strlen("--trace="));
      std::string error;
      if (!trace::parse_trace_spec(spec, trace_opts, &error)) {
        std::fprintf(stderr, "bad --trace spec '%s': %s\n", spec.c_str(),
                     error.c_str());
        return 2;
      }
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg.rfind("--profile=", 0) == 0) {
      profile = true;
      profile_out = arg.substr(std::strlen("--profile="));
      if (profile_out.empty()) {
        std::fprintf(stderr, "--profile= needs an output path\n");
        return 2;
      }
    } else if (arg == "--cover") {
      cover = true;
    } else if (arg.rfind("--cover=", 0) == 0) {
      cover = true;
      cover_out = arg.substr(std::strlen("--cover="));
      if (cover_out.empty()) {
        std::fprintf(stderr, "--cover= needs an output path\n");
        return 2;
      }
    } else if (arg == "--chain") {
      options.schedule.chain_states = true;
    } else if (arg == "--no-cam") {
      options.use_cam = false;
    } else if (arg == "--infer") {
      options.infer_dependencies = true;
    } else if (arg == "--dump-fsm") {
      dump_fsm = true;
    } else if (arg == "--target-mhz") {
      options.target_clock_mhz = std::atof(next());
    } else if (arg == "--max-cycles") {
      max_cycles = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--verify") {
      options.verify.enabled = true;
    } else if (arg == "--verify-max-states") {
      options.verify.enabled = true;
      options.verify.max_states =
          static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--bound") {
      options.bound.enabled = true;
    } else if (arg == "--no-bound-sizing") {
      options.bound.enabled = true;
      options.bound.apply_sizing = false;
    } else if (arg == "--nlint") {
      options.nlint.enabled = true;
    } else if (arg == "--lint") {
      options.lint.enabled = true;
    } else if (arg == "--lint-only") {
      options.lint.enabled = true;
      options.lint.only = true;
    } else if (arg == "--Werror") {
      options.lint.enabled = true;
      options.lint.werror = true;
    } else if (arg.rfind("-Wno-", 0) == 0) {
      std::string id = arg.substr(5);
      if (!known_check(id)) {
        std::fprintf(stderr, "unknown lint check '%s'\n", id.c_str());
        list_checks();
        return 2;
      }
      options.lint.enabled = true;
      options.lint.disabled.push_back(id);
    } else if (arg.rfind("-W", 0) == 0 && arg.size() > 2 && arg[2] != '-') {
      std::string id = arg.substr(2);
      if (!known_check(id)) {
        std::fprintf(stderr, "unknown lint check '%s'\n", id.c_str());
        list_checks();
        return 2;
      }
      options.lint.enabled = true;
      options.lint.as_error.push_back(id);
    } else if (arg == "--diag-format") {
      std::string fmt = next();
      if (fmt == "json") {
        json_diags = true;
      } else if (fmt == "text") {
        json_diags = false;
      } else {
        std::fprintf(stderr, "unknown diagnostic format '%s'\n", fmt.c_str());
        return 2;
      }
    } else if (arg.rfind("--diag-format=", 0) == 0) {
      std::string fmt = arg.substr(std::strlen("--diag-format="));
      if (fmt == "json") {
        json_diags = true;
      } else if (fmt == "text") {
        json_diags = false;
      } else {
        std::fprintf(stderr, "unknown diagnostic format '%s'\n", fmt.c_str());
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    } else if (input.empty()) {
      input = arg;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (input.empty()) {
    usage(argv[0]);
    return 2;
  }
  // Lint-only runs are report-less by default: the findings are the output.
  if (options.lint.only && !report_explicit) report = false;

  std::string source;
  if (input == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    source = ss.str();
    options.source_name = "<stdin>";
  } else {
    std::ifstream in(input);
    if (!in) {
      std::fprintf(stderr, "cannot open '%s'\n", input.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    source = ss.str();
    options.source_name = input;
  }

  if (profile) options.profiler = &profiler;
  core::Compiler compiler(options);
  auto result = compiler.compile(source);

  // All diagnostics at once, in deterministic (file, line, col, severity)
  // order. JSON goes to stdout — it is the machine interface — while the
  // human-readable rendering stays on stderr.
  if (json_diags) {
    std::printf("%s", result->diags().json().c_str());
  } else if (!result->diags().diagnostics().empty()) {
    std::fprintf(stderr, "%s", result->diags().str().c_str());
  }

  // The profile prints for every completed compile() — including failed
  // compiles and --lint-only runs that will exit 4 below; a profile of the
  // front end alone is still a profile.
  if (profile) {
    if (profile_out.empty()) {
      std::printf("%s", profiler.text().c_str());
    } else {
      std::ofstream out(profile_out);
      if (!out) {
        std::fprintf(stderr, "cannot write '%s'\n", profile_out.c_str());
        return 2;
      }
      out << profiler.json();
      std::printf("wrote %s\n", profile_out.c_str());
    }
  }

  if (!result->ok()) return 1;

  if (report) {
    std::printf("%s", core::render_report(*result).c_str());
  }

  if (dump_fsm) {
    for (const auto& fsm : result->fsms()) {
      std::printf("%s\n", fsm.str().c_str());
    }
  }

  // Verify summary on stdout (human form only; --diag-format json keeps
  // stdout machine-readable and the findings already carry the verdicts).
  if (!json_diags) {
    for (const auto& vr : result->verify_results()) {
      std::printf("%s", vr.text().c_str());
    }
    for (const auto& br : result->bound_results()) {
      std::printf("%s", br.text().c_str());
    }
    if (options.nlint.enabled) {
      std::printf("%s", result->nlint_result().text().c_str());
    }
  }

  if (result->lint_error_count() > 0) return 4;
  if (result->verify_error_count() > 0) return 5;
  if (result->bound_error_count() > 0) return 6;
  if (result->nlint_error_count() > 0) return 7;
  if (options.lint.only) return 0;

  if (!verilog_out.empty()) {
    std::ofstream out(verilog_out);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", verilog_out.c_str());
      return 2;
    }
    out << result->verilog();
    std::printf("wrote %s\n", verilog_out.c_str());
  }

  if (!artifact_out.empty()) {
    std::ofstream out(artifact_out, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", artifact_out.c_str());
      return 2;
    }
    out << rt::emit_artifact(*result, source);
    std::printf("wrote %s\n", artifact_out.c_str());
  }

  if (!testbench_out.empty()) {
    std::ofstream out(testbench_out);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", testbench_out.c_str());
      return 2;
    }
    out << core::generate_controller_testbench(*result);
    std::printf("wrote %s (DUT + self-checking testbench)\n",
                testbench_out.c_str());
  }

  // Tracing or coverage without an explicit --simulate runs one pass: the
  // trace (or coverage record) *is* the requested output.
  if ((trace_opts.any() || cover) && simulate_passes == 0) {
    simulate_passes = 1;
  }

  if (simulate_passes > 0) {
    std::string stem = input == "-" ? "stdin" : input;
    std::size_t slash = stem.find_last_of('/');
    std::size_t dot = stem.rfind('.');
    if (dot != std::string::npos &&
        (slash == std::string::npos || dot > slash)) {
      stem = stem.substr(0, dot);
    }

    core::TraceRunOptions run_options;
    run_options.sinks = trace_opts;
    run_options.passes = simulate_passes;
    run_options.max_cycles = max_cycles;
    run_options.cover = cover;
    // Run id: "<input stem>@<organization>" (coverage DB and bundle
    // manifest share the convention).
    const std::string base =
        slash == std::string::npos ? stem : stem.substr(slash + 1);
    const std::string run_id =
        base + "@" +
        (options.organization == sim::OrgKind::Arbitrated ? "arbitrated"
                                                          : "eventdriven");
    if (cover) {
      run_options.cover_run_id = run_id;
    }
    if (trace_opts.bundle) {
      run_options.bundle_run_id = run_id;
      run_options.bundle_program = base;
      run_options.bundle_source_digest = diffview::digest_hex(source);
    }
    core::TraceRunResult run = core::run_traced(*result, run_options);

    // Write trace artifacts even on timeout — a truncated waveform is
    // exactly what you want when debugging a deadlock.
    auto write_artifact = [](const std::string& path,
                             const std::string& body) {
      std::ofstream out(path);
      if (!out) {
        std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
        return false;
      }
      out << body;
      std::printf("wrote %s\n", path.c_str());
      return true;
    };
    if (trace_opts.vcd) {
      std::string path =
          trace_opts.vcd_out.empty() ? stem + ".vcd" : trace_opts.vcd_out;
      if (!write_artifact(path, run.vcd)) return 2;
    }
    if (trace_opts.chrome) {
      std::string path = trace_opts.chrome_out.empty()
                             ? stem + ".trace.json"
                             : trace_opts.chrome_out;
      if (!write_artifact(path, run.chrome_json)) return 2;
    }
    if (trace_opts.metrics) {
      if (trace_opts.metrics_out.empty()) {
        std::printf("%s", run.metrics_text.c_str());
      } else if (!write_artifact(trace_opts.metrics_out,
                                 run.metrics_json)) {
        return 2;
      }
    }
    if (trace_opts.bundle) {
      std::string dir = trace_opts.bundle_out.empty() ? stem + ".bundle"
                                                      : trace_opts.bundle_out;
      std::string error;
      if (!diffview::write_bundle(dir, run.bundle_manifest_json,
                                  run.bundle_events_jsonl,
                                  run.bundle_metrics_json, run.cover_record,
                                  &error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 2;
      }
      std::printf("wrote run bundle %s/\n", dir.c_str());
    }
    if (cover) {
      if (cover_out.empty()) {
        std::printf("%s", run.cover_text.c_str());
      } else {
        // Append-only DB: one JSONL record per run, merged by hic-cover.
        std::ofstream out(cover_out, std::ios::app);
        if (!out) {
          std::fprintf(stderr, "cannot write '%s'\n", cover_out.c_str());
          return 2;
        }
        out << run.cover_record << "\n";
        std::printf("appended coverage record to %s\n", cover_out.c_str());
      }
    }

    if (!run.converged) {
      std::fprintf(stderr,
                   "simulation did not reach %d passes in %llu cycles\n%s",
                   simulate_passes,
                   static_cast<unsigned long long>(max_cycles),
                   run.stall_report.c_str());
      return 3;
    }
    std::printf("simulated %d pass(es) in %llu cycles\n%s", simulate_passes,
                static_cast<unsigned long long>(run.cycles),
                run.rounds_text.c_str());
  }
  return 0;
}
