// hic-diff — cross-run differencing of hic run bundles.
//
//   hic-diff [options] <bundleA> <bundleB>
//
//   --emit=text|md|json     report rendering (default text)
//   --out <path>            write the report there (default stdout)
//   --context <n>           raw events of context around the first
//                           divergence (default 5)
//   --compare-blocking      also align per-thread block/unblock streams
//                           (off by default: blocking dynamics are timing,
//                           not semantics, across organizations)
//
// Bundles are directories written by `hicc --trace=bundle[,out=DIR]`
// (manifest.json + events.jsonl + metrics.json + optional cover.jsonl).
// The traces are aligned semantically — by dependency round, FSM-state
// sequence and (opt-in) blocking sequence, never by raw cycle — and every
// metric (per-port utilization, stall attribution, round-latency
// percentiles, occupancy, coverage, area/Fmax model) is tabulated as a
// §4-style A/B/delta comparison. See docs/OBSERVABILITY.md, "Cross-run
// differencing".
//
// Exit status:
//   0  semantically equal, no metric deltas
//   1  metric deltas only (traces align)
//   2  trace divergence (first-divergence forensics in the report)
//   3  usage error or unreadable bundle

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "diffview/delta.h"

using namespace hicsync;

namespace {

// Single source of truth for the exit-code table: README.md's hic-diff
// section must carry the same line (hic-diff.usage_docs_in_sync greps
// both).
constexpr const char* kUsageBody =
    "  --emit=text|md|json [--out <path>]\n"
    "  --context <n>\n"
    "  --compare-blocking\n"
    // NOLINTNEXTLINE(whitespace/line_length) — kept on one line so the
    // usage_docs_in_sync test can grep the whole table verbatim.
    "exit codes: 0 equal, 1 metric deltas only, 2 trace divergence, 3 usage or unreadable bundle\n";

void usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [options] <bundleA> <bundleB>\n%s", argv0,
               kUsageBody);
}

bool write_output(const std::string& out_path, const std::string& body) {
  if (out_path.empty()) {
    std::printf("%s", body.c_str());
    return true;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write '%s'\n", out_path.c_str());
    return false;
  }
  out << body;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  std::string emit = "text";
  std::string out_path;
  diffview::DeltaOptions options;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(3);
      }
      return argv[++i];
    };
    if (arg == "--emit" || arg.rfind("--emit=", 0) == 0) {
      emit = arg == "--emit" ? next() : arg.substr(std::strlen("--emit="));
      if (emit != "text" && emit != "md" && emit != "json") {
        std::fprintf(stderr, "unknown --emit format '%s'\n", emit.c_str());
        return 3;
      }
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--context") {
      options.align.context = std::atoi(next());
    } else if (arg.rfind("--context=", 0) == 0) {
      options.align.context =
          std::atoi(arg.substr(std::strlen("--context=")).c_str());
    } else if (arg == "--compare-blocking") {
      options.align.compare_blocking = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 3;
    } else {
      inputs.push_back(arg);
    }
  }

  if (inputs.size() != 2) {
    std::fprintf(stderr, "expected exactly two bundle directories\n");
    usage(argv[0]);
    return 3;
  }

  diffview::Bundle a;
  diffview::Bundle b;
  std::string error;
  if (!diffview::load_bundle(inputs[0], &a, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 3;
  }
  if (!diffview::load_bundle(inputs[1], &b, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 3;
  }

  const diffview::DiffReport report = diffview::diff_bundles(a, b, options);
  const std::string body = emit == "md"     ? report.markdown()
                           : emit == "json" ? report.json() + "\n"
                                            : report.text();
  if (!write_output(out_path, body)) return 3;
  return report.exit_code();
}
