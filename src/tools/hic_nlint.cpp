// hic-nlint — netlist-level structural analyzer for generated controllers.
//
//   hic-nlint [options] <file.hic | ->
//   hic-nlint --seed-bug <name>     (no input: analyze a seeded bug fixture)
//
//   --org arbitrated|event-driven   analyze one organization (default: both)
//   --check <nlint-id>              run one check (repeatable; default all)
//   --explain                       per-claim proof narration
//   --json                          machine-readable results on stdout
//   --list-checks                   print the check catalogue and exit
//   --seed-bug <name>               analyze a deliberately broken fixture
//   --list-seed-bugs                print the fixture catalogue and exit
//
// Compiles the program once per organization, generates the controllers,
// and runs the netlist checks over every generated module: combinational
// loops (with a cycle witness), driver conflicts, width consistency over
// the expression trees, the one-hot mutual-exclusion proofs for every
// claim the RTL builders record (arbiter single-grant, decoder outputs,
// one-hot mux selects), reset coverage of feedback registers, and the
// census cross-check against the area model (docs/ANALYSIS.md).
//
// Exit status:
//   0  clean (every enabled check passed, every claim proved)
//   1  compile error (parse/sema reported errors)
//   2  usage error (bad flags, unknown check or fixture)
//   3  inconclusive (no violation, but a claim was left unproved)
//   7  a structural violation (nlint-* finding at error severity)

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/compiler.h"
#include "nlint/nlint.h"
#include "nlint/seeded.h"
#include "support/json.h"

using namespace hicsync;

namespace {

constexpr const char* kUsageBody =
    "  --org arbitrated|event-driven   (default: analyze both)\n"
    "  --check <nlint-id>              (repeatable)\n"
    "  --explain\n"
    "  --json\n"
    "  --list-checks\n"
    "  --seed-bug <name> | --list-seed-bugs\n"
    // One source line: the usage_docs_in_sync ctest greps this exact table
    // here and in README.md.
    "exit codes: 0 clean, 1 compile error, 2 usage, 3 unproved claims, 7 structural violation\n";

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options] <file.hic | ->\n"
               "       %s --seed-bug <name>\n%s",
               argv0, argv0, kUsageBody);
}

void list_checks() {
  std::fprintf(stderr, "known netlist checks:\n");
  for (const nlint::CheckInfo& info : nlint::check_registry()) {
    std::fprintf(stderr, "  %-28s %s (default %s)\n", info.id,
                 info.description, support::to_string(info.default_severity));
  }
}

void list_seed_bugs() {
  std::fprintf(stderr, "seeded bug fixtures:\n");
  for (const nlint::SeededBug& b : nlint::seeded_bugs()) {
    std::fprintf(stderr, "  %-26s %s -> %s\n", b.name, b.description,
                 b.check_id);
  }
}

int exit_code(const nlint::NlintResult& result) {
  if (result.errors() > 0) return 7;
  if (result.claims_inconclusive() > 0) return 3;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string seed_bug;
  std::vector<sim::OrgKind> orgs;
  nlint::NlintOptions nopts;
  nopts.enabled = true;
  bool json_out = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--org") {
      std::string org = next();
      if (org == "arbitrated") {
        orgs.push_back(sim::OrgKind::Arbitrated);
      } else if (org == "event-driven") {
        orgs.push_back(sim::OrgKind::EventDriven);
      } else {
        std::fprintf(stderr, "unknown organization '%s'\n", org.c_str());
        return 2;
      }
    } else if (arg == "--check") {
      std::string id = next();
      if (nlint::find_check(id) == nullptr) {
        std::fprintf(stderr, "unknown netlist check '%s'\n", id.c_str());
        list_checks();
        return 2;
      }
      nopts.checks.push_back(id);
    } else if (arg == "--explain") {
      nopts.explain = true;
    } else if (arg == "--json") {
      json_out = true;
    } else if (arg == "--seed-bug") {
      seed_bug = next();
      if (nlint::find_seeded_bug(seed_bug) == nullptr) {
        std::fprintf(stderr, "unknown seeded bug '%s'\n", seed_bug.c_str());
        list_seed_bugs();
        return 2;
      }
    } else if (arg == "--list-checks") {
      list_checks();
      return 0;
    } else if (arg == "--list-seed-bugs") {
      list_seed_bugs();
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    } else if (input.empty()) {
      input = arg;
    } else {
      usage(argv[0]);
      return 2;
    }
  }

  // Fixture mode: build the named broken module and analyze just it.
  if (!seed_bug.empty()) {
    if (!input.empty()) {
      std::fprintf(stderr, "--seed-bug takes no input file\n");
      return 2;
    }
    rtl::Design design;
    const rtl::Module& m = nlint::build_seeded_bug(design, seed_bug);
    nlint::NlintResult result = nlint::run_module(m, nopts);
    if (json_out) {
      std::printf("%s\n", result.json().c_str());
    } else {
      std::printf("%s", result.text().c_str());
    }
    return exit_code(result);
  }

  if (input.empty()) {
    usage(argv[0]);
    return 2;
  }
  if (orgs.empty()) {
    orgs = {sim::OrgKind::Arbitrated, sim::OrgKind::EventDriven};
  }

  std::string source;
  std::string source_name;
  if (input == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    source = ss.str();
    source_name = "<stdin>";
  } else {
    std::ifstream in(input);
    if (!in) {
      std::fprintf(stderr, "cannot open '%s'\n", input.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    source = ss.str();
    source_name = input;
  }

  // The generated netlists differ per organization, so each analyzed org
  // is its own compile (generation is the cheap part; the front end
  // dominates only on tiny programs).
  int worst = 0;
  if (json_out) std::printf("{\"source\":\"%s\",\"results\":[",
                            support::json_escape(source_name).c_str());
  bool first = true;
  for (sim::OrgKind org : orgs) {
    core::CompileOptions copts;
    copts.source_name = source_name;
    copts.organization = org;
    copts.nlint = nopts;
    core::Compiler compiler(copts);
    auto compiled = compiler.compile(source);
    if (!compiled->ok()) {
      if (json_out) std::printf("]}\n");
      std::fprintf(stderr, "%s", compiled->diags().str().c_str());
      return 1;
    }
    const char* org_name =
        org == sim::OrgKind::Arbitrated ? "arbitrated" : "event-driven";
    const nlint::NlintResult& nr = compiled->nlint_result();
    if (json_out) {
      std::printf("%s{\"org\":\"%s\",\"nlint\":%s}", first ? "" : ",",
                  org_name, nr.json().c_str());
    } else {
      std::printf("hic-nlint: organization %s\n%s", org_name,
                  nr.text().c_str());
    }
    first = false;
    const int code = exit_code(nr);
    // 7 beats 3 beats 0.
    if (code == 7 || (code == 3 && worst == 0)) worst = code;
  }
  if (json_out) std::printf("]}\n");
  return worst;
}
