// hic-rtd — the hic-rt runtime daemon / driver.
//
//   hic-rtd serve  --artifact <prog.hicbin> --socket <path> [options]
//   hic-rtd run    --artifact <prog.hicbin> [options]
//   hic-rtd submit --socket <path> [client ops]
//   hic-rtd stats  --socket <path>
//   hic-rtd watch  --socket <path> [--interval-ms N] [--count N] [--json]
//
// serve  loads an artifact (emitted by `hicc --emit-artifact`), starts the
//        sharded service and listens on an AF_UNIX socket (JSON lines;
//        src/rt/wire.h). Runs until stdin closes or a line of input
//        arrives, then drains and shuts down cleanly.
// run    in-process driver mode: loads the artifact, opens --sessions
//        sessions across --shards shards, drives produce→run→consume per
//        session, prints stats and aggregate throughput. This is the CI
//        smoke mode — no socket involved.
// submit client mode: --open, --produce w,w,..., --run N, --consume
//        a,b,..., --close against a running serve instance.
// stats  prints the server's describe text and stats JSON.
// watch  polls the server's `telemetry` op into a terminal live view:
//        per-shard utilization, queue depth and p50/p95/p99 per stage.
//        --count N stops after N polls (0 = until interrupted); --json
//        prints the raw telemetry JSON document per poll instead.
//
// Options:
//   --artifact <file>     program artifact (serve/run)
//   --socket <path>       AF_UNIX socket path (serve/submit/stats/watch)
//   --shards <n>          worker threads / simulator instances (default 1)
//   --sessions <n>        sessions to drive in run mode (default 4)
//   --passes <n>          pass target per run command (default 1)
//   --produces <n>        produce commands per session in run mode (def. 1)
//   --max-cycles <n>      per-run cycle budget (default 200000)
//   --metrics             attach per-shard trace metrics (serve/run)
//   --session <id>        session id for submit ops
//   --tag <s>             trace-context tag on submit ops (echoed + spans)
//   --telemetry           enable request telemetry (serve/run)
//   --slow-us <n>         slow-request threshold, µs (default 100000)
//   --slow-log <file>     JSONL forensics file for slow requests
//   --telemetry-ring <n>  spans retained per shard (default 256)
//   --trace-out <file>    write Chrome-trace of retained spans on exit
//   --interval-ms <n>     watch poll interval (default 1000)
//   --count <n>           watch polls before exiting (default 0 = forever)
//   --json                watch prints raw telemetry JSON per poll
//
// Exit status:
//   0  success
//   1  a command failed (rt-* error from the service)
//   2  usage error
//   3  artifact rejected (rt-bad-magic/rt-version-skew/rt-truncated/...)
//   4  socket error (cannot bind/connect/speak the protocol)

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "rt/service.h"
#include "rt/store.h"
#include "rt/wire.h"
#include "support/json.h"
#include "support/strings.h"

using namespace hicsync;

namespace {

constexpr const char* kUsage =
    "usage: hic-rtd <serve|run|submit|stats|watch> [options]\n"
    "  serve  --artifact <prog.hicbin> --socket <path> [--shards N]\n"
    "         [--telemetry] [--slow-us N] [--slow-log F] [--trace-out F]\n"
    "  run    --artifact <prog.hicbin> [--sessions N] [--shards N]\n"
    "         [--passes N] [--produces N] [--metrics]\n"
    "         [--telemetry] [--slow-us N] [--slow-log F] [--trace-out F]\n"
    "  submit --socket <path> [--open] [--session ID] [--produce w,w,...]\n"
    "         [--run N] [--consume a,b,...] [--close] [--tag S]\n"
    "  stats  --socket <path>\n"
    "  watch  --socket <path> [--interval-ms N] [--count N] [--json]\n"
    // Kept on one line so usage_docs_in_sync can grep it verbatim.
    "exit codes: 0 ok, 1 command failed, 2 usage, 3 artifact rejected, 4 socket error\n";

void usage() { std::fprintf(stderr, "%s", kUsage); }

struct Args {
  std::string mode;
  std::string artifact;
  std::string socket_path;
  int shards = 1;
  int sessions = 4;
  int passes = 1;
  int produces = 1;
  std::uint64_t max_cycles = 200000;
  bool metrics = false;
  // telemetry (serve/run):
  bool telemetry = false;
  std::uint64_t slow_us = 100000;
  std::string slow_log;
  std::size_t telemetry_ring = 256;
  std::string trace_out;
  // watch:
  int interval_ms = 1000;
  int count = 0;  // 0 = poll forever
  bool json = false;
  // submit ops, applied in this order:
  std::string tag;
  bool do_open = false;
  std::uint64_t session = 0;
  bool have_session = false;
  std::vector<std::uint64_t> produce_words;
  bool do_produce = false;
  int run_passes = 0;
  bool do_run = false;
  std::vector<std::string> consume_names;
  bool do_consume = false;
  bool do_close = false;
};

bool parse_words(const std::string& csv, std::vector<std::uint64_t>* out) {
  for (const std::string& part : support::split(csv, ',')) {
    char* end = nullptr;
    unsigned long long v = std::strtoull(part.c_str(), &end, 0);
    if (end == nullptr || *end != '\0' || part.empty()) return false;
    out->push_back(static_cast<std::uint64_t>(v));
  }
  return true;
}

rt::ServiceOptions service_options(const Args& args) {
  rt::ServiceOptions options;
  options.shards = args.shards;
  options.default_passes = args.passes;
  options.max_cycles = args.max_cycles;
  options.collect_sim_metrics = args.metrics;
  options.telemetry.enabled = args.telemetry;
  options.telemetry.slow_threshold_us = args.slow_us;
  options.telemetry.slow_log_path = args.slow_log;
  options.telemetry.ring_capacity = args.telemetry_ring;
  return options;
}

/// Telemetry epilogue shared by serve/run: text report + Chrome trace.
int dump_telemetry(const Args& args, rt::Service& service) {
  if (!service.telemetry_enabled()) return 0;
  std::printf("%s", service.telemetry_text().c_str());
  if (args.trace_out.empty()) return 0;
  std::FILE* f = std::fopen(args.trace_out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s: %s\n", args.trace_out.c_str(),
                 std::strerror(errno));
    return 1;
  }
  std::string doc = service.telemetry_chrome_json();
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  std::printf("telemetry: chrome trace written to %s\n",
              args.trace_out.c_str());
  return 0;
}

/// Exit code for a failed client exchange: transport and protocol
/// breakage is 4 (socket error), a clean rt-* refusal from the service
/// is 1 (command failed). The error text is printed verbatim either way
/// so the rt-* code is visible to scripts.
int client_exit_code(const std::string& error) {
  if (error.rfind("rt-socket", 0) == 0 ||
      error.rfind("rt-bad-response", 0) == 0) {
    return 4;
  }
  return 1;
}

std::shared_ptr<const rt::LoadedProgram> load_or_die(const Args& args,
                                                     rt::ProgramStore& store) {
  if (args.artifact.empty()) {
    std::fprintf(stderr, "missing --artifact\n");
    usage();
    std::exit(2);
  }
  rt::ArtifactError error;
  auto program = store.load_file(args.artifact, &error);
  if (program == nullptr) {
    std::fprintf(stderr, "cannot load %s: %s\n", args.artifact.c_str(),
                 error.str().c_str());
    std::exit(error.code == "rt-io-error" ? 2 : 3);
  }
  return program;
}

int cmd_serve(const Args& args) {
  if (args.socket_path.empty()) {
    std::fprintf(stderr, "serve needs --socket\n");
    usage();
    return 2;
  }
  rt::ProgramStore store;
  auto program = load_or_die(args, store);
  rt::Service service(program, service_options(args));

  rt::RemoteServer server(service, args.socket_path);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 4;
  }
  std::printf("hic-rtd: serving %s on %s (%d shard%s)\n",
              program->name().c_str(), args.socket_path.c_str(), args.shards,
              args.shards == 1 ? "" : "s");
  std::fflush(stdout);

  // Foreground daemon: run until stdin closes or a line arrives (gives CI
  // and shells a deterministic, signal-free way to stop the server).
  std::string line;
  std::getline(std::cin, line);

  server.stop();
  service.shutdown();
  std::printf("%s", service.stats_text().c_str());
  int rc = dump_telemetry(args, service);
  std::printf("hic-rtd: clean shutdown\n");
  return rc;
}

int cmd_run(const Args& args) {
  rt::ProgramStore store;
  auto program = load_or_die(args, store);
  rt::Service service(program, service_options(args));

  // Drive the whole workload async, then drain once: sessions interleave
  // across the shard pool exactly as remote clients would.
  std::vector<std::future<rt::CommandResult>> runs;
  std::vector<std::future<rt::CommandResult>> consumes;
  auto wall_start = std::chrono::steady_clock::now();
  for (int i = 0; i < args.sessions; ++i) {
    std::uint64_t session = service.open_session();
    for (int p = 0; p < args.produces; ++p) {
      rt::BufferHandle buf = service.buffers().allocate(4);
      for (std::size_t w = 0; w < buf.size(); ++w) {
        buf[w] = static_cast<std::uint64_t>(i * 131 + p * 17) + w;
      }
      service.produce(session, std::move(buf));
    }
    runs.push_back(service.run(session));
    consumes.push_back(service.consume(session, {}));
  }
  service.drain();
  auto wall_us = std::chrono::duration_cast<std::chrono::microseconds>(
                     std::chrono::steady_clock::now() - wall_start)
                     .count();

  int failures = 0;
  for (auto& f : runs) {
    rt::CommandResult r = f.get();
    if (!r.ok) {
      std::fprintf(stderr, "run failed on session %llu: %s\n",
                   static_cast<unsigned long long>(r.session),
                   r.error.c_str());
      ++failures;
    }
  }
  for (auto& f : consumes) {
    rt::CommandResult r = f.get();
    if (!r.ok) {
      std::fprintf(stderr, "consume failed on session %llu: %s\n",
                   static_cast<unsigned long long>(r.session),
                   r.error.c_str());
      ++failures;
    }
  }

  std::printf("%s", service.stats_text().c_str());
  rt::Service::Stats stats = service.stats();
  double secs = static_cast<double>(wall_us) / 1e6;
  if (secs > 0) {
    std::printf("throughput: %.0f commands/s, %.0f runs/s over %.3fs\n",
                static_cast<double>(stats.completed) / secs,
                static_cast<double>(stats.runs) / secs, secs);
  }
  int telemetry_rc = dump_telemetry(args, service);
  service.shutdown();
  std::printf("hic-rtd: clean shutdown\n");
  if (failures != 0) return 1;
  return telemetry_rc;
}

int cmd_submit(const Args& args) {
  if (args.socket_path.empty()) {
    std::fprintf(stderr, "submit needs --socket\n");
    usage();
    return 2;
  }
  rt::RemoteClient client;
  std::string error;
  if (!client.connect(args.socket_path, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 4;
  }
  if (!args.tag.empty()) client.set_tag(args.tag);

  std::uint64_t session = args.session;
  if (args.do_open) {
    if (!client.open_session(&session, &error)) {
      std::fprintf(stderr, "open failed: %s\n", error.c_str());
      return 1;
    }
    std::printf("session %llu\n", static_cast<unsigned long long>(session));
  } else if (!args.have_session &&
             (args.do_produce || args.do_run || args.do_consume ||
              args.do_close)) {
    std::fprintf(stderr, "submit ops need --open or --session <id>\n");
    return 2;
  }
  if (args.do_produce &&
      !client.produce(session, args.produce_words, &error)) {
    std::fprintf(stderr, "produce failed: %s\n", error.c_str());
    return 1;
  }
  if (args.do_run) {
    rt::RemoteClient::RunInfo info;
    if (!client.run(session, args.run_passes, &info, &error)) {
      std::fprintf(stderr, "run failed: %s\n", error.c_str());
      return 1;
    }
    std::printf("run: converged=%s cycles=%llu rounds=%llu shard=%d\n",
                info.converged ? "true" : "false",
                static_cast<unsigned long long>(info.cycles),
                static_cast<unsigned long long>(info.rounds), info.shard);
  }
  if (args.do_consume) {
    std::vector<std::pair<std::string, std::uint64_t>> registers;
    if (!client.consume(session, args.consume_names, &registers, &error)) {
      std::fprintf(stderr, "consume failed: %s\n", error.c_str());
      return 1;
    }
    for (const auto& [name, value] : registers) {
      std::printf("%s = %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    }
  }
  if (args.do_close && !client.close_session(session, &error)) {
    std::fprintf(stderr, "close failed: %s\n", error.c_str());
    return 1;
  }
  return 0;
}

int cmd_stats(const Args& args) {
  if (args.socket_path.empty()) {
    std::fprintf(stderr, "stats needs --socket\n");
    usage();
    return 2;
  }
  rt::RemoteClient client;
  std::string error;
  if (!client.connect(args.socket_path, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 4;
  }
  std::string describe;
  std::string json;
  if (!client.describe(&describe, &error) || !client.stats(&json, &error)) {
    std::fprintf(stderr, "stats failed: %s\n", error.c_str());
    return client_exit_code(error);
  }
  std::printf("%s%s\n", describe.c_str(), json.c_str());
  return 0;
}

/// One rendered frame of the live view. Returns false on a document the
/// renderer does not understand (caller treats as rt-bad-response).
bool render_watch_frame(const std::string& telemetry_json, int poll) {
  support::JsonValue doc;
  std::string json_error;
  if (!support::parse_json(telemetry_json, &doc, &json_error)) return false;
  const support::JsonValue* enabled = doc.find("enabled");
  if (enabled == nullptr || !enabled->is_bool()) return false;
  if (!enabled->bool_value) {
    std::printf("[%d] telemetry disabled on server\n", poll);
    return true;
  }
  const support::JsonValue* shards = doc.find("shards");
  const support::JsonValue* slow = doc.find("slow_log_entries");
  if (shards == nullptr || !shards->is_array()) return false;
  std::printf("[%d] %zu shard%s, %llu slow request%s\n", poll,
              shards->elements.size(),
              shards->elements.size() == 1 ? "" : "s",
              slow != nullptr && slow->is_number()
                  ? static_cast<unsigned long long>(slow->number_value)
                  : 0ULL,
              slow != nullptr && slow->number_value == 1 ? "" : "s");
  for (const support::JsonValue& shard : shards->elements) {
    auto num = [&shard](const char* key) -> unsigned long long {
      const support::JsonValue* v = shard.find(key);
      return v != nullptr && v->is_number()
                 ? static_cast<unsigned long long>(v->number_value)
                 : 0ULL;
    };
    std::printf("  shard %llu: queue %llu, %llu spans, busy %llu us",
                num("shard"), num("queue_depth"), num("spans_recorded"),
                num("busy_us"));
    const support::JsonValue* stages = shard.find("stages");
    const support::JsonValue* total =
        stages != nullptr ? stages->find("total_us") : nullptr;
    if (total != nullptr) {
      auto pct = [&total](const char* key) -> unsigned long long {
        const support::JsonValue* v = total->find(key);
        return v != nullptr && v->is_number()
                   ? static_cast<unsigned long long>(v->number_value)
                   : 0ULL;
      };
      std::printf(", total p50/p95/p99 %llu/%llu/%llu us", pct("p50"),
                  pct("p95"), pct("p99"));
    }
    std::printf("\n");
  }
  std::fflush(stdout);
  return true;
}

int cmd_watch(const Args& args) {
  if (args.socket_path.empty()) {
    std::fprintf(stderr, "watch needs --socket\n");
    usage();
    return 2;
  }
  rt::RemoteClient client;
  std::string error;
  if (!client.connect(args.socket_path, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 4;
  }
  for (int poll = 0; args.count <= 0 || poll < args.count; ++poll) {
    if (poll > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(args.interval_ms));
    }
    std::string json;
    if (!client.telemetry(&json, &error)) {
      std::fprintf(stderr, "watch failed: %s\n", error.c_str());
      return client_exit_code(error);
    }
    if (args.json) {
      std::printf("%s\n", json.c_str());
      std::fflush(stdout);
    } else if (!render_watch_frame(json, poll)) {
      std::fprintf(stderr,
                   "watch failed: rt-bad-response: unexpected telemetry "
                   "document\n");
      return 4;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  Args args;
  args.mode = argv[1];
  if (args.mode == "--help" || args.mode == "-h") {
    usage();
    return 0;
  }

  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--artifact") {
      args.artifact = next();
    } else if (arg == "--socket") {
      args.socket_path = next();
    } else if (arg == "--shards") {
      args.shards = std::atoi(next());
    } else if (arg == "--sessions") {
      args.sessions = std::atoi(next());
    } else if (arg == "--passes") {
      args.passes = std::atoi(next());
    } else if (arg == "--produces") {
      args.produces = std::atoi(next());
    } else if (arg == "--max-cycles") {
      args.max_cycles = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--metrics") {
      args.metrics = true;
    } else if (arg == "--telemetry") {
      args.telemetry = true;
    } else if (arg == "--slow-us") {
      args.slow_us = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--slow-log") {
      args.slow_log = next();
    } else if (arg == "--telemetry-ring") {
      args.telemetry_ring = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--trace-out") {
      args.trace_out = next();
    } else if (arg == "--interval-ms") {
      args.interval_ms = std::atoi(next());
    } else if (arg == "--count") {
      args.count = std::atoi(next());
    } else if (arg == "--json") {
      args.json = true;
    } else if (arg == "--tag") {
      args.tag = next();
    } else if (arg == "--open") {
      args.do_open = true;
    } else if (arg == "--session") {
      args.session = static_cast<std::uint64_t>(std::atoll(next()));
      args.have_session = true;
    } else if (arg == "--produce") {
      args.do_produce = true;
      if (!parse_words(next(), &args.produce_words)) {
        std::fprintf(stderr, "bad --produce word list\n");
        return 2;
      }
    } else if (arg == "--run") {
      args.do_run = true;
      args.run_passes = std::atoi(next());
    } else if (arg == "--consume") {
      args.do_consume = true;
      std::string csv = next();
      if (csv != "all") {
        args.consume_names = support::split(csv, ',');
      }
    } else if (arg == "--close") {
      args.do_close = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage();
      return 2;
    }
  }

  if (args.mode == "serve") return cmd_serve(args);
  if (args.mode == "run") return cmd_run(args);
  if (args.mode == "submit") return cmd_submit(args);
  if (args.mode == "stats") return cmd_stats(args);
  if (args.mode == "watch") return cmd_watch(args);
  std::fprintf(stderr, "unknown mode '%s'\n", args.mode.c_str());
  usage();
  return 2;
}
