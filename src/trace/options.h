// Parsing of `--trace=` specs shared by hicc and other drivers.
//
// A spec is `kind[,out=PATH]` with kind one of metrics|vcd|chrome|bundle;
// the flag is repeatable, each occurrence enabling one sink. Empty paths
// mean the driver's default (metrics: stdout; vcd/chrome: derived from the
// input file name; bundle: `<input stem>.bundle/` directory).
#pragma once

#include <string>
#include <string_view>

namespace hicsync::trace {

struct TraceOptions {
  bool metrics = false;
  bool vcd = false;
  bool chrome = false;
  bool bundle = false;
  std::string metrics_out;  // empty = stdout
  std::string vcd_out;      // empty = <input stem>.vcd
  std::string chrome_out;   // empty = <input stem>.trace.json
  std::string bundle_out;   // empty = <input stem>.bundle (a directory)

  [[nodiscard]] bool any() const {
    return metrics || vcd || chrome || bundle;
  }
};

/// Applies one spec to `opts`. Returns false (and fills `error`) on an
/// unknown kind or malformed option.
[[nodiscard]] bool parse_trace_spec(std::string_view spec, TraceOptions& opts,
                                    std::string* error);

}  // namespace hicsync::trace
