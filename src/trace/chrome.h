// Chrome-trace (chrome://tracing / Perfetto) JSON exporter.
//
// Renders the event stream as a Trace Event Format document with one track
// per thread (FSM-state spans, block spans) and one track per controller
// pseudo-port (grant instants, stall instants with the cause in args), plus
// a dependency track per controller carrying produce→round-complete spans.
// One simulation cycle maps to one microsecond of trace time.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "trace/bus.h"

namespace hicsync::trace {

class ChromeTraceSink : public TraceSink {
 public:
  void on_event(const Event& e) override;
  void finish(std::uint64_t final_cycle) override;

  /// The complete JSON document. Valid after finish().
  [[nodiscard]] const std::string& str() const { return out_; }

 private:
  struct Track {
    int pid = 0;
    int tid = 0;
  };

  Track track(int pid, const std::string& name);
  void emit_json(const std::string& line);

  // pid 1: threads, pid 2: controller ports, pid 3: dependencies.
  std::map<std::string, Track> tracks_;  // keyed "pid/name"
  std::map<int, int> next_tid_;
  std::vector<std::string> events_;      // serialized JSON objects

  struct OpenSpan {
    bool open = false;
    std::uint64_t start = 0;
    std::int64_t value = 0;
  };
  std::map<std::string, OpenSpan> state_spans_;  // thread -> current state
  std::map<std::string, OpenSpan> block_spans_;  // thread -> block span
  std::map<std::string, OpenSpan> round_spans_;  // dep -> open round
  std::map<std::string, int> round_controller_;  // dep -> controller id
  std::string out_;
};

}  // namespace hicsync::trace
