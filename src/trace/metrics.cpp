#include "trace/metrics.h"

#include <algorithm>
#include <cmath>

#include "support/strings.h"

namespace hicsync::trace {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<std::uint64_t> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::record(std::uint64_t sample) {
  // Binary search, not a scan: large samples (deep-queue latencies) would
  // otherwise walk every bound, and record() sits on hot paths.
  std::size_t i = static_cast<std::size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), sample) -
      bounds_.begin());
  ++counts_[i];
  if (count_ == 0 || sample < min_) min_ = sample;
  if (sample > max_) max_ = sample;
  sum_ += sample;
  ++count_;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  sum_ += other.sum_;
  count_ += other.count_;
  if (other.bounds_ == bounds_) {
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      counts_[i] += other.counts_[i];
    }
    return;
  }
  // Different bucket layout: re-bin each foreign bucket at its highest
  // representable sample (bucket i of `other` covers samples < bounds[i]),
  // overflow at the observed max. The moments folded above stay exact.
  for (std::size_t i = 0; i < other.counts_.size(); ++i) {
    if (other.counts_[i] == 0) continue;
    const std::uint64_t representative =
        i < other.bounds_.size()
            ? (other.bounds_[i] == 0 ? 0 : other.bounds_[i] - 1)
            : other.max_;
    const std::size_t j = static_cast<std::size_t>(
        std::upper_bound(bounds_.begin(), bounds_.end(), representative) -
        bounds_.begin());
    counts_[j] += other.counts_[i];
  }
}

Histogram Histogram::from_snapshot(
    std::vector<std::uint64_t> upper_bounds,
    const std::vector<std::uint64_t>& bucket_counts, std::uint64_t min,
    std::uint64_t max, std::uint64_t sum) {
  Histogram h(std::move(upper_bounds));
  const std::size_t n = std::min(h.counts_.size(), bucket_counts.size());
  for (std::size_t i = 0; i < n; ++i) {
    h.counts_[i] = bucket_counts[i];
    h.count_ += bucket_counts[i];
  }
  h.min_ = min;
  h.max_ = max;
  h.sum_ = sum;
  return h;
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t Histogram::percentile(double p) const {
  if (count_ == 0) return 0;
  if (p <= 0.0) return min();
  if (p > 100.0) p = 100.0;
  const auto target = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= target) {
      // Bucket i covers [bounds[i-1], bounds[i]); report its upper bound,
      // clamped to the values actually observed.
      std::uint64_t v = i < bounds_.size() ? bounds_[i] : max_;
      return std::max(min(), std::min(v, max_));
    }
  }
  return max_;
}

std::string Histogram::str() const {
  std::string out;
  std::uint64_t lo = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) {
      lo = i < bounds_.size() ? bounds_[i] : lo;
      continue;
    }
    if (!out.empty()) out += " ";
    if (i < bounds_.size()) {
      out += support::format("[%llu,%llu):%llu",
                             static_cast<unsigned long long>(lo),
                             static_cast<unsigned long long>(bounds_[i]),
                             static_cast<unsigned long long>(counts_[i]));
      lo = bounds_[i];
    } else {
      out += support::format("[%llu,inf):%llu",
                             static_cast<unsigned long long>(lo),
                             static_cast<unsigned long long>(counts_[i]));
    }
  }
  return out.empty() ? "(empty)" : out;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<std::uint64_t> bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, Histogram(std::move(bounds))).first;
  }
  return it->second;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::string MetricsRegistry::text() const {
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += support::format("%-44s %llu\n", name.c_str(),
                           static_cast<unsigned long long>(c.value()));
  }
  for (const auto& [name, h] : histograms_) {
    out += support::format(
        "%-44s n=%llu min=%llu mean=%.1f max=%llu  %s\n", name.c_str(),
        static_cast<unsigned long long>(h.count()),
        static_cast<unsigned long long>(h.min()), h.mean(),
        static_cast<unsigned long long>(h.max()), h.str().c_str());
  }
  return out;
}

std::string MetricsRegistry::json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += support::format("%s\n    \"%s\": %llu", first ? "" : ",",
                           name.c_str(),
                           static_cast<unsigned long long>(c.value()));
    first = false;
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += support::format(
        "%s\n    \"%s\": {\"count\": %llu, \"min\": %llu, \"mean\": %.3f, "
        "\"max\": %llu, \"sum\": %llu, \"bounds\": [",
        first ? "" : ",", name.c_str(),
        static_cast<unsigned long long>(h.count()),
        static_cast<unsigned long long>(h.min()), h.mean(),
        static_cast<unsigned long long>(h.max()),
        static_cast<unsigned long long>(h.sum()));
    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
      out += support::format("%s%llu", i == 0 ? "" : ", ",
                             static_cast<unsigned long long>(h.bounds()[i]));
    }
    out += "], \"buckets\": [";
    for (std::size_t i = 0; i < h.bucket_counts().size(); ++i) {
      out += support::format(
          "%s%llu", i == 0 ? "" : ", ",
          static_cast<unsigned long long>(h.bucket_counts()[i]));
    }
    out += "]}";
    first = false;
  }
  out += "\n  }\n}\n";
  return out;
}

// ---------------------------------------------------------------------------
// MetricsSink
// ---------------------------------------------------------------------------

std::string PortStats::name() const {
  std::string n = "bram" + std::to_string(controller) + "." +
                  to_string(port);
  if (pseudo_port >= 0) n += std::to_string(pseudo_port);
  return n;
}

namespace {

/// Latency bucket bounds (cycles) shared by every round histogram, chosen
/// to resolve the §3.2 deterministic latencies (a handful of cycles) and
/// still separate pathological stalls.
std::vector<std::uint64_t> round_bounds() {
  return {2, 4, 8, 16, 32, 64, 128, 256};
}

}  // namespace

MetricsSink::MetricsSink() = default;

Histogram& MetricsSink::round_histogram(const std::string& dep) {
  return registry_.histogram("dep." + dep + ".round_latency", round_bounds());
}

void MetricsSink::on_cycle(std::uint64_t cycle) {
  cycles_ = std::max(cycles_, cycle + 1);
}

void MetricsSink::on_event(const Event& e) {
  switch (e.kind) {
    case EventKind::PortRequest:
    case EventKind::PortGrant:
    case EventKind::PortStall: {
      PortStats proto;
      proto.controller = e.controller;
      proto.port = e.port;
      proto.pseudo_port = e.port == PortKind::A ? -1 : e.pseudo_port;
      PortStats& p = ports_.emplace(proto.name(), proto).first->second;
      if (e.kind == EventKind::PortRequest) {
        ++p.requests;
      } else if (e.kind == EventKind::PortGrant) {
        ++p.grants;
        std::uint64_t& last = controller_last_[e.controller];
        if (last != e.cycle + 1) {
          last = e.cycle + 1;
          ++controller_active_[e.controller];
        }
      } else {
        switch (e.cause) {
          case StallCause::ArbitrationLoss: ++p.stall_arbitration; break;
          case StallCause::DependencyNotProduced: ++p.stall_dependency; break;
          case StallCause::NotOurSlot: ++p.stall_slot; break;
          case StallCause::PortABusy: ++p.stall_port_a; break;
          case StallCause::DataWait: ++p.stall_data; break;
          case StallCause::None: break;
        }
        registry_
            .counter("stall." + std::string(to_string(e.cause)))
            .add();
      }
      break;
    }
    case EventKind::ArbWin:
      registry_
          .counter("arb.bram" + std::to_string(e.controller) + ".win." +
                   to_string(e.port) + std::to_string(e.pseudo_port))
          .add();
      break;
    case EventKind::SlotAdvance:
      registry_
          .counter("slot.bram" + std::to_string(e.controller) + ".advances")
          .add();
      break;
    case EventKind::Produce:
      registry_.counter("dep." + std::string(e.dep) + ".produces").add();
      break;
    case EventKind::Consume:
      registry_.counter("dep." + std::string(e.dep) + ".consumes").add();
      break;
    case EventKind::RoundComplete:
      round_histogram(std::string(e.dep))
          .record(static_cast<std::uint64_t>(e.value));
      break;
    case EventKind::FsmState:
      registry_
          .counter("thread." + std::string(e.thread) + ".state_transitions")
          .add();
      break;
    case EventKind::ThreadBlock:
      block_start_[std::string(e.thread)] = e.cycle;
      break;
    case EventKind::ThreadUnblock: {
      auto it = block_start_.find(std::string(e.thread));
      if (it != block_start_.end()) {
        block_spans_[it->first] += e.cycle - it->second;
        block_start_.erase(it);
      }
      break;
    }
    case EventKind::PassComplete:
      registry_.counter("thread." + std::string(e.thread) + ".passes").add();
      break;
  }
}

void MetricsSink::finish(std::uint64_t final_cycle) {
  cycles_ = std::max(cycles_, final_cycle);
  // Close any still-open block spans at the end of the run.
  for (const auto& [thread, start] : block_start_) {
    block_spans_[thread] += cycles_ > start ? cycles_ - start : 0;
  }
  block_start_.clear();
}

std::vector<PortStats> MetricsSink::port_stats() const {
  std::vector<PortStats> out;
  out.reserve(ports_.size());
  for (const auto& [name, p] : ports_) out.push_back(p);
  return out;
}

double MetricsSink::occupancy_pct(int controller) const {
  auto it = controller_active_.find(controller);
  if (it == controller_active_.end() || cycles_ == 0) return 0.0;
  return 100.0 * static_cast<double>(it->second) /
         static_cast<double>(cycles_);
}

std::string MetricsSink::report_text() const {
  std::string out = support::format(
      "=== hic-trace metrics: %llu cycles ===\n",
      static_cast<unsigned long long>(cycles_));
  out += "per-port utilization and stall attribution:\n";
  out += support::format(
      "  %-12s %8s %8s %7s %9s %9s %9s %9s %9s\n", "port", "requests",
      "grants", "util%", "arb-loss", "dep-wait", "slot-wait", "portA-busy",
      "data-wait");
  for (const auto& [name, p] : ports_) {
    out += support::format(
        "  %-12s %8llu %8llu %6.1f%% %9llu %9llu %9llu %9llu %9llu\n",
        name.c_str(), static_cast<unsigned long long>(p.requests),
        static_cast<unsigned long long>(p.grants),
        p.utilization_pct(cycles_),
        static_cast<unsigned long long>(p.stall_arbitration),
        static_cast<unsigned long long>(p.stall_dependency),
        static_cast<unsigned long long>(p.stall_slot),
        static_cast<unsigned long long>(p.stall_port_a),
        static_cast<unsigned long long>(p.stall_data));
  }
  out += "controller occupancy:\n";
  for (const auto& [ctrl, active] : controller_active_) {
    out += support::format(
        "  bram%-3d active %llu / %llu cycles (%.1f%%)\n", ctrl,
        static_cast<unsigned long long>(active),
        static_cast<unsigned long long>(cycles_), occupancy_pct(ctrl));
  }
  if (!block_spans_.empty()) {
    out += "thread blocking:\n";
    for (const auto& [thread, blocked] : block_spans_) {
      out += support::format(
          "  %-12s blocked %llu cycles (%.1f%%)\n", thread.c_str(),
          static_cast<unsigned long long>(blocked),
          cycles_ == 0 ? 0.0
                       : 100.0 * static_cast<double>(blocked) /
                             static_cast<double>(cycles_));
    }
  }
  out += registry_.text();
  return out;
}

std::string MetricsSink::report_json() const {
  std::string out = support::format(
      "{\n\"cycles\": %llu,\n\"ports\": [",
      static_cast<unsigned long long>(cycles_));
  bool first = true;
  for (const auto& [name, p] : ports_) {
    out += support::format(
        "%s\n  {\"port\": \"%s\", \"requests\": %llu, \"grants\": %llu, "
        "\"utilization_pct\": %.3f, \"stalls\": {\"arbitration_loss\": %llu, "
        "\"dependency_not_produced\": %llu, \"not_our_slot\": %llu, "
        "\"port_a_busy\": %llu, \"data_wait\": %llu}}",
        first ? "" : ",", name.c_str(),
        static_cast<unsigned long long>(p.requests),
        static_cast<unsigned long long>(p.grants),
        p.utilization_pct(cycles_),
        static_cast<unsigned long long>(p.stall_arbitration),
        static_cast<unsigned long long>(p.stall_dependency),
        static_cast<unsigned long long>(p.stall_slot),
        static_cast<unsigned long long>(p.stall_port_a),
        static_cast<unsigned long long>(p.stall_data));
    first = false;
  }
  out += "\n],\n\"occupancy_pct\": {";
  first = true;
  for (const auto& [ctrl, active] : controller_active_) {
    (void)active;
    out += support::format("%s\"bram%d\": %.3f", first ? "" : ", ", ctrl,
                           occupancy_pct(ctrl));
    first = false;
  }
  out += "},\n\"registry\": " + registry_.json() + "}\n";
  return out;
}

}  // namespace hicsync::trace
