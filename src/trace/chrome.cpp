#include "trace/chrome.h"

#include "support/strings.h"

namespace hicsync::trace {

namespace {

std::string port_track_name(const Event& e) {
  std::string n = "bram" + std::to_string(e.controller) + "." +
                  to_string(e.port);
  if (e.pseudo_port >= 0 && e.port != PortKind::A) {
    n += std::to_string(e.pseudo_port);
  }
  return n;
}

constexpr int kThreadPid = 1;
constexpr int kPortPid = 2;
constexpr int kDepPid = 3;

}  // namespace

ChromeTraceSink::Track ChromeTraceSink::track(int pid,
                                              const std::string& name) {
  std::string key = std::to_string(pid) + "/" + name;
  auto it = tracks_.find(key);
  if (it == tracks_.end()) {
    Track t;
    t.pid = pid;
    t.tid = ++next_tid_[pid];
    it = tracks_.emplace(key, t).first;
    events_.push_back(support::format(
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,"
        "\"args\":{\"name\":\"%s\"}}",
        t.pid, t.tid, name.c_str()));
  }
  return it->second;
}

void ChromeTraceSink::emit_json(const std::string& line) {
  events_.push_back(line);
}

void ChromeTraceSink::on_event(const Event& e) {
  switch (e.kind) {
    case EventKind::PortGrant: {
      Track t = track(kPortPid, port_track_name(e));
      emit_json(support::format(
          "{\"name\":\"grant\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%llu,"
          "\"pid\":%d,\"tid\":%d,\"args\":{\"thread\":\"%.*s\"}}",
          static_cast<unsigned long long>(e.cycle), t.pid, t.tid,
          static_cast<int>(e.thread.size()), e.thread.data()));
      break;
    }
    case EventKind::PortStall: {
      Track t = track(kPortPid, port_track_name(e));
      emit_json(support::format(
          "{\"name\":\"stall\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%llu,"
          "\"pid\":%d,\"tid\":%d,"
          "\"args\":{\"cause\":\"%s\",\"thread\":\"%.*s\"}}",
          static_cast<unsigned long long>(e.cycle), t.pid, t.tid,
          to_string(e.cause), static_cast<int>(e.thread.size()),
          e.thread.data()));
      break;
    }
    case EventKind::FsmState: {
      std::string thread(e.thread);
      Track t = track(kThreadPid, thread);
      OpenSpan& span = state_spans_[thread];
      if (span.open) {
        emit_json(support::format(
            "{\"name\":\"S%lld\",\"ph\":\"X\",\"ts\":%llu,\"dur\":%llu,"
            "\"pid\":%d,\"tid\":%d}",
            static_cast<long long>(span.value),
            static_cast<unsigned long long>(span.start),
            static_cast<unsigned long long>(
                e.cycle > span.start ? e.cycle - span.start : 1),
            t.pid, t.tid));
      }
      span.open = true;
      span.start = e.cycle;
      span.value = e.value;
      break;
    }
    case EventKind::ThreadBlock: {
      std::string thread(e.thread);
      track(kThreadPid, thread);
      OpenSpan& span = block_spans_[thread];
      span.open = true;
      span.start = e.cycle;
      break;
    }
    case EventKind::ThreadUnblock: {
      std::string thread(e.thread);
      Track t = track(kThreadPid, thread);
      OpenSpan& span = block_spans_[thread];
      if (span.open) {
        emit_json(support::format(
            "{\"name\":\"blocked\",\"ph\":\"X\",\"ts\":%llu,\"dur\":%llu,"
            "\"pid\":%d,\"tid\":%d}",
            static_cast<unsigned long long>(span.start),
            static_cast<unsigned long long>(
                e.cycle > span.start ? e.cycle - span.start : 1),
            t.pid, t.tid));
        span.open = false;
      }
      break;
    }
    case EventKind::Produce: {
      std::string dep(e.dep);
      track(kDepPid, dep);
      OpenSpan& span = round_spans_[dep];
      span.open = true;
      span.start = e.cycle;
      round_controller_[dep] = e.controller;
      break;
    }
    case EventKind::RoundComplete: {
      std::string dep(e.dep);
      Track t = track(kDepPid, dep);
      OpenSpan& span = round_spans_[dep];
      if (span.open) {
        emit_json(support::format(
            "{\"name\":\"round %s\",\"ph\":\"X\",\"ts\":%llu,\"dur\":%llu,"
            "\"pid\":%d,\"tid\":%d,\"args\":{\"latency\":%lld}}",
            dep.c_str(), static_cast<unsigned long long>(span.start),
            static_cast<unsigned long long>(
                e.cycle > span.start ? e.cycle - span.start : 1),
            t.pid, t.tid, static_cast<long long>(e.value)));
        span.open = false;
      }
      break;
    }
    case EventKind::Consume:
    case EventKind::PortRequest:
    case EventKind::ArbWin:
    case EventKind::SlotAdvance:
    case EventKind::PassComplete:
      break;
  }
}

void ChromeTraceSink::finish(std::uint64_t final_cycle) {
  // Close any spans still open at the end of the run.
  for (auto& [thread, span] : state_spans_) {
    if (!span.open) continue;
    Track t = track(kThreadPid, thread);
    emit_json(support::format(
        "{\"name\":\"S%lld\",\"ph\":\"X\",\"ts\":%llu,\"dur\":%llu,"
        "\"pid\":%d,\"tid\":%d}",
        static_cast<long long>(span.value),
        static_cast<unsigned long long>(span.start),
        static_cast<unsigned long long>(
            final_cycle > span.start ? final_cycle - span.start : 1),
        t.pid, t.tid));
    span.open = false;
  }
  for (auto& [thread, span] : block_spans_) {
    if (!span.open) continue;
    Track t = track(kThreadPid, thread);
    emit_json(support::format(
        "{\"name\":\"blocked\",\"ph\":\"X\",\"ts\":%llu,\"dur\":%llu,"
        "\"pid\":%d,\"tid\":%d}",
        static_cast<unsigned long long>(span.start),
        static_cast<unsigned long long>(
            final_cycle > span.start ? final_cycle - span.start : 1),
        t.pid, t.tid));
    span.open = false;
  }

  // Name the three process groups for the viewer's track tree.
  std::vector<std::string> lines;
  constexpr const char* kPidNames[] = {"threads", "controller ports",
                                       "dependencies"};
  for (int pid = kThreadPid; pid <= kDepPid; ++pid) {
    if (next_tid_.count(pid) == 0) continue;
    lines.push_back(support::format(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
        "\"args\":{\"name\":\"%s\"}}",
        pid, kPidNames[pid - 1]));
  }
  lines.insert(lines.end(), events_.begin(), events_.end());

  out_ = "{\"traceEvents\":[\n";
  for (std::size_t i = 0; i < lines.size(); ++i) {
    out_ += lines[i];
    if (i + 1 < lines.size()) out_ += ",";
    out_ += "\n";
  }
  out_ += "],\"displayTimeUnit\":\"ns\"}\n";
}

}  // namespace hicsync::trace
