// MetricsRegistry: counters + fixed-bucket latency histograms, and the
// MetricsSink that populates one from TraceBus events.
//
// The registry is deliberately generic (named counters/histograms with a
// text and JSON rendering) so benches can publish their own series; the
// sink adds the derived §3/§4 views: per-port utilization %, stall-cycle
// attribution by cause, per-dependency round-latency distributions and
// controller occupancy.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "trace/bus.h"

namespace hicsync::trace {

class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Fixed-bucket histogram: bucket i counts samples < bounds[i] (and >=
/// bounds[i-1]); one implicit overflow bucket collects the rest. Bounds are
/// fixed at creation so recording is O(#buckets) with no allocation.
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> upper_bounds);

  void record(std::uint64_t sample);

  /// Folds `other` into this histogram: bucket-wise sum plus exact
  /// count/sum/min/max folds. With identical bucket layouts the merge is
  /// exact; with different layouts each foreign bucket is re-binned at its
  /// highest representable sample (overflow at the observed max), so the
  /// aggregate moments stay exact and only bucket placement is
  /// approximate. Used by hic-diff and rt::Service to aggregate per-shard
  /// series before reporting percentiles.
  void merge(const Histogram& other);

  /// Reconstructs a histogram from its serialized form (the registry JSON
  /// rendering: bounds, per-bucket counts incl. overflow, min/max/sum).
  /// Extra or missing trailing bucket counts are ignored/zero-filled.
  [[nodiscard]] static Histogram from_snapshot(
      std::vector<std::uint64_t> upper_bounds,
      const std::vector<std::uint64_t>& bucket_counts, std::uint64_t min,
      std::uint64_t max, std::uint64_t sum);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] double mean() const;
  /// Approximate p-th percentile (0 < p <= 100) by cumulative bucket walk:
  /// the upper bound of the first bucket whose cumulative count reaches
  /// ceil(p/100 * count), clamped to the observed [min, max] (so exact
  /// extremes come back exact and the overflow bucket reports max). 0 when
  /// the histogram is empty.
  [[nodiscard]] std::uint64_t percentile(double p) const;
  [[nodiscard]] const std::vector<std::uint64_t>& bounds() const {
    return bounds_;
  }
  /// bucket_counts().size() == bounds().size() + 1 (last = overflow).
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts() const {
    return counts_;
  }

  [[nodiscard]] std::string str() const;

 private:
  std::vector<std::uint64_t> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

class MetricsRegistry {
 public:
  /// Returns (creating on first use) the named series. Names are dotted
  /// paths ("port.bram0.C0.grants"); the renderings sort by name.
  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::vector<std::uint64_t> upper_bounds);

  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(
      const std::string& name) const;
  [[nodiscard]] const std::map<std::string, Counter>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  [[nodiscard]] std::string text() const;
  [[nodiscard]] std::string json() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Histogram> histograms_;
};

/// Per-pseudo-port tallies the sink derives from the event stream. For
/// ports C and D each simulated cycle with an in-flight access is exactly
/// one of granted/stalled, so `grants + stalls() + idle == total cycles`
/// (the reconciliation tier-1 asserts). Port A is shared by several
/// threads, so its stall count can exceed cycles.
struct PortStats {
  int controller = -1;
  PortKind port = PortKind::None;
  int pseudo_port = -1;

  std::uint64_t requests = 0;
  std::uint64_t grants = 0;
  std::uint64_t stall_arbitration = 0;
  std::uint64_t stall_dependency = 0;
  std::uint64_t stall_slot = 0;
  std::uint64_t stall_port_a = 0;
  std::uint64_t stall_data = 0;

  [[nodiscard]] std::uint64_t stalls() const {
    return stall_arbitration + stall_dependency + stall_slot + stall_port_a +
           stall_data;
  }
  [[nodiscard]] double utilization_pct(std::uint64_t cycles) const {
    return cycles == 0 ? 0.0
                       : 100.0 * static_cast<double>(grants) /
                             static_cast<double>(cycles);
  }
  [[nodiscard]] std::string name() const;
};

class MetricsSink : public TraceSink {
 public:
  MetricsSink();

  void on_cycle(std::uint64_t cycle) override;
  void on_event(const Event& e) override;
  void finish(std::uint64_t final_cycle) override;

  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }
  [[nodiscard]] const MetricsRegistry& registry() const { return registry_; }
  [[nodiscard]] std::vector<PortStats> port_stats() const;
  /// Occupancy of one controller: % of cycles it granted any access.
  [[nodiscard]] double occupancy_pct(int controller) const;

  /// The `--trace=metrics` report.
  [[nodiscard]] std::string report_text() const;
  [[nodiscard]] std::string report_json() const;

 private:
  Histogram& round_histogram(const std::string& dep);

  MetricsRegistry registry_;
  std::uint64_t cycles_ = 0;
  std::map<std::string, PortStats> ports_;            // keyed by name()
  std::map<int, std::uint64_t> controller_active_;    // cycles w/ a grant
  std::map<int, std::uint64_t> controller_last_;      // last counted cycle
  std::map<std::string, std::uint64_t> block_start_;  // open block spans
  std::map<std::string, std::uint64_t> block_spans_;  // thread -> cycles
};

}  // namespace hicsync::trace
