#include "trace/vcd.h"

#include <algorithm>

namespace hicsync::trace {

namespace {

constexpr int kSlotWidth = 16;
constexpr int kStateWidth = 32;

std::string port_signal(const Event& e, const char* suffix) {
  switch (e.port) {
    case PortKind::A: return std::string("a_") + suffix;
    case PortKind::B: return std::string("b_") + suffix;
    case PortKind::C:
      return std::string("c_") + suffix + std::to_string(e.pseudo_port);
    case PortKind::D:
      return std::string("d_") + suffix + std::to_string(e.pseudo_port);
    case PortKind::None: break;
  }
  return {};
}

std::string bram_scope(const Event& e) {
  return "bram" + std::to_string(e.controller);
}

// VCD identifiers cannot contain whitespace or '$'-introduced keywords;
// restrict to the conservative [A-Za-z0-9_] set viewers agree on.
std::string sanitize_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  if (out.empty()) out = "sig";
  return out;
}

std::string bin(std::uint64_t v, int width) {
  std::string s;
  for (int b = width - 1; b >= 0; --b) {
    s += ((v >> b) & 1) != 0 ? '1' : '0';
  }
  // VCD allows dropping leading zeros (keep at least one digit).
  std::size_t nz = s.find('1');
  return nz == std::string::npos ? "0" : s.substr(nz);
}

}  // namespace

VcdSink::Signal& VcdSink::signal(const std::string& scope,
                                 const std::string& name, int width,
                                 bool pulse) {
  std::string key = scope + "/" + name;
  auto it = index_.find(key);
  if (it == index_.end()) {
    it = index_.emplace(key, signals_.size()).first;
    Signal s;
    s.scope = scope;
    // Distinct raw names may sanitize to the same identifier (e.g. "t.1"
    // and "t_1"); uniquify so neither wire shadows the other in the header.
    const std::string base = sanitize_name(name);
    std::string unique = base;
    for (int n = 2; !used_names_.insert(scope + "/" + unique).second; ++n) {
      unique = base + "_" + std::to_string(n);
    }
    s.name = unique;
    s.width = width;
    s.pulse = pulse;
    signals_.push_back(std::move(s));
  }
  return signals_[it->second];
}

void VcdSink::set(Signal& s, std::uint64_t value) {
  pending_[static_cast<std::size_t>(&s - signals_.data())] = value;
}

void VcdSink::flush_cycle() {
  if (!any_cycle_) return;
  for (std::size_t i = 0; i < signals_.size(); ++i) {
    Signal& s = signals_[i];
    auto it = pending_.find(i);
    std::uint64_t v =
        it != pending_.end() ? it->second : (s.pulse ? 0 : s.value);
    if (v != s.value) {
      s.changes.emplace_back(cycle_, v);
      s.value = v;
    }
  }
  pending_.clear();
}

void VcdSink::on_cycle(std::uint64_t cycle) {
  if (any_cycle_ && cycle != cycle_) flush_cycle();
  cycle_ = cycle;
  any_cycle_ = true;
}

void VcdSink::on_event(const Event& e) {
  switch (e.kind) {
    case EventKind::PortRequest:
      set(signal(bram_scope(e), port_signal(e, "req"), 1, true), 1);
      break;
    case EventKind::PortGrant:
    case EventKind::ArbWin:
      set(signal(bram_scope(e), port_signal(e, "grant"), 1, true), 1);
      break;
    case EventKind::PortStall:
      set(signal(bram_scope(e), port_signal(e, "stall"), 1, true), 1);
      break;
    case EventKind::SlotAdvance:
      set(signal(bram_scope(e), "slot", kSlotWidth, false),
          static_cast<std::uint64_t>(e.value));
      break;
    case EventKind::Produce:
      set(signal(bram_scope(e), "produce", 1, true), 1);
      break;
    case EventKind::Consume:
      set(signal(bram_scope(e), "consume", 1, true), 1);
      break;
    case EventKind::RoundComplete:
      break;  // a metrics-level notion; no waveform signal
    case EventKind::FsmState:
      set(signal("threads", std::string(e.thread) + "_state", kStateWidth,
                 false),
          static_cast<std::uint64_t>(e.value));
      break;
    case EventKind::ThreadBlock:
      set(signal("threads", std::string(e.thread) + "_blocked", 1, false), 1);
      break;
    case EventKind::ThreadUnblock:
      set(signal("threads", std::string(e.thread) + "_blocked", 1, false), 0);
      break;
    case EventKind::PassComplete:
      break;  // a metrics/coverage-level notion; no waveform signal
  }
}

std::string VcdSink::id_code(std::size_t index) {
  // Printable identifier alphabet '!'..'~' (94 symbols), little-endian.
  std::string id;
  do {
    id += static_cast<char>('!' + index % 94);
    index /= 94;
  } while (index != 0);
  return id;
}

void VcdSink::finish(std::uint64_t final_cycle) {
  (void)final_cycle;
  flush_cycle();

  out_.clear();
  out_ += "$date\n  (cycle-level trace; timestamps are simulation cycles)\n"
          "$end\n";
  out_ += "$version\n  hicsync hic-trace\n$end\n";
  out_ += "$timescale 1 ns $end\n";

  // Scopes in order of first appearance.
  std::vector<std::string> scopes;
  for (const Signal& s : signals_) {
    if (std::find(scopes.begin(), scopes.end(), s.scope) == scopes.end()) {
      scopes.push_back(s.scope);
    }
  }
  out_ += "$scope module hicsync $end\n";
  for (const std::string& scope : scopes) {
    out_ += "$scope module " + scope + " $end\n";
    for (std::size_t i = 0; i < signals_.size(); ++i) {
      const Signal& s = signals_[i];
      if (s.scope != scope) continue;
      std::string range =
          s.width > 1 ? " [" + std::to_string(s.width - 1) + ":0]" : "";
      out_ += "$var wire " + std::to_string(s.width) + " " + id_code(i) +
              " " + s.name + range + " $end\n";
    }
    out_ += "$upscope $end\n";
  }
  out_ += "$upscope $end\n";
  out_ += "$enddefinitions $end\n";

  // Initial values: every signal starts at 0.
  out_ += "$dumpvars\n";
  for (std::size_t i = 0; i < signals_.size(); ++i) {
    const Signal& s = signals_[i];
    if (s.width == 1) {
      out_ += "0" + id_code(i) + "\n";
    } else {
      out_ += "b0 " + id_code(i) + "\n";
    }
  }
  out_ += "$end\n";

  // Merge all per-signal change lists into one time-ordered dump.
  std::map<std::uint64_t,
           std::vector<std::pair<std::size_t, std::uint64_t>>>
      timeline;
  for (std::size_t i = 0; i < signals_.size(); ++i) {
    for (const auto& [t, v] : signals_[i].changes) {
      timeline[t].emplace_back(i, v);
    }
  }
  for (const auto& [t, changes] : timeline) {
    out_ += "#" + std::to_string(t) + "\n";
    for (const auto& [i, v] : changes) {
      const Signal& s = signals_[i];
      if (s.width == 1) {
        out_ += (v != 0 ? "1" : "0") + id_code(i) + "\n";
      } else {
        out_ += "b" + bin(v, s.width) + " " + id_code(i) + "\n";
      }
    }
  }
  out_ += "#" + std::to_string(cycle_ + 1) + "\n";
}

}  // namespace hicsync::trace
