// The TraceBus: fan-out of simulator events to attached sinks.
//
// Emitters hold an optional `TraceBus*`; a null pointer (or a bus with no
// sinks) costs one branch per instrumentation point, so an untraced
// simulation runs at full speed. Sinks receive `on_cycle` once per
// simulated cycle (before that cycle's events), then the cycle's events in
// emission order, then a single `finish` when the run ends.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/event.h"

namespace hicsync::trace {

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  /// A new simulation cycle begins. Events that follow carry this cycle.
  virtual void on_cycle(std::uint64_t cycle) { (void)cycle; }
  virtual void on_event(const Event& e) = 0;
  /// The run is over; flush derived state. `final_cycle` is the total
  /// number of simulated cycles.
  virtual void finish(std::uint64_t final_cycle) { (void)final_cycle; }
};

class TraceBus {
 public:
  /// Sinks are not owned; they must outlive the bus's last emit/finish.
  void attach(TraceSink* sink);
  /// Removes a sink (all attachments of it). A detached sink receives no
  /// further callbacks — including finish — so detaching mid-run is safe
  /// for sinks that flush on destruction. No-op when not attached.
  void detach(TraceSink* sink);

  /// True when at least one sink is attached. Emitters check this once per
  /// cycle and skip event construction entirely when false.
  [[nodiscard]] bool active() const { return !sinks_.empty(); }

  void begin_cycle(std::uint64_t cycle);
  void emit(const Event& e);
  void finish(std::uint64_t final_cycle);

 private:
  std::vector<TraceSink*> sinks_;
};

}  // namespace hicsync::trace
