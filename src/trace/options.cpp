#include "trace/options.h"

#include "support/strings.h"

namespace hicsync::trace {

bool parse_trace_spec(std::string_view spec, TraceOptions& opts,
                      std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  std::vector<std::string> parts = support::split(spec, ',');
  if (parts.empty() || parts[0].empty()) {
    return fail("empty --trace spec");
  }
  const std::string kind = parts[0];
  std::string out;
  for (std::size_t i = 1; i < parts.size(); ++i) {
    std::string_view p = support::trim(parts[i]);
    if (p.rfind("out=", 0) == 0) {
      out = std::string(p.substr(4));
      if (out.empty()) return fail("empty out= path in --trace spec");
    } else {
      return fail("unknown --trace option '" + std::string(p) + "'");
    }
  }
  if (kind == "metrics") {
    opts.metrics = true;
    if (!out.empty()) opts.metrics_out = out;
  } else if (kind == "vcd") {
    opts.vcd = true;
    if (!out.empty()) opts.vcd_out = out;
  } else if (kind == "chrome") {
    opts.chrome = true;
    if (!out.empty()) opts.chrome_out = out;
  } else if (kind == "bundle") {
    opts.bundle = true;
    if (!out.empty()) opts.bundle_out = out;
  } else {
    return fail("unknown --trace kind '" + kind +
                "' (expected metrics|vcd|chrome|bundle)");
  }
  return true;
}

}  // namespace hicsync::trace
