// hic-trace event taxonomy (see docs/OBSERVABILITY.md).
//
// The simulator and the controller probes publish cycle-stamped, typed
// events onto a TraceBus; sinks (metrics, VCD, chrome-trace) subscribe.
// Events are transient: the string fields view names owned by the emitter
// (thread names, dependency ids), so sinks that buffer must intern them.
#pragma once

#include <cstdint>
#include <string_view>

namespace hicsync::trace {

enum class EventKind : std::uint8_t {
  PortRequest,    // a thread asserts a request on a logical port
  PortGrant,      // the request was granted this cycle
  PortStall,      // request outstanding, no grant this cycle (see cause)
  ArbWin,         // controller side: pseudo-port that won the port
  SlotAdvance,    // event-driven selection logic moved to a new slot
  Produce,        // producer write accepted (opens a dependency round)
  Consume,        // consumer read data valid (a round's consume edge)
  RoundComplete,  // every consumer of the round has read (value = latency)
  FsmState,       // thread entered an FSM state (value = state id)
  ThreadBlock,    // thread began stalling on the memory system
  ThreadUnblock,  // thread's stalled access was finally granted
  PassComplete,   // thread finished a run-to-completion pass (value = count)
};

[[nodiscard]] const char* to_string(EventKind k);

/// Why a requested access did not complete this cycle. The distinction the
/// paper's §3 analysis needs is ArbitrationLoss (another pseudo-port won
/// the shared port) vs DependencyNotProduced (the guard held the access:
/// countdown not ready / producer not yet written).
enum class StallCause : std::uint8_t {
  None,
  ArbitrationLoss,        // another pseudo-port won this cycle
  DependencyNotProduced,  // dependency guard not satisfied
  NotOurSlot,             // event-driven: schedule is in another slot
  PortABusy,              // another thread owns port A this cycle
  DataWait,               // granted; waiting for read-data valid
};

[[nodiscard]] const char* to_string(StallCause c);

/// Logical port of the §3.1 wrapper the event refers to.
enum class PortKind : std::uint8_t { None, A, B, C, D };

[[nodiscard]] const char* to_string(PortKind p);

struct Event {
  std::uint64_t cycle = 0;
  EventKind kind = EventKind::PortRequest;
  PortKind port = PortKind::None;
  StallCause cause = StallCause::None;
  int controller = -1;     // BRAM id; -1 when not controller-scoped
  int pseudo_port = -1;    // index on the logical port; -1 for port A
  std::int64_t value = -1; // FSM state id / slot number / round latency
  std::string_view thread; // emitting thread; empty for controller events
  std::string_view dep;    // dependency id; empty when not dep-scoped
};

}  // namespace hicsync::trace
