// VCD (IEEE 1364 value-change-dump) waveform sink.
//
// Buffers the event stream and renders a standard VCD file at finish():
// any waveform viewer (gtkwave, surfer, ...) can open the trace. Signal
// naming (documented in docs/OBSERVABILITY.md):
//
//   hicsync/bram<N>/c_req<i>, c_grant<i>     consumer pseudo-port i
//   hicsync/bram<N>/d_req<j>, d_grant<j>     producer pseudo-port j
//   hicsync/bram<N>/a_grant                  port A ownership granted
//   hicsync/bram<N>/slot[15:0]               event-driven selection slot
//   hicsync/threads/<name>_state[31:0]       FSM state number
//   hicsync/threads/<name>_blocked           stalling on the memory system
//
// Request/grant wires are pulse signals: high exactly in the cycles where
// the corresponding event fired. State/slot/blocked are level signals.
// One simulation cycle = one VCD timestep (timescale 1 ns).
//
// Emitted names pass through the source names (thread names, dep ids),
// which may contain characters VCD identifiers disallow; they are
// sanitized to [A-Za-z0-9_], and when two distinct probes sanitize to the
// same (scope, name) the later one gets a `_2`, `_3`, ... suffix so every
// probe keeps its own wire in the header.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "trace/bus.h"

namespace hicsync::trace {

class VcdSink : public TraceSink {
 public:
  void on_cycle(std::uint64_t cycle) override;
  void on_event(const Event& e) override;
  void finish(std::uint64_t final_cycle) override;

  /// The complete VCD document. Valid after finish().
  [[nodiscard]] const std::string& str() const { return out_; }

 private:
  struct Signal {
    std::string scope;   // "bram0" | "threads"
    std::string name;    // "c_req0" | "t2_state" ...
    int width = 1;
    bool pulse = false;  // deasserts every cycle unless re-pulsed
    std::uint64_t value = 0;     // current value while collecting
    std::vector<std::pair<std::uint64_t, std::uint64_t>> changes;
  };

  Signal& signal(const std::string& scope, const std::string& name,
                 int width, bool pulse);
  void set(Signal& s, std::uint64_t value);
  void flush_cycle();
  [[nodiscard]] static std::string id_code(std::size_t index);

  std::map<std::string, std::size_t> index_;  // raw "scope/name" -> signals_
  std::set<std::string> used_names_;          // sanitized "scope/name"
  std::vector<Signal> signals_;
  std::map<std::size_t, std::uint64_t> pending_;  // pulses seen this cycle
  std::uint64_t cycle_ = 0;
  bool any_cycle_ = false;
  std::string out_;
};

}  // namespace hicsync::trace
