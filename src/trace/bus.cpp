#include "trace/bus.h"

#include <algorithm>

namespace hicsync::trace {

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::PortRequest: return "port-request";
    case EventKind::PortGrant: return "port-grant";
    case EventKind::PortStall: return "port-stall";
    case EventKind::ArbWin: return "arb-win";
    case EventKind::SlotAdvance: return "slot-advance";
    case EventKind::Produce: return "produce";
    case EventKind::Consume: return "consume";
    case EventKind::RoundComplete: return "round-complete";
    case EventKind::FsmState: return "fsm-state";
    case EventKind::ThreadBlock: return "thread-block";
    case EventKind::ThreadUnblock: return "thread-unblock";
    case EventKind::PassComplete: return "pass-complete";
  }
  return "unknown";
}

const char* to_string(StallCause c) {
  switch (c) {
    case StallCause::None: return "none";
    case StallCause::ArbitrationLoss: return "arbitration-loss";
    case StallCause::DependencyNotProduced: return "dependency-not-produced";
    case StallCause::NotOurSlot: return "not-our-slot";
    case StallCause::PortABusy: return "port-a-busy";
    case StallCause::DataWait: return "data-wait";
  }
  return "unknown";
}

const char* to_string(PortKind p) {
  switch (p) {
    case PortKind::None: return "-";
    case PortKind::A: return "A";
    case PortKind::B: return "B";
    case PortKind::C: return "C";
    case PortKind::D: return "D";
  }
  return "?";
}

void TraceBus::attach(TraceSink* sink) {
  if (sink != nullptr) sinks_.push_back(sink);
}

void TraceBus::detach(TraceSink* sink) {
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
}

void TraceBus::begin_cycle(std::uint64_t cycle) {
  for (TraceSink* s : sinks_) s->on_cycle(cycle);
}

void TraceBus::emit(const Event& e) {
  for (TraceSink* s : sinks_) s->on_event(e);
}

void TraceBus::finish(std::uint64_t final_cycle) {
  for (TraceSink* s : sinks_) s->finish(final_cycle);
}

}  // namespace hicsync::trace
