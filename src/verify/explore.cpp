#include "verify/explore.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "support/strings.h"

namespace hicsync::verify {

namespace {

struct StateHash {
  std::size_t operator()(const State& s) const {
    // FNV-1a over the canonical packed encoding.
    std::uint64_t h = 1469598103934665603ull;
    for (std::uint16_t v : s) {
      h ^= static_cast<std::uint64_t>(v);
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

const char* to_string(Budget b) {
  switch (b) {
    case Budget::None: return "none";
    case Budget::States: return "states";
    case Budget::Depth: return "depth";
  }
  return "?";
}

Explorer::Explorer(const ProgramModel& model, ExploreOptions options)
    : model_(model), options_(options) {
  countdown_base_ = model_.threads().size();
  for (const ControllerModel& c : model_.controllers()) {
    ControllerStats st;
    st.bram_id = c.bram_id;
    st.cam_capacity = c.cam_capacity;
    st.total_slots = c.total_slots;
    controller_stats_.push_back(st);
  }
}

State Explorer::initial_state() const {
  State s;
  for (const ThreadModel& t : model_.threads()) {
    s.push_back(static_cast<std::uint16_t>(t.entry));
  }
  if (model_.organization() == sim::OrgKind::Arbitrated) {
    // Reset state: every countdown at zero — producers may write, every
    // consumer read is guarded until then.
    s.resize(countdown_base_ + model_.deps().size(), 0);
  } else {
    // Event-driven selection logic starts in slot 0 of each controller.
    s.resize(countdown_base_ + model_.controllers().size(), 0);
  }
  return s;
}

bool Explorer::op_enabled(const State& s, const SyncOp& op) const {
  if (model_.organization() == sim::OrgKind::Arbitrated) {
    std::uint16_t countdown =
        s[countdown_base_ + static_cast<std::size_t>(op.dep)];
    return op.kind == SyncOp::Kind::Produce ? countdown == 0 : countdown > 0;
  }
  return s[countdown_base_ + static_cast<std::size_t>(op.controller)] ==
         static_cast<std::uint16_t>(op.slot);
}

bool Explorer::node_enabled(const State& s, int thread) const {
  const ThreadModel& t = model_.threads()[static_cast<std::size_t>(thread)];
  const NodeModel& n = t.nodes[static_cast<std::size_t>(pc(s, thread))];
  for (const SyncOp& op : n.ops) {
    if (!op_enabled(s, op)) return false;
  }
  return true;
}

void Explorer::enabled_transitions(const State& s, int thread,
                                   std::vector<Transition>& out) const {
  const ThreadModel& t = model_.threads()[static_cast<std::size_t>(thread)];
  const NodeModel& n = t.nodes[static_cast<std::size_t>(pc(s, thread))];
  if (n.succs.empty()) return;
  if (!n.ops.empty() && !node_enabled(s, thread)) return;
  for (int succ : n.succs) out.push_back(Transition{thread, succ});
}

void Explorer::apply(State& s, int thread, const Transition& t) const {
  const ThreadModel& tm = model_.threads()[static_cast<std::size_t>(thread)];
  const NodeModel& n = tm.nodes[static_cast<std::size_t>(pc(s, thread))];
  for (const SyncOp& op : n.ops) {
    if (model_.organization() == sim::OrgKind::Arbitrated) {
      std::size_t idx = countdown_base_ + static_cast<std::size_t>(op.dep);
      if (op.kind == SyncOp::Kind::Produce) {
        s[idx] = static_cast<std::uint16_t>(
            model_.deps()[static_cast<std::size_t>(op.dep)]
                .dependency_number);
      } else {
        s[idx] = static_cast<std::uint16_t>(s[idx] - 1);
      }
    } else {
      std::size_t idx =
          countdown_base_ + static_cast<std::size_t>(op.controller);
      int total = model_.controllers()[static_cast<std::size_t>(op.controller)]
                      .total_slots;
      s[idx] = static_cast<std::uint16_t>((s[idx] + 1) % total);
    }
  }
  s[static_cast<std::size_t>(thread)] = static_cast<std::uint16_t>(t.to);
}

void Explorer::note_state(const State& s) {
  if (model_.organization() == sim::OrgKind::Arbitrated) {
    for (std::size_t ci = 0; ci < model_.controllers().size(); ++ci) {
      const ControllerModel& c = model_.controllers()[ci];
      int open = 0;
      for (int di : c.deps) {
        if (s[countdown_base_ + static_cast<std::size_t>(di)] > 0) ++open;
      }
      ControllerStats& st = controller_stats_[ci];
      st.max_occupancy = std::max(st.max_occupancy, open);
    }
  } else {
    for (std::size_t ci = 0; ci < model_.controllers().size(); ++ci) {
      int slot = s[countdown_base_ + ci];
      ControllerStats& st = controller_stats_[ci];
      st.max_slot = std::max(st.max_slot, slot);
    }
  }
}

std::string Explorer::guard_reason(const State& s, const SyncOp& op) const {
  const DepModel& d = model_.deps()[static_cast<std::size_t>(op.dep)];
  if (model_.organization() == sim::OrgKind::Arbitrated) {
    std::uint16_t countdown =
        s[countdown_base_ + static_cast<std::size_t>(op.dep)];
    if (op.kind == SyncOp::Kind::Consume) {
      return support::format(
          "countdown of '%s' is 0: nothing produced for this round",
          d.dep->id.c_str());
    }
    return support::format(
        "countdown of '%s' is %d: %d consumer read(s) of the previous "
        "round still outstanding",
        d.dep->id.c_str(), static_cast<int>(countdown),
        static_cast<int>(countdown));
  }
  int cur = s[countdown_base_ + static_cast<std::size_t>(op.controller)];
  return support::format(
      "schedule of bram%d is in slot %d, this access owns slot %d",
      model_.controllers()[static_cast<std::size_t>(op.controller)].bram_id,
      cur, op.slot);
}

bool Explorer::run() {
  std::unordered_map<State, std::int32_t, StateHash> index;
  std::deque<std::int32_t> frontier;

  auto intern = [&](const State& s) -> std::pair<std::int32_t, bool> {
    auto it = index.find(s);
    if (it != index.end()) return {it->second, false};
    std::int32_t id = static_cast<std::int32_t>(states_.size());
    index.emplace(s, id);
    states_.push_back(s);
    depth_.push_back(0);
    parent_.emplace_back(-1, Step{});
    if (options_.build_graph) graph_.emplace_back();
    note_state(s);
    return {id, true};
  };

  State init = initial_state();
  frontier.push_back(intern(init).first);

  std::vector<Transition> trans;
  std::vector<Transition> all;
  while (!frontier.empty()) {
    if (states_.size() >= options_.max_states && !frontier.empty()) {
      complete_ = false;
      budget_ = Budget::States;
      break;
    }
    std::int32_t id = frontier.front();
    frontier.pop_front();
    // Depth budget: BFS pops in nondecreasing depth, so the first state at
    // the limit means every remaining frontier state is at it too — stop
    // expanding (the already-recorded graph stays intact).
    if (options_.max_depth > 0 &&
        depth_[static_cast<std::size_t>(id)] >= options_.max_depth) {
      complete_ = false;
      budget_ = Budget::Depth;
      continue;
    }
    // states_ may reallocate while expanding; copy the state out.
    State s = states_[static_cast<std::size_t>(id)];

    // Persistent set: a thread at an internal node moves invisibly and
    // independently of all others — expand it alone. The cycle proviso
    // below falls back to full expansion when the reduction would only
    // revisit known states (the BFS variant of Peled's C3 condition).
    int ample_thread = -1;
    if (options_.por) {
      for (std::size_t t = 0; t < model_.threads().size(); ++t) {
        const ThreadModel& tm = model_.threads()[t];
        const NodeModel& n =
            tm.nodes[static_cast<std::size_t>(pc(s, static_cast<int>(t)))];
        if (n.ops.empty() && !n.succs.empty()) {
          ample_thread = static_cast<int>(t);
          break;
        }
      }
    }

    auto expand = [&](const std::vector<Transition>& ts) -> bool {
      // Returns true when at least one successor was new.
      bool fresh = false;
      for (const Transition& t : ts) {
        State next = s;
        apply(next, t.thread, t);
        auto [nid, is_new] = intern(next);
        ++transitions_;
        if (options_.build_graph) {
          graph_[static_cast<std::size_t>(id)].push_back(nid);
        }
        if (is_new) {
          fresh = true;
          depth_[static_cast<std::size_t>(nid)] =
              depth_[static_cast<std::size_t>(id)] + 1;
          parent_[static_cast<std::size_t>(nid)] = {
              id, Step{t.thread, pc(s, t.thread), t.to}};
          frontier.push_back(nid);
        }
      }
      return fresh;
    };

    bool reduced = false;
    if (ample_thread >= 0) {
      trans.clear();
      enabled_transitions(s, ample_thread, trans);
      std::size_t edges_before =
          options_.build_graph ? graph_[static_cast<std::size_t>(id)].size()
                               : 0;
      std::uint64_t trans_before = transitions_;
      if (expand(trans)) {
        reduced = true;
      } else {
        // Cycle proviso: every reduced successor already known; undo the
        // bookkeeping and expand fully so no thread is ignored forever.
        if (options_.build_graph) {
          graph_[static_cast<std::size_t>(id)].resize(edges_before);
        }
        transitions_ = trans_before;
      }
    }
    if (!reduced) {
      all.clear();
      for (std::size_t t = 0; t < model_.threads().size(); ++t) {
        enabled_transitions(s, static_cast<int>(t), all);
      }
      if (all.empty()) {
        // No thread can move: a genuine deadlock of the product system
        // (internal nodes are always enabled, so every thread is stuck
        // at an unsatisfied sync guard).
        if (deadlock_.state_id < 0) {
          deadlock_.state_id = id;
          for (std::size_t t = 0; t < model_.threads().size(); ++t) {
            const ThreadModel& tm = model_.threads()[t];
            int node = pc(s, static_cast<int>(t));
            const NodeModel& n = tm.nodes[static_cast<std::size_t>(node)];
            for (const SyncOp& op : n.ops) {
              if (op_enabled(s, op)) continue;
              BlockedThread b;
              b.thread = static_cast<int>(t);
              b.node = node;
              b.op = op;
              b.reason = guard_reason(s, op);
              deadlock_.blocked.push_back(b);
              break;
            }
          }
          // Minimal schedule: walk the BFS parent chain.
          std::vector<Step> rev;
          std::int32_t cur = id;
          while (parent_[static_cast<std::size_t>(cur)].first >= 0) {
            rev.push_back(parent_[static_cast<std::size_t>(cur)].second);
            cur = parent_[static_cast<std::size_t>(cur)].first;
          }
          deadlock_.steps.assign(rev.rbegin(), rev.rend());
        }
        continue;
      }
      expand(all);
    }
  }
  return complete_;
}

std::string Explorer::render(const Counterexample& cex) const {
  std::string out;
  if (cex.steps.empty()) {
    out += "  (violation holds in the initial state: no schedule needed)\n";
  }
  for (std::size_t i = 0; i < cex.steps.size(); ++i) {
    const Step& st = cex.steps[i];
    const ThreadModel& tm =
        model_.threads()[static_cast<std::size_t>(st.thread)];
    const NodeModel& n = tm.nodes[static_cast<std::size_t>(st.from)];
    std::string what;
    if (!n.ops.empty()) {
      for (const SyncOp& op : n.ops) {
        if (!what.empty()) what += " + ";
        what += model_.op_str(op);
      }
    } else {
      const analysis::CfgNode& cn = tm.cfg.node(st.from);
      switch (cn.kind) {
        case analysis::CfgNodeKind::Entry: what = "start pass"; break;
        case analysis::CfgNodeKind::Exit: what = "finish pass"; break;
        case analysis::CfgNodeKind::Branch: what = "branch"; break;
        default: what = "internal"; break;
      }
      if (cn.stmt != nullptr && cn.stmt->loc.valid()) {
        what += " at " + cn.stmt->loc.str();
      }
    }
    out += support::format("  %2zu. %-12s %s\n", i + 1, tm.name.c_str(),
                           what.c_str());
  }
  for (const BlockedThread& b : cex.blocked) {
    const ThreadModel& tm =
        model_.threads()[static_cast<std::size_t>(b.thread)];
    const analysis::CfgNode& cn = tm.cfg.node(b.node);
    out += support::format(
        "  blocked: %s at %s on %s — %s\n", tm.name.c_str(),
        cn.stmt != nullptr && cn.stmt->loc.valid() ? cn.stmt->loc.str().c_str()
                                                   : "<entry>",
        model_.op_str(b.op).c_str(), b.reason.c_str());
  }
  return out;
}

}  // namespace hicsync::verify
