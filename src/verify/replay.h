// hic-verify: counterexample replay against the cycle-accurate simulator.
//
// A refutation produced by the model checker is a claim about the abstract
// semantics; replay cross-validates it against sim::SystemSim — the
// interpreter of the *generated* controller netlists — so every reported
// bug is demonstrated on the same logic the Verilog backend emits. The
// replayer releases thread first-passes in counterexample-schedule order
// (via SystemSim gates), runs the system to its cycle budget, and then
// checks that it failed to converge with exactly the counterexample's
// blocked set: each blocked thread stuck on the predicted dependency, as
// seen both by the simulator's own diagnostics and by ThreadBlock /
// ThreadUnblock events on the trace bus.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "memalloc/allocator.h"
#include "memalloc/portplan.h"
#include "verify/checker.h"

namespace hicsync::verify {

struct ReplayOptions {
  /// Cycle budget; the simulation must still be stuck when it expires.
  std::uint64_t max_cycles = 20000;
  /// Pass count the simulation must FAIL to reach for the refutation to
  /// stand (a deadlocked system completes no further passes).
  int passes = 3;
  /// Cycles between consecutive thread first-pass releases, used to bias
  /// the simulator toward the counterexample's interleaving.
  std::uint64_t stagger = 25;
};

struct ReplayResult {
  /// True when the simulator reproduced the violation: no convergence,
  /// and every blocked (thread, dependency) pair of the counterexample is
  /// blocked in the simulator and on the trace bus.
  bool reproduced = false;
  std::uint64_t cycles = 0;
  std::vector<std::string> blocked_threads;
  /// Human-readable outcome, including the simulator's stall report.
  std::string report;
};

/// Replays `cex` (a deadlock refutation from run_verify) through
/// sim::SystemSim under `organization`. Inputs are the same compile
/// artifacts run_verify consumed.
[[nodiscard]] ReplayResult replay(
    const hic::Program& program, const hic::Sema& sema,
    const memalloc::MemoryMap& map,
    const std::vector<memalloc::BramPortPlan>& plans,
    sim::OrgKind organization, const CexInfo& cex,
    const ReplayOptions& options);

}  // namespace hicsync::verify
