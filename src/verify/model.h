// hic-verify: abstract program model for explicit-state model checking.
//
// The checker reasons about the compiled program at the level that decides
// synchronization behavior and nothing else: each thread is its CFG
// automaton (analysis/cfg) with every statement either *internal* (moves
// the program counter, touches no shared state) or a *sync op* — the
// guarded consumer read or dependency-completing producer write the §3
// controllers implement. Data values are abstracted away entirely; branch
// nodes transition nondeterministically, so the model over-approximates
// every data-dependent schedule (and every message arrival timing, since
// threads interleave asynchronously).
//
// The memory controller is abstracted per organization:
//  * arbitrated (§3.1): one countdown counter per dependency-list entry.
//    A producer write is enabled when its entry's countdown is zero (the
//    previous round drained) and reloads it with the dependency number; a
//    consumer read is enabled when the countdown is positive and
//    decrements it. This is exactly the dynamic state of the CAM-matched
//    dependency list — pseudo-port arbitration adds bounded delay but no
//    ordering, so it is folded into the fairness assumption
//    (docs/VERIFICATION.md).
//  * event-driven (§3.2): one modulo slot counter per controller. An
//    access is enabled only in its schedule slot and advances the slot —
//    the selection logic "blocks in each slot until the slot's owner
//    raises its request".
#pragma once

#include <string>
#include <vector>

#include "analysis/cfg.h"
#include "hic/sema.h"
#include "memalloc/allocator.h"
#include "memalloc/portplan.h"
#include "sim/system.h"

namespace hicsync::verify {

/// One synchronization operation performed by a CFG node.
struct SyncOp {
  enum class Kind { Consume, Produce };
  Kind kind = Kind::Consume;
  int dep = -1;        // index into ProgramModel::deps()
  int consumer = -1;   // Consume: index into the dependency's consumers
  int controller = -1; // index into ProgramModel::controllers()
  int slot = -1;       // event-driven: schedule slot serving this op
};

[[nodiscard]] const char* to_string(SyncOp::Kind k);

/// Behavior of one CFG node in the abstract semantics. A node with no ops
/// is internal: always enabled, invisible to every other thread.
struct NodeModel {
  std::vector<SyncOp> ops;
  /// Successor CFG nodes; the Exit node loops back to Entry (threads
  /// restart after each run-to-completion pass).
  std::vector<int> succs;
};

/// One thread as an automaton over its CFG nodes.
struct ThreadModel {
  std::string name;
  analysis::Cfg cfg;
  std::vector<NodeModel> nodes;  // indexed by CFG node id
  int entry = -1;
};

/// One dependency of the program, tied to the controller that guards it.
struct DepModel {
  const hic::Dependency* dep = nullptr;
  int controller = -1;
  int dependency_number = 0;
  /// Consuming (thread index, CFG node) per consumer, pragma order.
  struct ConsumeSite {
    int thread = -1;
    int node = -1;
  };
  std::vector<ConsumeSite> consume_sites;
  int producer_thread = -1;
  int producer_node = -1;
};

/// One generated memory-organization controller (one per allocated BRAM
/// that carries dependencies).
struct ControllerModel {
  int bram_id = -1;
  std::vector<int> deps;  // indices into ProgramModel::deps(), BRAM order
  /// CAM capacity memalloc chose: the number of dependency-list entries
  /// the generator bakes in.
  int cam_capacity = 0;
  /// Event-driven schedule length (producer slot + one per consumer, per
  /// dependency).
  int total_slots = 0;
  /// Pseudo-port counts, for the fairness window (docs/VERIFICATION.md).
  int consumer_ports = 0;
  int producer_ports = 0;
};

/// The whole program as a product of thread automata composed with the
/// abstract controller state. Immutable after build().
class ProgramModel {
 public:
  /// `sema` must have run successfully; `map`/`plans` from the allocator
  /// and port planner. All references must outlive the model.
  static ProgramModel build(const hic::Program& program,
                            const hic::Sema& sema,
                            const memalloc::MemoryMap& map,
                            const std::vector<memalloc::BramPortPlan>& plans,
                            sim::OrgKind organization);

  [[nodiscard]] sim::OrgKind organization() const { return organization_; }
  [[nodiscard]] const std::vector<ThreadModel>& threads() const {
    return threads_;
  }
  [[nodiscard]] const std::vector<DepModel>& deps() const { return deps_; }
  [[nodiscard]] const std::vector<ControllerModel>& controllers() const {
    return controllers_;
  }
  [[nodiscard]] int thread_index(const std::string& name) const;

  /// Human-readable description of one sync op ("consume 'mt1'" /
  /// "produce 'mt1'").
  [[nodiscard]] std::string op_str(const SyncOp& op) const;

  /// Worst-case cycles between a sync op becoming enabled and its grant,
  /// under round-robin fairness: the §3.1 arbitration window (consumer
  /// pseudo-ports round-robin plus D-over-C priority preemption) for the
  /// arbitrated organization; 1 for event-driven, whose slot owner is
  /// granted immediately on request.
  [[nodiscard]] int fairness_window(int controller) const;

 private:
  sim::OrgKind organization_ = sim::OrgKind::Arbitrated;
  std::vector<ThreadModel> threads_;
  std::vector<DepModel> deps_;
  std::vector<ControllerModel> controllers_;
};

}  // namespace hicsync::verify
