// hic-verify: explicit-state exploration of the abstract product system.
//
// Breadth-first search over the composed state (one program counter per
// thread, plus the abstract controller state: per-dependency countdown
// counters for the arbitrated organization, per-controller slot counters
// for the event-driven one). BFS parent links make every reported
// counterexample a *minimal* interleaving.
//
// Partial-order reduction: when some thread sits at an internal node (no
// sync op), its moves are invisible and independent of every other
// thread's, so expanding only that thread is a valid persistent (ample)
// set; the standard cycle proviso — fall back to full expansion when every
// reduced successor was already visited — prevents the ignoring problem.
// Deadlocks and all reachable shared-controller states are preserved
// (docs/VERIFICATION.md spells out the ample-set conditions).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "verify/model.h"

namespace hicsync::verify {

/// Packed product state: thread PCs, then countdowns (arbitrated) or
/// controller slots (event-driven). The packing is canonical — equal
/// states pack identically — and doubles as the hash key.
using State = std::vector<std::uint16_t>;

struct ExploreOptions {
  /// Exploration stops (complete=false) once this many states exist.
  std::uint64_t max_states = 1000000;
  /// Exploration stops expanding states at this BFS depth (scheduled
  /// steps from the initial state); 0 = unlimited. Exhausting it makes
  /// the run incomplete like the state budget does.
  std::uint64_t max_depth = 0;
  bool por = true;
  /// Record the successor adjacency so blocking bounds can be computed
  /// (costs memory proportional to transitions).
  bool build_graph = true;
};

/// One scheduled step of a counterexample: `thread` moved from CFG node
/// `from` to `to`.
struct Step {
  int thread = -1;
  int from = -1;
  int to = -1;
};

/// A thread stuck at a sync node in a deadlock state.
struct BlockedThread {
  int thread = -1;
  int node = -1;
  SyncOp op;           // the (first) unsatisfied sync op
  std::string reason;  // human-readable guard description
};

/// A refutation: the minimal schedule from the initial state into the
/// violating state, plus what is blocked there.
struct Counterexample {
  std::vector<Step> steps;
  std::vector<BlockedThread> blocked;
  int state_id = -1;
};

/// Which exploration budget cut the search short (None while complete).
enum class Budget { None, States, Depth };

[[nodiscard]] const char* to_string(Budget b);

struct ControllerStats {
  int bram_id = -1;
  int cam_capacity = 0;
  /// Max dependency-list entries simultaneously open (countdown > 0) in
  /// any reachable state; the §3.1 CAM occupancy. 0 for event-driven.
  int max_occupancy = 0;
  /// Max reachable slot value (event-driven; sanity vs total_slots).
  int max_slot = 0;
  int total_slots = 0;
};

class Explorer {
 public:
  Explorer(const ProgramModel& model, ExploreOptions options);

  /// Runs the search. Returns false when the state budget was exhausted
  /// (results are then lower bounds, not proofs).
  bool run();

  [[nodiscard]] bool complete() const { return complete_; }
  /// The budget that stopped the search (None when complete()).
  [[nodiscard]] Budget budget() const { return budget_; }
  [[nodiscard]] std::uint64_t num_states() const { return states_.size(); }
  [[nodiscard]] std::uint64_t num_transitions() const { return transitions_; }

  [[nodiscard]] bool deadlock_found() const { return deadlock_.state_id >= 0; }
  [[nodiscard]] const Counterexample& deadlock() const { return deadlock_; }

  [[nodiscard]] const std::vector<ControllerStats>& controller_stats() const {
    return controller_stats_;
  }

  // --- State access for property passes (bounds, tests) ---
  [[nodiscard]] const State& state(int id) const {
    return states_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] int pc(const State& s, int thread) const {
    return s[static_cast<std::size_t>(thread)];
  }
  /// Successor state ids of `id`; empty unless options.build_graph.
  [[nodiscard]] const std::vector<std::int32_t>& succs(int id) const {
    return graph_[static_cast<std::size_t>(id)];
  }
  /// True when `op` is enabled (its guard holds) in `s`.
  [[nodiscard]] bool op_enabled(const State& s, const SyncOp& op) const;
  /// Renders a counterexample schedule, one step per line.
  [[nodiscard]] std::string render(const Counterexample& cex) const;

 private:
  struct Transition {
    int thread;
    int to;  // CFG node
  };
  [[nodiscard]] State initial_state() const;
  [[nodiscard]] bool node_enabled(const State& s, int thread) const;
  void apply(State& s, int thread, const Transition& t) const;
  void enabled_transitions(const State& s, int thread,
                           std::vector<Transition>& out) const;
  void note_state(const State& s);
  [[nodiscard]] std::string guard_reason(const State& s,
                                         const SyncOp& op) const;

  const ProgramModel& model_;
  ExploreOptions options_;
  std::size_t countdown_base_ = 0;  // offset of controller state in State

  std::vector<State> states_;
  std::vector<std::uint32_t> depth_;  // BFS depth per state id
  std::vector<std::pair<std::int32_t, Step>> parent_;
  std::vector<std::vector<std::int32_t>> graph_;
  std::uint64_t transitions_ = 0;
  bool complete_ = true;
  Budget budget_ = Budget::None;
  Counterexample deadlock_;
  std::vector<ControllerStats> controller_stats_;
};

}  // namespace hicsync::verify
