// hic-verify: property checking over the explored state space.
//
// Four properties of the abstract product system (docs/VERIFICATION.md):
//  1. deadlock-freedom — no reachable state where every thread is stuck
//     at an unsatisfied sync guard;
//  2. absence of runtime consume-before-produce — no reachable deadlock
//     in which a consumer's guarded read waits on a produce that can
//     never happen (subsumes hic-lint's path-witness check);
//  3. bounded blocking — per consumer, the worst-case number of abstract
//     steps (and, under round-robin fairness, cycles) spent blocked at
//     the guarded read;
//  4. CAM occupancy — the dependency list never holds more simultaneously
//     open entries than the capacity memalloc chose.
//
// Verdicts are three-valued: Proved / Refuted / Inconclusive (state
// budget exhausted). Refutations carry a minimal counterexample schedule
// that verify::replay (replay.h) cross-validates against sim::SystemSim.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "memalloc/allocator.h"
#include "memalloc/portplan.h"
#include "support/diagnostics.h"
#include "verify/explore.h"
#include "verify/model.h"

namespace hicsync::verify {

struct VerifyOptions {
  bool enabled = false;
  /// State budget; exhausting it makes every unproved verdict
  /// Inconclusive instead of Proved.
  std::uint64_t max_states = 1000000;
  /// BFS depth budget (scheduled steps from the initial state); 0 =
  /// unlimited. Exhausting it is inconclusive like the state budget.
  std::uint64_t max_depth = 0;
  bool por = true;
  /// Compute per-consumer blocking bounds (needs the transition graph;
  /// memory grows with the state count).
  bool bounds = true;
};

enum class Verdict { Proved, Refuted, Inconclusive };

[[nodiscard]] const char* to_string(Verdict v);

/// Worst-case blocking of one consumer endpoint at its guarded read.
struct BlockingBound {
  std::string dep;
  std::string thread;
  int consumer = -1;  // index within the dependency's consumer list
  bool bounded = false;
  /// Steps other threads can take while this consumer stays blocked
  /// (longest blocked path in the reachable state graph).
  std::uint64_t steps = 0;
  /// Cycle bound under round-robin fairness: (steps + 1) * (window + 1)
  /// with `window` the controller's arbitration window.
  std::uint64_t cycles = 0;
  /// True when part of the bound crosses a cycle that only round-robin
  /// fairness exits (the bound counts each such component once).
  bool fairness_cycle = false;
  std::string note;  // why unbounded, when !bounded
};

/// The replayable essence of a refutation, decoupled from the explorer.
struct CexInfo {
  /// Thread name of each step, in schedule order.
  std::vector<std::string> schedule;
  struct Blocked {
    std::string thread;
    std::string dep;
    SyncOp::Kind kind = SyncOp::Kind::Consume;
  };
  std::vector<Blocked> blocked;
  /// Rendered schedule + blocked set, one line each.
  std::string text;
};

struct VerifyResult {
  sim::OrgKind organization = sim::OrgKind::Arbitrated;
  bool complete = true;
  /// Which budget stopped the search ("states" or "depth"); empty when
  /// complete.
  std::string budget;
  std::uint64_t states = 0;
  std::uint64_t transitions = 0;

  Verdict deadlock_free = Verdict::Inconclusive;
  bool has_cex = false;
  CexInfo cex;
  /// (dep, consumer thread) pairs whose guarded read is stuck in the
  /// refuting deadlock (property 2 refutations).
  std::vector<std::pair<std::string, std::string>> consume_before_produce;

  Verdict occupancy_ok = Verdict::Inconclusive;
  std::vector<ControllerStats> controllers;

  std::vector<BlockingBound> bounds;
  Verdict blocking_bounded = Verdict::Inconclusive;

  /// True when every proved property held and nothing was refuted or
  /// inconclusive.
  [[nodiscard]] bool all_proved() const;
  [[nodiscard]] std::string text() const;
  [[nodiscard]] std::string json() const;
};

/// Runs the checker for one organization. `sema` must have run
/// successfully; `map`/`plans` from the allocator and port planner.
[[nodiscard]] VerifyResult run_verify(
    const hic::Program& program, const hic::Sema& sema,
    const memalloc::MemoryMap& map,
    const std::vector<memalloc::BramPortPlan>& plans,
    sim::OrgKind organization, const VerifyOptions& options);

/// Reports the result's findings into `diags` with stable check IDs
/// (verify-deadlock, verify-consume-before-produce,
/// verify-blocking-unbounded, verify-cam-occupancy, verify-inconclusive;
/// see docs/DIAGNOSTICS.md). Returns the number of error-severity
/// findings (drivers map it to exit code 5).
std::size_t report_findings(const VerifyResult& result,
                            const hic::Sema& sema,
                            support::DiagnosticEngine& diags);

}  // namespace hicsync::verify
