#include "verify/replay.h"

#include <map>

#include "sim/system.h"
#include "support/strings.h"
#include "trace/bus.h"

namespace hicsync::verify {

namespace {

/// Records block/unblock events per thread so replay can confirm the
/// counterexample's blocked set on the trace bus (not only through the
/// simulator's own diagnostics).
class BlockRecorder : public trace::TraceSink {
 public:
  struct ThreadState {
    int blocks = 0;
    int unblocks = 0;
    std::string last_dep;  // dep of the most recent ThreadBlock
  };

  void on_event(const trace::Event& e) override {
    if (e.kind == trace::EventKind::ThreadBlock) {
      ThreadState& st = threads_[std::string(e.thread)];
      ++st.blocks;
      st.last_dep = std::string(e.dep);
    } else if (e.kind == trace::EventKind::ThreadUnblock) {
      ++threads_[std::string(e.thread)].unblocks;
    }
  }

  /// True when `thread`'s last observed transition was into blocked, on
  /// dependency `dep`.
  [[nodiscard]] bool blocked_on(const std::string& thread,
                                const std::string& dep) const {
    auto it = threads_.find(thread);
    if (it == threads_.end()) return false;
    return it->second.blocks > it->second.unblocks &&
           it->second.last_dep == dep;
  }

 private:
  std::map<std::string, ThreadState> threads_;
};

}  // namespace

ReplayResult replay(const hic::Program& program, const hic::Sema& sema,
                    const memalloc::MemoryMap& map,
                    const std::vector<memalloc::BramPortPlan>& plans,
                    sim::OrgKind organization, const CexInfo& cex,
                    const ReplayOptions& options) {
  ReplayResult r;

  sim::SystemOptions so;
  so.organization = organization;
  so.restart_threads = true;
  sim::SystemSim sys(program, sema, map, plans, so);

  trace::TraceBus bus;
  BlockRecorder recorder;
  bus.attach(&recorder);
  sys.set_trace(&bus);

  // Bias the simulator toward the counterexample interleaving: release
  // each thread's first pass in the order the thread first appears in the
  // schedule. Threads the schedule never moves start last — in the
  // abstract run they never got to act before the system wedged.
  std::vector<std::string> order;
  auto note = [&](const std::string& t) {
    for (const std::string& seen : order) {
      if (seen == t) return;
    }
    order.push_back(t);
  };
  for (const std::string& t : cex.schedule) note(t);
  for (const hic::ThreadDecl& t : program.threads) note(t.name);
  for (std::size_t i = 0; i < order.size(); ++i) {
    std::uint64_t release = options.stagger * i;
    sys.set_gate(order[i], [release](std::uint64_t cycle) {
      return cycle >= release;
    });
  }

  bool converged = sys.run_until_passes(options.passes, options.max_cycles);
  bus.finish(sys.cycle());
  r.cycles = sys.cycle();

  if (converged) {
    r.report = support::format(
        "NOT reproduced: the %s simulation completed %d pass(es) per thread "
        "in %llu cycles — no deadlock",
        sim::to_string(organization), options.passes,
        static_cast<unsigned long long>(r.cycles));
    return r;
  }

  // The system wedged; confirm it wedged the way the checker predicted.
  bool all_matched = !cex.blocked.empty();
  std::string detail;
  for (const CexInfo::Blocked& b : cex.blocked) {
    bool sim_blocked = sys.is_blocked(b.thread);
    bool dep_matched = false;
    for (const sim::ThreadDiagnostic& d : sys.thread_diagnostics()) {
      if (d.thread != b.thread) continue;
      dep_matched = d.waiting_on.find("dep '" + b.dep + "'") !=
                    std::string::npos;
    }
    bool traced = recorder.blocked_on(b.thread, b.dep);
    bool ok = sim_blocked && dep_matched && traced;
    all_matched = all_matched && ok;
    if (ok) r.blocked_threads.push_back(b.thread);
    detail += support::format(
        "  %-12s expected blocked on '%s': sim=%s dep=%s trace=%s\n",
        b.thread.c_str(), b.dep.c_str(), sim_blocked ? "blocked" : "free",
        dep_matched ? "match" : "MISMATCH", traced ? "blocked" : "free");
  }

  r.reproduced = all_matched;
  r.report = support::format(
      "%s after %llu cycles (%s organization):\n",
      r.reproduced ? "REPRODUCED" : "not reproduced",
      static_cast<unsigned long long>(r.cycles),
      sim::to_string(organization));
  r.report += detail;
  r.report += sys.stall_report();
  return r;
}

}  // namespace hicsync::verify
