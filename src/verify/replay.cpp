#include "verify/replay.h"

#include <map>

#include "diffview/align.h"
#include "diffview/bundle.h"
#include "sim/system.h"
#include "support/strings.h"
#include "trace/bus.h"

namespace hicsync::verify {

namespace {

/// True when `thread`'s last observed trace-bus transition was into
/// blocked, on dependency `dep`. Replay confirms the counterexample's
/// blocked set both through the simulator's own diagnostics and through
/// the ThreadBlock/ThreadUnblock events of the capture.
bool trace_blocked_on(const std::vector<diffview::CapturedEvent>& events,
                      const std::string& thread, const std::string& dep) {
  int blocks = 0;
  int unblocks = 0;
  std::string last_dep;
  for (const diffview::CapturedEvent& e : events) {
    if (e.thread != thread) continue;
    if (e.kind == trace::EventKind::ThreadBlock) {
      ++blocks;
      last_dep = e.dep;
    } else if (e.kind == trace::EventKind::ThreadUnblock) {
      ++unblocks;
    }
  }
  return blocks > unblocks && last_dep == dep;
}

}  // namespace

ReplayResult replay(const hic::Program& program, const hic::Sema& sema,
                    const memalloc::MemoryMap& map,
                    const std::vector<memalloc::BramPortPlan>& plans,
                    sim::OrgKind organization, const CexInfo& cex,
                    const ReplayOptions& options) {
  ReplayResult r;

  sim::SystemOptions so;
  so.organization = organization;
  so.restart_threads = true;
  sim::SystemSim sys(program, sema, map, plans, so);

  trace::TraceBus bus;
  diffview::BundleCaptureSink capture;
  bus.attach(&capture);
  sys.set_trace(&bus);

  // Bias the simulator toward the counterexample interleaving: release
  // each thread's first pass in the order the thread first appears in the
  // schedule. Threads the schedule never moves start last — in the
  // abstract run they never got to act before the system wedged.
  std::vector<std::string> order;
  auto note = [&](const std::string& t) {
    for (const std::string& seen : order) {
      if (seen == t) return;
    }
    order.push_back(t);
  };
  for (const std::string& t : cex.schedule) note(t);
  for (const hic::ThreadDecl& t : program.threads) note(t.name);
  for (std::size_t i = 0; i < order.size(); ++i) {
    std::uint64_t release = options.stagger * i;
    sys.set_gate(order[i], [release](std::uint64_t cycle) {
      return cycle >= release;
    });
  }

  bool converged = sys.run_until_passes(options.passes, options.max_cycles);
  bus.finish(sys.cycle());
  r.cycles = sys.cycle();
  const std::vector<diffview::CapturedEvent>& events = capture.events();

  if (converged) {
    r.report = support::format(
        "NOT reproduced: the %s simulation completed %d pass(es) per thread "
        "in %llu cycles — no deadlock",
        sim::to_string(organization), options.passes,
        static_cast<unsigned long long>(r.cycles));
    return r;
  }

  // The system wedged; confirm it wedged the way the checker predicted.
  // A mismatching thread gets a forensics tail — its last trace-bus
  // events — so the divergence between prediction and simulation is
  // inspectable, not just asserted.
  bool all_matched = !cex.blocked.empty();
  std::string detail;
  std::string forensics;
  for (const CexInfo::Blocked& b : cex.blocked) {
    bool sim_blocked = sys.is_blocked(b.thread);
    bool dep_matched = false;
    for (const sim::ThreadDiagnostic& d : sys.thread_diagnostics()) {
      if (d.thread != b.thread) continue;
      dep_matched = d.waiting_on.find("dep '" + b.dep + "'") !=
                    std::string::npos;
    }
    bool traced = trace_blocked_on(events, b.thread, b.dep);
    bool ok = sim_blocked && dep_matched && traced;
    all_matched = all_matched && ok;
    if (ok) r.blocked_threads.push_back(b.thread);
    detail += support::format(
        "  %-12s expected blocked on '%s': sim=%s dep=%s trace=%s\n",
        b.thread.c_str(), b.dep.c_str(), sim_blocked ? "blocked" : "free",
        dep_matched ? "match" : "MISMATCH", traced ? "blocked" : "free");
    if (!ok) {
      const std::string tail =
          diffview::render_thread_tail(events, b.thread, 8);
      forensics += support::format("  last trace events of %s:\n%s",
                                   b.thread.c_str(),
                                   tail.empty() ? "    (none)\n"
                                                : tail.c_str());
    }
  }

  r.reproduced = all_matched;
  r.report = support::format(
      "%s after %llu cycles (%s organization):\n",
      r.reproduced ? "REPRODUCED" : "not reproduced",
      static_cast<unsigned long long>(r.cycles),
      sim::to_string(organization));
  r.report += detail;
  if (!forensics.empty()) r.report += forensics;
  r.report += sys.stall_report();
  return r;
}

}  // namespace hicsync::verify
