#include "verify/model.h"

#include "support/strings.h"

namespace hicsync::verify {

const char* to_string(SyncOp::Kind k) {
  switch (k) {
    case SyncOp::Kind::Consume: return "consume";
    case SyncOp::Kind::Produce: return "produce";
  }
  return "?";
}

namespace {

/// Id of the CFG Statement node executing `stmt`; -1 when absent.
int node_of(const analysis::Cfg& cfg, const hic::Stmt* stmt) {
  for (const analysis::CfgNode& n : cfg.nodes()) {
    if (n.kind == analysis::CfgNodeKind::Statement && n.stmt == stmt) {
      return n.id;
    }
  }
  return -1;
}

}  // namespace

ProgramModel ProgramModel::build(
    const hic::Program& program, const hic::Sema& sema,
    const memalloc::MemoryMap& map,
    const std::vector<memalloc::BramPortPlan>& plans,
    sim::OrgKind organization) {
  ProgramModel m;
  m.organization_ = organization;

  for (const hic::ThreadDecl& t : program.threads) {
    ThreadModel tm;
    tm.name = t.name;
    tm.cfg = analysis::Cfg::build(t);
    tm.entry = tm.cfg.entry();
    tm.nodes.resize(tm.cfg.nodes().size());
    for (const analysis::CfgNode& n : tm.cfg.nodes()) {
      NodeModel& nm = tm.nodes[static_cast<std::size_t>(n.id)];
      nm.succs = n.succs;
      // Run-to-completion restart: Exit loops back to Entry. Message
      // arrival gating is subsumed by interleaving nondeterminism (the
      // restart step can be delayed arbitrarily).
      if (n.kind == analysis::CfgNodeKind::Exit) {
        nm.succs.push_back(tm.cfg.entry());
      }
    }
    m.threads_.push_back(std::move(tm));
  }

  // Global dependency table in Sema (program) order; the per-BRAM lists
  // below index into it.
  int gi = 0;
  for (const hic::Dependency& dep : sema.dependencies()) {
    DepModel dm;
    dm.dep = &dep;
    dm.dependency_number = dep.dependency_number();
    dm.producer_thread = m.thread_index(dep.producer_thread);
    if (dm.producer_thread >= 0) {
      const ThreadModel& tm =
          m.threads_[static_cast<std::size_t>(dm.producer_thread)];
      dm.producer_node = node_of(tm.cfg, dep.producer_stmt);
    }
    for (const hic::DepConsumer& c : dep.consumers) {
      DepModel::ConsumeSite site;
      site.thread = m.thread_index(c.thread);
      if (site.thread >= 0) {
        const ThreadModel& tm =
            m.threads_[static_cast<std::size_t>(site.thread)];
        site.node = node_of(tm.cfg, c.stmt);
      }
      dm.consume_sites.push_back(site);
    }
    m.deps_.push_back(std::move(dm));
    ++gi;
  }
  (void)gi;

  // Controllers: one per BRAM that carries dependencies, in BRAM order.
  // The dependency-list / slot-schedule order inside a controller is the
  // BRAM's dependency order (the §3.2 modulo schedule follows it).
  auto global_index = [&](const hic::Dependency* dep) -> int {
    for (std::size_t i = 0; i < m.deps_.size(); ++i) {
      if (m.deps_[i].dep == dep) return static_cast<int>(i);
    }
    return -1;
  };
  for (const memalloc::BramInstance& bram : map.brams()) {
    if (bram.dependencies.empty()) continue;
    ControllerModel cm;
    cm.bram_id = bram.id;
    int ci = static_cast<int>(m.controllers_.size());
    int slot = 0;
    for (const hic::Dependency* dep : bram.dependencies) {
      int di = global_index(dep);
      if (di < 0) continue;
      cm.deps.push_back(di);
      DepModel& dm = m.deps_[static_cast<std::size_t>(di)];
      dm.controller = ci;
      // Slot sequence per dependency: producer slot, then one slot per
      // consumer in pragma order.
      if (dm.producer_thread >= 0 && dm.producer_node >= 0) {
        SyncOp op;
        op.kind = SyncOp::Kind::Produce;
        op.dep = di;
        op.controller = ci;
        op.slot = slot;
        m.threads_[static_cast<std::size_t>(dm.producer_thread)]
            .nodes[static_cast<std::size_t>(dm.producer_node)]
            .ops.push_back(op);
      }
      ++slot;
      for (std::size_t k = 0; k < dm.consume_sites.size(); ++k) {
        const DepModel::ConsumeSite& site = dm.consume_sites[k];
        if (site.thread >= 0 && site.node >= 0) {
          SyncOp op;
          op.kind = SyncOp::Kind::Consume;
          op.dep = di;
          op.consumer = static_cast<int>(k);
          op.controller = ci;
          op.slot = slot;
          m.threads_[static_cast<std::size_t>(site.thread)]
              .nodes[static_cast<std::size_t>(site.node)]
              .ops.push_back(op);
        }
        ++slot;
      }
    }
    cm.cam_capacity = static_cast<int>(cm.deps.size());
    cm.total_slots = slot;
    for (const auto& plan : plans) {
      if (plan.bram_id != bram.id) continue;
      cm.consumer_ports = plan.consumer_pseudo_ports();
      cm.producer_ports = plan.producer_pseudo_ports();
    }
    m.controllers_.push_back(std::move(cm));
  }

  return m;
}

int ProgramModel::thread_index(const std::string& name) const {
  for (std::size_t i = 0; i < threads_.size(); ++i) {
    if (threads_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::string ProgramModel::op_str(const SyncOp& op) const {
  const DepModel& d = deps_[static_cast<std::size_t>(op.dep)];
  return support::format("%s '%s'", to_string(op.kind), d.dep->id.c_str());
}

int ProgramModel::fairness_window(int controller) const {
  const ControllerModel& c =
      controllers_[static_cast<std::size_t>(controller)];
  if (organization_ == sim::OrgKind::EventDriven) return 1;
  // Round-robin over the C pseudo-ports, each grant preemptible by the
  // higher-priority D port once per producer, plus the read-data cycle.
  int window = (c.consumer_ports > 0 ? c.consumer_ports - 1 : 0) +
               c.producer_ports + 1;
  return window < 1 ? 1 : window;
}

}  // namespace hicsync::verify
