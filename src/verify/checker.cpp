#include "verify/checker.h"

#include <algorithm>
#include <unordered_map>

#include "support/json.h"
#include "support/strings.h"

namespace hicsync::verify {

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::Proved: return "proved";
    case Verdict::Refuted: return "refuted";
    case Verdict::Inconclusive: return "inconclusive";
  }
  return "?";
}

namespace {

/// Iterative Tarjan SCC over the subgraph of `members` (state ids) with
/// edges drawn from `succs` filtered to members. Emits SCCs in reverse
/// topological order (every successor component before its predecessors).
class SccFinder {
 public:
  SccFinder(const Explorer& ex, const std::vector<std::int32_t>& members)
      : ex_(ex) {
    for (std::size_t i = 0; i < members.size(); ++i) {
      local_.emplace(members[i], static_cast<std::int32_t>(i));
    }
    members_ = members;
    index_.assign(members.size(), -1);
    lowlink_.assign(members.size(), -1);
    on_stack_.assign(members.size(), false);
    comp_.assign(members.size(), -1);
  }

  void run() {
    for (std::size_t v = 0; v < members_.size(); ++v) {
      if (index_[v] < 0) strongconnect(static_cast<std::int32_t>(v));
    }
  }

  /// Component id per local vertex; ids are emission-ordered (reverse
  /// topological).
  [[nodiscard]] const std::vector<std::int32_t>& comp() const { return comp_; }
  [[nodiscard]] std::int32_t num_comps() const { return num_comps_; }
  [[nodiscard]] const std::vector<std::int32_t>& members() const {
    return members_;
  }
  /// Local vertex id for state `s`, or -1.
  [[nodiscard]] std::int32_t local(std::int32_t s) const {
    auto it = local_.find(s);
    return it == local_.end() ? -1 : it->second;
  }

 private:
  void strongconnect(std::int32_t v0) {
    // Explicit DFS stack: (vertex, next-successor-index).
    struct Frame {
      std::int32_t v;
      std::size_t next = 0;
    };
    std::vector<Frame> dfs;
    dfs.push_back({v0});
    index_[static_cast<std::size_t>(v0)] = counter_;
    lowlink_[static_cast<std::size_t>(v0)] = counter_;
    ++counter_;
    stack_.push_back(v0);
    on_stack_[static_cast<std::size_t>(v0)] = true;

    while (!dfs.empty()) {
      Frame& f = dfs.back();
      const std::vector<std::int32_t>& out =
          ex_.succs(members_[static_cast<std::size_t>(f.v)]);
      bool descended = false;
      while (f.next < out.size()) {
        std::int32_t w = local(out[f.next]);
        ++f.next;
        if (w < 0) continue;  // edge leaves the subgraph
        if (index_[static_cast<std::size_t>(w)] < 0) {
          index_[static_cast<std::size_t>(w)] = counter_;
          lowlink_[static_cast<std::size_t>(w)] = counter_;
          ++counter_;
          stack_.push_back(w);
          on_stack_[static_cast<std::size_t>(w)] = true;
          dfs.push_back({w});
          descended = true;
          break;
        }
        if (on_stack_[static_cast<std::size_t>(w)]) {
          lowlink_[static_cast<std::size_t>(f.v)] =
              std::min(lowlink_[static_cast<std::size_t>(f.v)],
                       index_[static_cast<std::size_t>(w)]);
        }
      }
      if (descended) continue;
      // v is finished.
      std::int32_t v = f.v;
      dfs.pop_back();
      if (!dfs.empty()) {
        std::int32_t p = dfs.back().v;
        lowlink_[static_cast<std::size_t>(p)] =
            std::min(lowlink_[static_cast<std::size_t>(p)],
                     lowlink_[static_cast<std::size_t>(v)]);
      }
      if (lowlink_[static_cast<std::size_t>(v)] ==
          index_[static_cast<std::size_t>(v)]) {
        std::int32_t c = num_comps_++;
        while (true) {
          std::int32_t w = stack_.back();
          stack_.pop_back();
          on_stack_[static_cast<std::size_t>(w)] = false;
          comp_[static_cast<std::size_t>(w)] = c;
          if (w == v) break;
        }
      }
    }
  }

  const Explorer& ex_;
  std::vector<std::int32_t> members_;
  std::unordered_map<std::int32_t, std::int32_t> local_;
  std::vector<std::int32_t> index_;
  std::vector<std::int32_t> lowlink_;
  std::vector<bool> on_stack_;
  std::vector<std::int32_t> comp_;
  std::vector<std::int32_t> stack_;
  std::int32_t counter_ = 0;
  std::int32_t num_comps_ = 0;
};

/// Worst-case blocked streak for the consumer endpoint (`di`, `k`).
BlockingBound endpoint_bound(const ProgramModel& model, const Explorer& ex,
                             int di, int k) {
  const DepModel& dm = model.deps()[static_cast<std::size_t>(di)];
  const DepModel::ConsumeSite& site =
      dm.consume_sites[static_cast<std::size_t>(k)];
  BlockingBound b;
  b.dep = dm.dep->id;
  b.thread = site.thread >= 0
                 ? model.threads()[static_cast<std::size_t>(site.thread)].name
                 : "?";
  b.consumer = k;
  if (site.thread < 0 || site.node < 0) {
    b.bounded = true;
    return b;
  }
  const NodeModel& node = model.threads()[static_cast<std::size_t>(site.thread)]
                              .nodes[static_cast<std::size_t>(site.node)];

  // S_e: every reachable state where the consumer sits at its guarded
  // read. Edges inside S_e are moves of *other* threads (the consumer
  // leaving its node leaves the set), i.e. exactly the steps it can spend
  // blocked there.
  std::vector<std::int32_t> members;
  for (std::int32_t s = 0; s < static_cast<std::int32_t>(ex.num_states());
       ++s) {
    if (ex.pc(ex.state(s), site.thread) == site.node) members.push_back(s);
  }
  if (members.empty()) {
    b.bounded = true;
    return b;
  }

  SccFinder scc(ex, members);
  scc.run();

  // A nontrivial SCC means other threads can cycle while the consumer
  // waits. If its read is never enabled anywhere in the cycle, only the
  // cycling threads' own termination would free it — unbounded under our
  // assumptions. If the read is enabled somewhere in the cycle, round-robin
  // fairness guarantees the grant within one arbitration window, so the
  // whole component contributes once.
  std::vector<std::int32_t> comp_size(
      static_cast<std::size_t>(scc.num_comps()), 0);
  std::vector<bool> comp_self_loop(static_cast<std::size_t>(scc.num_comps()),
                                   false);
  std::vector<bool> comp_enabled(static_cast<std::size_t>(scc.num_comps()),
                                 false);
  for (std::size_t v = 0; v < members.size(); ++v) {
    std::int32_t c = scc.comp()[v];
    ++comp_size[static_cast<std::size_t>(c)];
    const State& s = ex.state(members[v]);
    bool enabled = true;
    for (const SyncOp& op : node.ops) {
      if (!ex.op_enabled(s, op)) enabled = false;
    }
    if (enabled) comp_enabled[static_cast<std::size_t>(c)] = true;
    for (std::int32_t succ : ex.succs(members[v])) {
      if (succ == members[v]) comp_self_loop[static_cast<std::size_t>(c)] = true;
    }
  }
  // Longest path over the condensation DAG. Tarjan emits components in
  // reverse topological order, so a single pass in emission order sees
  // every successor's value first.
  std::vector<std::uint64_t> longest(static_cast<std::size_t>(scc.num_comps()),
                                     0);
  std::vector<std::vector<std::int32_t>> comp_succs(
      static_cast<std::size_t>(scc.num_comps()));
  for (std::size_t v = 0; v < members.size(); ++v) {
    std::int32_t c = scc.comp()[v];
    for (std::int32_t succ : ex.succs(members[v])) {
      std::int32_t w = scc.local(succ);
      if (w < 0) continue;
      std::int32_t cw = scc.comp()[static_cast<std::size_t>(w)];
      if (cw != c) comp_succs[static_cast<std::size_t>(c)].push_back(cw);
    }
  }
  b.bounded = true;
  std::uint64_t best = 0;
  for (std::int32_t c = 0; c < scc.num_comps(); ++c) {
    std::size_t ci = static_cast<std::size_t>(c);
    bool nontrivial = comp_size[ci] > 1 || comp_self_loop[ci];
    if (nontrivial && !comp_enabled[ci]) {
      b.bounded = false;
      b.note = support::format(
          "other threads can loop forever while '%s' waits at its read of "
          "'%s' without the dependency ever becoming available (holds only "
          "if those loops terminate)",
          b.thread.c_str(), b.dep.c_str());
      return b;
    }
    // Weight: each state of the component is one abstract step another
    // thread can take while the consumer stays blocked; a fairness-exited
    // cycle contributes its state count once.
    std::uint64_t w = static_cast<std::uint64_t>(comp_size[ci]);
    std::uint64_t through = 0;
    for (std::int32_t cw : comp_succs[ci]) {
      through = std::max(through,
                         longest[static_cast<std::size_t>(cw)]);
    }
    longest[ci] = w + through;
    if (nontrivial) b.fairness_cycle = true;
    best = std::max(best, longest[ci]);
  }
  b.steps = best;
  int window = dm.controller >= 0 ? model.fairness_window(dm.controller) : 1;
  b.cycles = (b.steps + 1) * (static_cast<std::uint64_t>(window) + 1);
  return b;
}

}  // namespace

bool VerifyResult::all_proved() const {
  if (deadlock_free != Verdict::Proved) return false;
  if (occupancy_ok != Verdict::Proved) return false;
  if (blocking_bounded == Verdict::Refuted ||
      blocking_bounded == Verdict::Inconclusive) {
    return false;
  }
  return complete;
}

VerifyResult run_verify(const hic::Program& program, const hic::Sema& sema,
                        const memalloc::MemoryMap& map,
                        const std::vector<memalloc::BramPortPlan>& plans,
                        sim::OrgKind organization,
                        const VerifyOptions& options) {
  VerifyResult r;
  r.organization = organization;

  ProgramModel model =
      ProgramModel::build(program, sema, map, plans, organization);
  ExploreOptions eo;
  eo.max_states = options.max_states;
  eo.max_depth = options.max_depth;
  eo.por = options.por;
  eo.build_graph = options.bounds;
  Explorer ex(model, eo);
  ex.run();

  r.complete = ex.complete();
  if (!r.complete) r.budget = verify::to_string(ex.budget());
  r.states = ex.num_states();
  r.transitions = ex.num_transitions();
  r.controllers = ex.controller_stats();

  // Property 1: deadlock-freedom.
  if (ex.deadlock_found()) {
    r.deadlock_free = Verdict::Refuted;
    r.has_cex = true;
    const Counterexample& cex = ex.deadlock();
    for (const Step& st : cex.steps) {
      r.cex.schedule.push_back(
          model.threads()[static_cast<std::size_t>(st.thread)].name);
    }
    for (const BlockedThread& bt : cex.blocked) {
      CexInfo::Blocked b;
      b.thread = model.threads()[static_cast<std::size_t>(bt.thread)].name;
      b.dep = model.deps()[static_cast<std::size_t>(bt.op.dep)].dep->id;
      b.kind = bt.op.kind;
      r.cex.blocked.push_back(std::move(b));
      // Property 2: a consumer stuck at its guarded read in an
      // unrecoverable state is a runtime consume-before-produce.
      if (bt.op.kind == SyncOp::Kind::Consume) {
        r.consume_before_produce.emplace_back(
            model.deps()[static_cast<std::size_t>(bt.op.dep)].dep->id,
            model.threads()[static_cast<std::size_t>(bt.thread)].name);
      }
    }
    r.cex.text = ex.render(cex);
  } else {
    r.deadlock_free = r.complete ? Verdict::Proved : Verdict::Inconclusive;
  }

  // Property 4: dependency-list occupancy vs the generated capacity.
  bool occupancy_violated = false;
  for (const ControllerStats& st : r.controllers) {
    if (organization == sim::OrgKind::Arbitrated) {
      if (st.max_occupancy > st.cam_capacity) occupancy_violated = true;
    } else if (st.max_slot >= st.total_slots && st.total_slots > 0) {
      occupancy_violated = true;
    }
  }
  r.occupancy_ok = occupancy_violated
                       ? Verdict::Refuted
                       : (r.complete ? Verdict::Proved : Verdict::Inconclusive);

  // Property 3: bounded blocking. Meaningless in the presence of a
  // deadlock (the deadlocked consumer blocks forever); needs the state
  // graph, so it is skipped when bounds are disabled.
  if (ex.deadlock_found()) {
    r.blocking_bounded = Verdict::Refuted;
  } else if (!options.bounds) {
    r.blocking_bounded = Verdict::Inconclusive;
  } else {
    bool all_bounded = true;
    for (std::size_t di = 0; di < model.deps().size(); ++di) {
      const DepModel& dm = model.deps()[di];
      for (std::size_t k = 0; k < dm.consume_sites.size(); ++k) {
        BlockingBound b = endpoint_bound(model, ex, static_cast<int>(di),
                                         static_cast<int>(k));
        all_bounded = all_bounded && b.bounded;
        r.bounds.push_back(std::move(b));
      }
    }
    r.blocking_bounded =
        !all_bounded ? Verdict::Refuted
                     : (r.complete ? Verdict::Proved : Verdict::Inconclusive);
  }

  return r;
}

std::size_t report_findings(const VerifyResult& result, const hic::Sema& sema,
                            support::DiagnosticEngine& diags) {
  std::size_t errors = 0;
  auto dep_loc = [&](const std::string& dep_id) -> support::SourceLoc {
    for (const hic::Dependency& d : sema.dependencies()) {
      if (d.id == dep_id) return d.loc;
    }
    return {};
  };
  auto consumer_loc = [&](const std::string& dep_id,
                          const std::string& thread) -> support::SourceLoc {
    for (const hic::Dependency& d : sema.dependencies()) {
      if (d.id != dep_id) continue;
      for (const hic::DepConsumer& c : d.consumers) {
        if (c.thread == thread) return c.loc;
      }
    }
    return dep_loc(dep_id);
  };
  const char* org = sim::to_string(result.organization);

  if (result.deadlock_free == Verdict::Refuted) {
    support::SourceLoc loc;
    std::string detail;
    for (const CexInfo::Blocked& b : result.cex.blocked) {
      if (!loc.valid()) loc = consumer_loc(b.dep, b.thread);
      if (!detail.empty()) detail += ", ";
      detail += support::format("'%s' %ss '%s'", b.thread.c_str(),
                                b.kind == SyncOp::Kind::Consume ? "consume"
                                                                : "produce",
                                b.dep.c_str());
    }
    diags.report(
        support::Severity::Error, loc,
        support::format("deadlock reachable under the %s organization in %zu "
                        "step(s): %s are all blocked (run with --replay for "
                        "the schedule)",
                        org, result.cex.schedule.size(), detail.c_str()),
        "verify-deadlock");
    ++errors;
  }
  for (const auto& [dep, thread] : result.consume_before_produce) {
    diags.report(
        support::Severity::Error, consumer_loc(dep, thread),
        support::format("thread '%s' can reach its read of '%s' in a state "
                        "where the dependency can no longer be produced "
                        "(consume-before-produce at runtime, %s organization)",
                        thread.c_str(), dep.c_str(), org),
        "verify-consume-before-produce");
    ++errors;
  }
  if (result.occupancy_ok == Verdict::Refuted) {
    for (const ControllerStats& st : result.controllers) {
      bool bad = result.organization == sim::OrgKind::Arbitrated
                     ? st.max_occupancy > st.cam_capacity
                     : (st.total_slots > 0 && st.max_slot >= st.total_slots);
      if (!bad) continue;
      diags.report(
          support::Severity::Error, {},
          result.organization == sim::OrgKind::Arbitrated
              ? support::format(
                    "bram%d dependency list can hold %d simultaneously open "
                    "entries but the generated CAM has capacity %d",
                    st.bram_id, st.max_occupancy, st.cam_capacity)
              : support::format(
                    "bram%d schedule reaches slot %d but only %d slots exist",
                    st.bram_id, st.max_slot, st.total_slots),
          "verify-cam-occupancy");
      ++errors;
    }
  }
  for (const BlockingBound& b : result.bounds) {
    if (b.bounded) continue;
    diags.report(support::Severity::Warning,
                 consumer_loc(b.dep, b.thread),
                 support::format("cannot bound the blocking of thread '%s' at "
                                 "its read of '%s' (%s organization): %s",
                                 b.thread.c_str(), b.dep.c_str(), org,
                                 b.note.c_str()),
                 "verify-blocking-unbounded");
  }
  if (!result.complete) {
    const char* which =
        result.budget.empty() ? "states" : result.budget.c_str();
    diags.report(
        support::Severity::Warning, {},
        support::format("%s budget exhausted after %llu states; unproved "
                        "properties are inconclusive, not proved "
                        "(%s organization; raise --max-%s, or fall back to "
                        "hic-bound for sound static occupancy and blocking "
                        "bounds)",
                        which,
                        static_cast<unsigned long long>(result.states), org,
                        which),
        "verify-inconclusive");
  }
  return errors;
}

std::string VerifyResult::text() const {
  std::string out;
  out += support::format(
      "verify: organization=%s states=%llu transitions=%llu%s%s%s\n",
      sim::to_string(organization), static_cast<unsigned long long>(states),
      static_cast<unsigned long long>(transitions),
      complete ? "" : " (", complete ? "" : budget.c_str(),
      complete ? "" : " budget exhausted)");
  out += support::format("  deadlock-freedom:        %s\n",
                         verify::to_string(deadlock_free));
  out += support::format("  consume-before-produce:  %s\n",
                         consume_before_produce.empty()
                             ? (deadlock_free == Verdict::Proved
                                    ? "proved absent"
                                    : verify::to_string(deadlock_free))
                             : "refuted");
  out += support::format("  bounded blocking:        %s\n",
                         verify::to_string(blocking_bounded));
  out += support::format("  cam occupancy:           %s\n",
                         verify::to_string(occupancy_ok));
  for (const ControllerStats& st : controllers) {
    if (organization == sim::OrgKind::Arbitrated) {
      out += support::format("  bram%d: max %d/%d dependency entries open\n",
                             st.bram_id, st.max_occupancy, st.cam_capacity);
    } else {
      out += support::format("  bram%d: slots reach %d of %d\n", st.bram_id,
                             st.max_slot, st.total_slots);
    }
  }
  for (const BlockingBound& b : bounds) {
    if (b.bounded) {
      out += support::format(
          "  blocking '%s' @ %s: <= %llu step(s), <= %llu cycle(s)%s\n",
          b.dep.c_str(), b.thread.c_str(),
          static_cast<unsigned long long>(b.steps),
          static_cast<unsigned long long>(b.cycles),
          b.fairness_cycle ? " (crosses a fairness-exited cycle)" : "");
    } else {
      out += support::format("  blocking '%s' @ %s: UNBOUNDED — %s\n",
                             b.dep.c_str(), b.thread.c_str(), b.note.c_str());
    }
  }
  if (has_cex) {
    out += "  counterexample (minimal schedule):\n";
    out += cex.text;
  }
  return out;
}

std::string VerifyResult::json() const {
  support::JsonWriter w;
  w.begin_object();
  w.key("organization").value(sim::to_string(organization));
  w.key("states").value(states);
  w.key("transitions").value(transitions);
  w.key("complete").value(complete);
  if (!complete) w.key("budget").value(budget);
  w.key("deadlock_free").value(verify::to_string(deadlock_free));
  w.key("blocking_bounded").value(verify::to_string(blocking_bounded));
  w.key("occupancy_ok").value(verify::to_string(occupancy_ok));
  w.key("consume_before_produce").begin_array();
  for (const auto& [dep, thread] : consume_before_produce) {
    w.begin_object();
    w.key("dep").value(dep);
    w.key("thread").value(thread);
    w.end_object();
  }
  w.end_array();
  w.key("controllers").begin_array();
  for (const ControllerStats& st : controllers) {
    w.begin_object();
    w.key("bram").value(st.bram_id);
    w.key("cam_capacity").value(st.cam_capacity);
    w.key("max_occupancy").value(st.max_occupancy);
    w.key("max_slot").value(st.max_slot);
    w.key("total_slots").value(st.total_slots);
    w.end_object();
  }
  w.end_array();
  w.key("bounds").begin_array();
  for (const BlockingBound& b : bounds) {
    w.begin_object();
    w.key("dep").value(b.dep);
    w.key("thread").value(b.thread);
    w.key("consumer").value(b.consumer);
    w.key("bounded").value(b.bounded);
    w.key("steps").value(b.steps);
    w.key("cycles").value(b.cycles);
    w.key("fairness_cycle").value(b.fairness_cycle);
    if (!b.note.empty()) w.key("note").value(b.note);
    w.end_object();
  }
  w.end_array();
  if (has_cex) {
    w.key("counterexample").begin_object();
    w.key("schedule").begin_array();
    for (const std::string& t : cex.schedule) w.value(t);
    w.end_array();
    w.key("blocked").begin_array();
    for (const CexInfo::Blocked& b : cex.blocked) {
      w.begin_object();
      w.key("thread").value(b.thread);
      w.key("dep").value(b.dep);
      w.key("op").value(verify::to_string(b.kind));
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  return w.str();
}

}  // namespace hicsync::verify
