// Factories for the built-in lint checks (internal to the lint library;
// the registry in lint.cpp instantiates them).
#pragma once

#include <memory>

#include "analysis/lint/lint.h"

namespace hicsync::analysis::lint {

// checks_sync.cpp
std::unique_ptr<LintPass> make_race_unsynced_access_check();
std::unique_ptr<LintPass> make_consume_before_produce_check();
std::unique_ptr<LintPass> make_duplicate_producer_write_check();

// checks_mem.cpp
std::unique_ptr<LintPass> make_unreachable_stmt_check();
std::unique_ptr<LintPass> make_dead_shared_variable_check();
std::unique_ptr<LintPass> make_port_pressure_check();

// checks_pragma.cpp
std::unique_ptr<LintPass> make_pragma_consumer_order_check();

}  // namespace hicsync::analysis::lint
