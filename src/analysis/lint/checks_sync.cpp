// Synchronization checks: unsynchronized cross-thread accesses, statement-
// level consume-before-produce deadlocks, and duplicate producer writes.

#include <algorithm>
#include <set>
#include <string>
#include <utility>

#include "analysis/lint/checks.h"
#include "support/strings.h"

namespace hicsync::analysis::lint {

namespace {

std::string loc_str(support::SourceLoc loc) {
  return loc.valid() ? loc.str() : "<unknown>";
}

/// Renders a CFG path as the source locations of its executable nodes.
std::string render_path(const Cfg& cfg, const std::vector<int>& path) {
  std::string out;
  for (int id : path) {
    const CfgNode& n = cfg.node(id);
    if (n.kind != CfgNodeKind::Statement && n.kind != CfgNodeKind::Branch) {
      continue;
    }
    if (n.stmt == nullptr || !n.stmt->loc.valid()) continue;
    if (!out.empty()) out += " -> ";
    out += n.stmt->loc.str();
  }
  return out;
}

/// True when `stmt` in `thread` is a bound consume site of a dependency on
/// `symbol` (i.e. the guarded read the paper's model synchronizes).
bool is_bound_consume(const hic::Sema& sema, const std::string& thread,
                      const hic::Stmt* stmt, const hic::Symbol* symbol) {
  for (const hic::Dependency& dep : sema.dependencies()) {
    if (dep.shared_var != symbol) continue;
    for (const hic::DepConsumer& c : dep.consumers) {
      if (c.thread == thread && c.stmt == stmt) return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// race-unsynced-access
// ---------------------------------------------------------------------------

class RaceUnsyncedAccessCheck final : public LintPass {
 public:
  const CheckInfo& info() const override {
    static const CheckInfo kInfo{
        "race-unsynced-access", support::Severity::Error, Stage::PostSema,
        "a thread accesses another thread's variable with no bound "
        "dependency covering the statement (unsynchronized, can race)"};
    return kInfo;
  }

  void run(const LintContext& ctx, const Sink& sink) const override {
    for (const hic::ThreadDecl& thread : ctx.program().threads) {
      const UseDefAnalysis* ud = ctx.usedef(thread.name);
      if (ud == nullptr) continue;
      std::set<std::pair<const hic::Stmt*, const hic::Symbol*>> reported;
      for (const Access& a : ud->accesses()) {
        if (a.symbol == nullptr || a.stmt == nullptr) continue;
        if (a.symbol->thread() == thread.name) continue;  // local access
        if (is_bound_consume(ctx.sema(), thread.name, a.stmt, a.symbol)) {
          continue;
        }
        if (!reported.insert({a.stmt, a.symbol}).second) continue;
        sink(a.stmt->loc,
             support::format(
                 "thread '%s' %s '%s' with no bound dependency covering "
                 "this statement; the access is unsynchronized and races "
                 "with the producer",
                 thread.name.c_str(), a.is_def ? "writes" : "reads",
                 a.symbol->qualified_name().c_str()));
      }
    }
  }
};

// ---------------------------------------------------------------------------
// consume-before-produce
// ---------------------------------------------------------------------------

class ConsumeBeforeProduceCheck final : public LintPass {
 public:
  const CheckInfo& info() const override {
    static const CheckInfo kInfo{
        "consume-before-produce", support::Severity::Error, Stage::PostSema,
        "in a dependency cycle every thread's blocking consumer read can "
        "precede the producer write its peer waits on (statement-level "
        "deadlock with a path witness)"};
    return kInfo;
  }

  void run(const LintContext& ctx, const Sink& sink) const override {
    const ThreadDepGraph& g = ctx.depgraph();
    for (const std::vector<int>& scc : g.deadlock_cycles()) {
      std::set<std::string> members;
      for (int t : scc) {
        members.insert(g.threads()[static_cast<std::size_t>(t)]);
      }

      // For each member thread, find a (consume, produce) statement pair
      // inside the cycle where the blocking read may execute first.
      struct Witness {
        std::string thread;
        const hic::Dependency* consumed = nullptr;
        const hic::Dependency* produced = nullptr;
        const hic::Stmt* consume_stmt = nullptr;
        std::string path;
      };
      std::vector<Witness> witnesses;
      bool all_ordered = true;
      for (int ti : scc) {
        const std::string& name = g.threads()[static_cast<std::size_t>(ti)];
        const Cfg* cfg = ctx.cfg(name);
        if (cfg == nullptr) {
          all_ordered = false;
          break;
        }
        Witness w;
        for (const hic::Dependency& din : ctx.sema().dependencies()) {
          if (members.count(din.producer_thread) == 0) continue;
          const hic::DepConsumer* consume = nullptr;
          for (const hic::DepConsumer& c : din.consumers) {
            if (c.thread == name) consume = &c;
          }
          if (consume == nullptr) continue;
          int cnode = stmt_node(*cfg, consume->stmt);
          for (const hic::Dependency& dout : ctx.sema().dependencies()) {
            if (dout.producer_thread != name) continue;
            bool feeds_cycle = false;
            for (const hic::DepConsumer& c : dout.consumers) {
              if (members.count(c.thread) != 0) feeds_cycle = true;
            }
            if (!feeds_cycle) continue;
            int pnode = stmt_node(*cfg, dout.producer_stmt);
            std::vector<int> path = shortest_path(*cfg, cnode, pnode);
            if (path.empty()) continue;  // produce always precedes consume
            w.thread = name;
            w.consumed = &din;
            w.produced = &dout;
            w.consume_stmt = consume->stmt;
            w.path = render_path(*cfg, path);
            break;
          }
          if (w.consumed != nullptr) break;
        }
        if (w.consumed == nullptr) {
          // Some thread always produces before it consumes: the cycle is
          // pipelined, not a deadlock. Refines the SCC-level report away.
          all_ordered = false;
          break;
        }
        witnesses.push_back(std::move(w));
      }
      if (!all_ordered || witnesses.empty()) continue;

      std::string msg = "statement-level deadlock: threads {";
      bool first = true;
      for (const std::string& t : members) {
        if (!first) msg += ", ";
        msg += t;
        first = false;
      }
      msg += "} all consume before they produce;";
      for (const Witness& w : witnesses) {
        msg += support::format(
            " '%s' blocks consuming '%s' at %s before producing '%s' at %s "
            "(path %s);",
            w.thread.c_str(), w.consumed->id.c_str(),
            loc_str(w.consume_stmt->loc).c_str(), w.produced->id.c_str(),
            loc_str(w.produced->producer_stmt->loc).c_str(),
            w.path.c_str());
      }
      msg.pop_back();  // trailing ';'
      sink(witnesses.front().consume_stmt->loc, std::move(msg));
    }
  }
};

// ---------------------------------------------------------------------------
// duplicate-producer-write
// ---------------------------------------------------------------------------

class DuplicateProducerWriteCheck final : public LintPass {
 public:
  const CheckInfo& info() const override {
    static const CheckInfo kInfo{
        "duplicate-producer-write", support::Severity::Warning,
        Stage::PostSema,
        "a dependency's shared variable is also written outside (or more "
        "than once by) its producing statement — write-after-write hazard"};
    return kInfo;
  }

  void run(const LintContext& ctx, const Sink& sink) const override {
    for (const hic::Dependency& dep : ctx.sema().dependencies()) {
      const UseDefAnalysis* ud = ctx.usedef(dep.producer_thread);
      const Cfg* cfg = ctx.cfg(dep.producer_thread);
      if (ud == nullptr || cfg == nullptr) continue;

      std::set<const hic::Stmt*> reported;
      for (const Access& a : ud->accesses()) {
        if (!a.is_def || a.symbol != dep.shared_var) continue;
        if (a.stmt == dep.producer_stmt) continue;
        if (!reported.insert(a.stmt).second) continue;
        sink(a.stmt->loc,
             support::format(
                 "'%s' is written here but only the producing statement of "
                 "dependency '%s' (at %s) releases its consumers; this "
                 "write can clobber the produced value (write-after-write)",
                 dep.shared_var->qualified_name().c_str(), dep.id.c_str(),
                 loc_str(dep.producer_stmt->loc).c_str()));
      }

      // A producing statement inside a loop executes more than once per
      // pass: each iteration re-produces before consumers drained the last.
      int pnode = stmt_node(*cfg, dep.producer_stmt);
      if (pnode >= 0) {
        bool in_loop = false;
        for (int v : cfg->node(pnode).succs) {
          // pnode reaches itself through some successor => it sits on a
          // CFG cycle.
          if (reachable_from(*cfg, v)[static_cast<std::size_t>(pnode)]) {
            in_loop = true;
            break;
          }
        }
        if (in_loop) {
          sink(dep.producer_stmt->loc,
               support::format(
                   "producing statement of dependency '%s' is inside a "
                   "loop and may execute more than once per pass "
                   "(duplicate produce of '%s')",
                   dep.id.c_str(),
                   dep.shared_var->qualified_name().c_str()));
        }
      }
    }
  }
};

}  // namespace

std::unique_ptr<LintPass> make_race_unsynced_access_check() {
  return std::make_unique<RaceUnsyncedAccessCheck>();
}
std::unique_ptr<LintPass> make_consume_before_produce_check() {
  return std::make_unique<ConsumeBeforeProduceCheck>();
}
std::unique_ptr<LintPass> make_duplicate_producer_write_check() {
  return std::make_unique<DuplicateProducerWriteCheck>();
}

}  // namespace hicsync::analysis::lint
