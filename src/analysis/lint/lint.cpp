#include "analysis/lint/lint.h"

#include <algorithm>
#include <deque>

#include "analysis/lint/checks.h"

namespace hicsync::analysis::lint {

const char* to_string(Stage s) {
  switch (s) {
    case Stage::PostSema:
      return "post-sema";
    case Stage::PreGenerate:
      return "pre-generate";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// LintContext
// ---------------------------------------------------------------------------

LintContext::LintContext(const hic::Program& program, const hic::Sema& sema)
    : program_(program),
      sema_(sema),
      depgraph_(ThreadDepGraph::build(program, sema.dependencies())) {
  cfgs_.reserve(program.threads.size());
  for (const hic::ThreadDecl& t : program.threads) {
    cfgs_.push_back(Cfg::build(t));
  }
  // Use-def analyses hold references into cfgs_, which is fully built and
  // never resized from here on.
  usedefs_.reserve(cfgs_.size());
  for (const Cfg& cfg : cfgs_) {
    usedefs_.push_back(std::make_unique<UseDefAnalysis>(cfg));
  }
}

const Cfg* LintContext::cfg(const std::string& thread) const {
  for (const Cfg& c : cfgs_) {
    if (c.thread_name() == thread) return &c;
  }
  return nullptr;
}

const UseDefAnalysis* LintContext::usedef(const std::string& thread) const {
  for (std::size_t i = 0; i < cfgs_.size(); ++i) {
    if (cfgs_[i].thread_name() == thread) return usedefs_[i].get();
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// LintRegistry
// ---------------------------------------------------------------------------

const LintRegistry& LintRegistry::builtin() {
  static const LintRegistry* registry = [] {
    auto* r = new LintRegistry;
    r->register_pass(make_race_unsynced_access_check());
    r->register_pass(make_consume_before_produce_check());
    r->register_pass(make_duplicate_producer_write_check());
    r->register_pass(make_unreachable_stmt_check());
    r->register_pass(make_dead_shared_variable_check());
    r->register_pass(make_port_pressure_check());
    r->register_pass(make_pragma_consumer_order_check());
    return r;
  }();
  return *registry;
}

void LintRegistry::register_pass(std::unique_ptr<LintPass> pass) {
  passes_.push_back(std::move(pass));
}

const LintPass* LintRegistry::find(std::string_view id) const {
  for (const auto& p : passes_) {
    if (id == p->info().id) return p.get();
  }
  return nullptr;
}

std::vector<CheckInfo> LintRegistry::check_infos() const {
  std::vector<CheckInfo> out;
  out.reserve(passes_.size());
  for (const auto& p : passes_) out.push_back(p->info());
  return out;
}

// ---------------------------------------------------------------------------
// LintDriver
// ---------------------------------------------------------------------------

std::optional<support::Severity> LintDriver::resolved_severity(
    const CheckInfo& check) const {
  auto listed = [&](const std::vector<std::string>& ids) {
    return std::find(ids.begin(), ids.end(), check.id) != ids.end();
  };
  if (listed(options_.disabled)) return std::nullopt;
  support::Severity sev = check.default_severity;
  if (listed(options_.as_error)) sev = support::Severity::Error;
  if (options_.werror && sev == support::Severity::Warning) {
    sev = support::Severity::Error;
  }
  return sev;
}

LintDriver::Summary LintDriver::run(Stage stage, const LintContext& ctx) const {
  Summary summary;
  for (const auto& pass : registry_.passes()) {
    const CheckInfo& info = pass->info();
    if (info.stage != stage) continue;
    auto severity = resolved_severity(info);
    if (!severity.has_value()) continue;
    pass->run(ctx, [&](support::SourceLoc loc, std::string message) {
      diags_.report(*severity, loc, std::move(message), info.id);
      switch (*severity) {
        case support::Severity::Error:
          ++summary.errors;
          break;
        case support::Severity::Warning:
          ++summary.warnings;
          break;
        case support::Severity::Note:
          ++summary.notes;
          break;
      }
    });
  }
  return summary;
}

// ---------------------------------------------------------------------------
// CFG helpers
// ---------------------------------------------------------------------------

int stmt_node(const Cfg& cfg, const hic::Stmt* stmt) {
  for (const CfgNode& n : cfg.nodes()) {
    if (n.stmt == stmt) return n.id;
  }
  return -1;
}

std::vector<char> reachable_from(const Cfg& cfg, int from) {
  std::vector<char> seen(cfg.nodes().size(), 0);
  if (from < 0) return seen;
  std::deque<int> work{from};
  seen[static_cast<std::size_t>(from)] = 1;
  while (!work.empty()) {
    int u = work.front();
    work.pop_front();
    for (int v : cfg.node(u).succs) {
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = 1;
        work.push_back(v);
      }
    }
  }
  return seen;
}

std::vector<int> shortest_path(const Cfg& cfg, int from, int to) {
  if (from < 0 || to < 0) return {};
  std::vector<int> parent(cfg.nodes().size(), -1);
  std::vector<char> seen(cfg.nodes().size(), 0);
  std::deque<int> work{from};
  seen[static_cast<std::size_t>(from)] = 1;
  while (!work.empty()) {
    int u = work.front();
    work.pop_front();
    if (u == to) break;
    for (int v : cfg.node(u).succs) {
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = 1;
        parent[static_cast<std::size_t>(v)] = u;
        work.push_back(v);
      }
    }
  }
  if (!seen[static_cast<std::size_t>(to)]) return {};
  std::vector<int> path;
  for (int n = to; n != -1; n = parent[static_cast<std::size_t>(n)]) {
    path.push_back(n);
    if (n == from) break;
  }
  std::reverse(path.begin(), path.end());
  if (path.front() != from) return {};
  return path;
}

}  // namespace hicsync::analysis::lint
