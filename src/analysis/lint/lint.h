// hic-lint: pass-based static synchronization-hazard analysis.
//
// The paper's central promise (§1) is that inter-thread memory dependencies
// are explicit, so hazards "are identified statically". This subsystem makes
// that checkable as a first-class compiler stage: a registry of lint passes
// runs over the checked program (CFGs, use-def chains, the thread dependence
// graph, and — late — the memory map and port plans) and reports findings
// with stable check IDs through the shared DiagnosticEngine.
//
// Stages:
//  * PostSema    — right after semantic analysis, before behavioural
//                  synthesis: AST/CFG/dependence-level hazards (races,
//                  ordering, dead data, pragma hygiene);
//  * PreGenerate — after memory allocation and port planning, before RTL
//                  generation: port-pressure and capacity findings that
//                  would otherwise surface as generator failures.
//
// Registered checks (see docs/DIAGNOSTICS.md for the full catalogue):
//   race-unsynced-access    consume-before-produce   duplicate-producer-write
//   unreachable-stmt        dead-shared-variable     port-pressure
//   pragma-consumer-order
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/depgraph.h"
#include "analysis/usedef.h"
#include "hic/sema.h"
#include "memalloc/allocator.h"
#include "memalloc/portplan.h"
#include "support/diagnostics.h"

namespace hicsync::analysis::lint {

enum class Stage { PostSema, PreGenerate };

[[nodiscard]] const char* to_string(Stage s);

/// Immutable metadata of one registered check.
struct CheckInfo {
  const char* id;                      // stable, e.g. "race-unsynced-access"
  support::Severity default_severity;  // before -W overrides
  Stage stage;
  const char* description;             // one line, for docs and --help
};

/// User-facing lint configuration (mapped from hicc's command line).
struct LintOptions {
  bool enabled = false;
  /// Stop the compiler before RTL generation: analysis and port planning
  /// run (the PreGenerate checks need them), controllers are not built.
  bool only = false;
  /// Check IDs promoted to error severity (-W<check>).
  std::vector<std::string> as_error;
  /// Check IDs disabled entirely (-Wno-<check>).
  std::vector<std::string> disabled;
  /// Treat every warning-severity finding as an error (--Werror).
  bool werror = false;
};

/// Everything a check may inspect. Per-thread CFGs and use-def analyses are
/// built once here and shared by all passes; the memory map and port plans
/// are attached by the compiler before the PreGenerate stage runs.
class LintContext {
 public:
  LintContext(const hic::Program& program, const hic::Sema& sema);
  LintContext(const LintContext&) = delete;
  LintContext& operator=(const LintContext&) = delete;

  [[nodiscard]] const hic::Program& program() const { return program_; }
  [[nodiscard]] const hic::Sema& sema() const { return sema_; }
  [[nodiscard]] const ThreadDepGraph& depgraph() const { return depgraph_; }
  [[nodiscard]] const std::vector<Cfg>& cfgs() const { return cfgs_; }
  /// CFG / use-def of one thread; nullptr for unknown names.
  [[nodiscard]] const Cfg* cfg(const std::string& thread) const;
  [[nodiscard]] const UseDefAnalysis* usedef(const std::string& thread) const;

  void attach_memory(const memalloc::MemoryMap* map,
                     const std::vector<memalloc::BramPortPlan>* plans) {
    map_ = map;
    plans_ = plans;
  }
  /// Null until attach_memory (PreGenerate stage only).
  [[nodiscard]] const memalloc::MemoryMap* memory_map() const { return map_; }
  [[nodiscard]] const std::vector<memalloc::BramPortPlan>* port_plans()
      const {
    return plans_;
  }

 private:
  const hic::Program& program_;
  const hic::Sema& sema_;
  std::vector<Cfg> cfgs_;  // one per thread, program order
  std::vector<std::unique_ptr<UseDefAnalysis>> usedefs_;
  ThreadDepGraph depgraph_;
  const memalloc::MemoryMap* map_ = nullptr;
  const std::vector<memalloc::BramPortPlan>* plans_ = nullptr;
};

/// One lint check. Passes are stateless: findings go through the sink with
/// the location and message; the driver resolves severity and check ID.
class LintPass {
 public:
  using Sink = std::function<void(support::SourceLoc, std::string)>;

  virtual ~LintPass() = default;
  [[nodiscard]] virtual const CheckInfo& info() const = 0;
  virtual void run(const LintContext& ctx, const Sink& sink) const = 0;
};

/// Owns the registered passes. The default instance carries the built-in
/// checks; embedders can construct their own registry and add passes.
class LintRegistry {
 public:
  /// Registry pre-populated with every built-in check.
  [[nodiscard]] static const LintRegistry& builtin();

  LintRegistry() = default;
  void register_pass(std::unique_ptr<LintPass> pass);

  [[nodiscard]] const std::vector<std::unique_ptr<LintPass>>& passes() const {
    return passes_;
  }
  [[nodiscard]] const LintPass* find(std::string_view id) const;
  [[nodiscard]] std::vector<CheckInfo> check_infos() const;

 private:
  std::vector<std::unique_ptr<LintPass>> passes_;
};

/// Runs a registry's passes for one stage, resolving per-check severities
/// from the options and reporting into the diagnostic engine.
class LintDriver {
 public:
  struct Summary {
    int errors = 0;
    int warnings = 0;
    int notes = 0;
    [[nodiscard]] int total() const { return errors + warnings + notes; }
  };

  LintDriver(LintOptions options, support::DiagnosticEngine& diags,
             const LintRegistry& registry = LintRegistry::builtin())
      : options_(std::move(options)), diags_(diags), registry_(registry) {}

  /// Runs every registered pass whose stage matches. Returns the finding
  /// counts of this invocation (at resolved severity).
  Summary run(Stage stage, const LintContext& ctx) const;

  /// Severity a finding of `check` would be reported at; Note/Warning/Error
  /// after -W promotions and --Werror, or nullopt when disabled.
  [[nodiscard]] std::optional<support::Severity> resolved_severity(
      const CheckInfo& check) const;

 private:
  LintOptions options_;
  support::DiagnosticEngine& diags_;
  const LintRegistry& registry_;
};

// --- CFG helpers shared by the built-in checks (exposed for tests) ---

/// Id of the CFG node executing `stmt`, or -1 when the statement does not
/// lower to a node of this CFG.
[[nodiscard]] int stmt_node(const Cfg& cfg, const hic::Stmt* stmt);

/// reachable[n] != 0 iff node n is reachable from `from` via successor
/// edges (from itself is reachable).
[[nodiscard]] std::vector<char> reachable_from(const Cfg& cfg, int from);

/// Shortest successor path from → to, inclusive; empty when unreachable.
[[nodiscard]] std::vector<int> shortest_path(const Cfg& cfg, int from,
                                             int to);

}  // namespace hicsync::analysis::lint
