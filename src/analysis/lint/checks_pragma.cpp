// Pragma hygiene: consumer lists that disagree with the event-driven static
// schedule (duplicate endpoints, inconsistent consumer orders).

#include <string>
#include <vector>

#include "analysis/lint/checks.h"
#include "support/strings.h"

namespace hicsync::analysis::lint {

namespace {

class PragmaConsumerOrderCheck final : public LintPass {
 public:
  const CheckInfo& info() const override {
    static const CheckInfo kInfo{
        "pragma-consumer-order", support::Severity::Warning, Stage::PostSema,
        "#consumer pragma lists that fight the event-driven static "
        "schedule: duplicate consumer endpoints or inconsistent consumer "
        "orders across dependencies"};
    return kInfo;
  }

  void run(const LintContext& ctx, const Sink& sink) const override {
    const std::vector<hic::Dependency>& deps = ctx.sema().dependencies();

    // Duplicate consumer endpoints: the same thread listed twice gets two
    // schedule slots and two countdown ticks for a single guarded read.
    for (const hic::Dependency& dep : deps) {
      std::vector<std::string> seen;
      for (const hic::DepConsumer& c : dep.consumers) {
        bool dup = false;
        for (const std::string& s : seen) {
          if (s == c.thread) dup = true;
        }
        if (dup) {
          sink(dep.loc,
               support::format(
                   "dependency '%s' lists consumer thread '%s' more than "
                   "once; the static schedule reserves one slot per "
                   "listing but the thread issues a single guarded read",
                   dep.id.c_str(), c.thread.c_str()));
        } else {
          seen.push_back(c.thread);
        }
      }
    }

    // Inconsistent consumer order across dependencies: the event-driven
    // organization serves consumers in pragma order, so two dependencies
    // that order a shared pair of consumers differently force one consumer
    // to wait through the other's slot on every exchange.
    for (std::size_t i = 0; i < deps.size(); ++i) {
      for (std::size_t j = i + 1; j < deps.size(); ++j) {
        const hic::Dependency& a = deps[i];
        const hic::Dependency& b = deps[j];
        bool reported = false;
        for (std::size_t x = 0; x < a.consumers.size() && !reported; ++x) {
          for (std::size_t y = x + 1; y < a.consumers.size() && !reported;
               ++y) {
            const std::string& first = a.consumers[x].thread;
            const std::string& second = a.consumers[y].thread;
            // Positions of the same pair in b, if both are listed there.
            int bf = -1, bs = -1;
            for (std::size_t k = 0; k < b.consumers.size(); ++k) {
              if (b.consumers[k].thread == first && bf < 0) {
                bf = static_cast<int>(k);
              }
              if (b.consumers[k].thread == second && bs < 0) {
                bs = static_cast<int>(k);
              }
            }
            if (bf < 0 || bs < 0 || bf < bs) continue;
            sink(b.loc,
                 support::format(
                     "dependencies '%s' and '%s' order shared consumers "
                     "inconsistently ('%s' before '%s' vs the reverse); "
                     "the event-driven schedule serves consumers in "
                     "pragma order, so one of them always waits through "
                     "the other's slot",
                     a.id.c_str(), b.id.c_str(), first.c_str(),
                     second.c_str()));
            reported = true;
          }
        }
      }
    }
  }
};

}  // namespace

std::unique_ptr<LintPass> make_pragma_consumer_order_check() {
  return std::make_unique<PragmaConsumerOrderCheck>();
}

}  // namespace hicsync::analysis::lint
