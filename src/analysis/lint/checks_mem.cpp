// Memory-centric checks: unreachable statements, produced-but-never-consumed
// shared data, dead memory-resident arrays, and port/capacity pressure on
// the planned BRAM controllers.

#include <set>
#include <string>

#include "analysis/lint/checks.h"
#include "support/strings.h"

namespace hicsync::analysis::lint {

namespace {

// ---------------------------------------------------------------------------
// unreachable-stmt
// ---------------------------------------------------------------------------

class UnreachableStmtCheck final : public LintPass {
 public:
  const CheckInfo& info() const override {
    static const CheckInfo kInfo{
        "unreachable-stmt", support::Severity::Warning, Stage::PostSema,
        "control flow can never reach the statement from the thread entry "
        "(dead code, typically after break/continue)"};
    return kInfo;
  }

  void run(const LintContext& ctx, const Sink& sink) const override {
    for (const Cfg& cfg : ctx.cfgs()) {
      std::vector<char> reachable = reachable_from(cfg, cfg.entry());
      std::set<const hic::Stmt*> reported;
      for (const CfgNode& n : cfg.nodes()) {
        if (reachable[static_cast<std::size_t>(n.id)]) continue;
        if (n.kind != CfgNodeKind::Statement &&
            n.kind != CfgNodeKind::Branch) {
          continue;
        }
        if (n.stmt == nullptr || !n.stmt->loc.valid()) continue;
        if (!reported.insert(n.stmt).second) continue;
        sink(n.stmt->loc,
             support::format(
                 "unreachable statement in thread '%s': control cannot "
                 "reach it from the thread entry",
                 cfg.thread_name().c_str()));
      }
    }
  }
};

// ---------------------------------------------------------------------------
// dead-shared-variable
// ---------------------------------------------------------------------------

class DeadSharedVariableCheck final : public LintPass {
 public:
  const CheckInfo& info() const override {
    static const CheckInfo kInfo{
        "dead-shared-variable", support::Severity::Warning, Stage::PostSema,
        "produced-but-never-consumed shared data or never-read memory-"
        "resident arrays wasting BRAM words"};
    return kInfo;
  }

  void run(const LintContext& ctx, const Sink& sink) const override {
    // (a) A bound consumer statement that never actually reads the produced
    // variable: the produced value is dead on arrival, and the consumer's
    // guarded read may never be issued at all.
    for (const hic::Dependency& dep : ctx.sema().dependencies()) {
      for (const hic::DepConsumer& c : dep.consumers) {
        const UseDefAnalysis* ud = ctx.usedef(c.thread);
        if (ud == nullptr) continue;
        bool reads = false;
        for (const Access& a : ud->accesses()) {
          if (a.stmt == c.stmt && a.symbol == dep.shared_var && !a.is_def) {
            reads = true;
            break;
          }
        }
        if (!reads) {
          sink(c.stmt != nullptr ? c.stmt->loc : c.loc,
               support::format(
                   "consumer '%s' of dependency '%s' never reads the "
                   "produced variable '%s'; the produced value is dead and "
                   "its %llu BRAM word(s) are wasted",
                   c.thread.c_str(), dep.id.c_str(),
                   dep.shared_var->qualified_name().c_str(),
                   static_cast<unsigned long long>(
                       dep.shared_var->element_count())));
        }
      }
    }

    // (b) Memory-resident arrays that are never read anywhere. A non-shared
    // array can only be read by its owner thread; zero uses means every
    // word the allocator reserves for it is wasted.
    for (const hic::ThreadDecl& thread : ctx.program().threads) {
      const UseDefAnalysis* ud = ctx.usedef(thread.name);
      const hic::SymbolTable* table = ctx.sema().thread_table(thread.name);
      if (ud == nullptr || table == nullptr) continue;
      for (hic::Symbol* sym : table->symbols()) {
        if (!sym->is_array() || sym->is_shared()) continue;
        bool used = false;
        for (const Access& a : ud->accesses()) {
          if (a.symbol == sym && !a.is_def) {
            used = true;
            break;
          }
        }
        if (!used) {
          sink(sym->loc(),
               support::format(
                   "array '%s' is never read; its %llu BRAM word(s) are "
                   "allocated for nothing",
                   sym->qualified_name().c_str(),
                   static_cast<unsigned long long>(sym->element_count())));
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// port-pressure
// ---------------------------------------------------------------------------

class PortPressureCheck final : public LintPass {
 public:
  const CheckInfo& info() const override {
    static const CheckInfo kInfo{
        "port-pressure", support::Severity::Warning, Stage::PreGenerate,
        "planned pseudo-port, schedule-slot, or BRAM capacity pressure "
        "that degrades or breaks the generated controller"};
    return kInfo;
  }

  void run(const LintContext& ctx, const Sink& sink) const override {
    const memalloc::MemoryMap* map = ctx.memory_map();
    const std::vector<memalloc::BramPortPlan>* plans = ctx.port_plans();
    if (map == nullptr || plans == nullptr) return;

    // The paper's experiments (Tables 1/2) sweep up to 8 consumer
    // pseudo-ports; past that the arbitration tree depth grows beyond the
    // evaluated design space.
    constexpr int kEvaluatedConsumerPorts = 8;
    // EventDrivenConfig::max_slots default: the selection logic's slot and
    // prev-slot registers are dimensioned for this many slots.
    constexpr int kEventDrivenSlotBudget = 16;

    for (const memalloc::BramInstance& bram : map->brams()) {
      const memalloc::BramPortPlan* plan = nullptr;
      for (const auto& p : *plans) {
        if (p.bram_id == bram.id) plan = &p;
      }
      if (plan == nullptr) continue;

      support::SourceLoc anchor;
      if (!bram.dependencies.empty()) {
        anchor = bram.dependencies.front()->loc;
      }

      int consumer_ports = plan->consumer_pseudo_ports();
      if (consumer_ports > kEvaluatedConsumerPorts) {
        sink(anchor,
             support::format(
                 "BRAM %d needs %d consumer pseudo-ports, beyond the "
                 "evaluated arbitration range of %d; expect the controller "
                 "to miss the target clock",
                 bram.id, consumer_ports, kEvaluatedConsumerPorts));
      }

      int slots = 0;
      for (const hic::Dependency* dep : bram.dependencies) {
        slots += 1 + static_cast<int>(dep->consumers.size());
      }
      if (slots > kEventDrivenSlotBudget) {
        sink(anchor,
             support::format(
                 "BRAM %d needs %d event-driven schedule slots, over the "
                 "selection logic's %d-slot budget; the slot counter "
                 "widens and worst-case consume latency grows linearly",
                 bram.id, slots, kEventDrivenSlotBudget));
      }

      // A dependency whose listed consumers outnumber the pseudo-ports that
      // serve it (duplicate consumer threads) makes the countdown counter
      // wait for more reads than ports can issue.
      for (const hic::Dependency* dep : bram.dependencies) {
        int serving = 0;
        for (const auto& client : plan->clients) {
          if (client.port != memalloc::LogicalPort::C) continue;
          for (const hic::Dependency* d : client.deps) {
            if (d == dep) ++serving;
          }
        }
        if (dep->dependency_number() > serving) {
          sink(dep->loc,
               support::format(
                   "dependency '%s' has dependency number %d but only %d "
                   "consumer pseudo-port(s) serve it on BRAM %d; its "
                   "countdown counter can never reach zero and producers "
                   "stall",
                   dep->id.c_str(), dep->dependency_number(), serving,
                   bram.id));
        }
      }

      std::uint32_t capacity =
          static_cast<std::uint32_t>(bram.shape.depth) *
          static_cast<std::uint32_t>(bram.primitives);
      if (bram.words_used() > capacity) {
        sink(anchor,
             support::format(
                 "BRAM %d packs %u words into a %u-word shape (%dx%d x %d "
                 "primitive(s)); the allocation overflows the block",
                 bram.id, bram.words_used(), capacity, bram.shape.depth,
                 bram.shape.width, bram.primitives));
      }
    }
  }
};

}  // namespace

std::unique_ptr<LintPass> make_unreachable_stmt_check() {
  return std::make_unique<UnreachableStmtCheck>();
}
std::unique_ptr<LintPass> make_dead_shared_variable_check() {
  return std::make_unique<DeadSharedVariableCheck>();
}
std::unique_ptr<LintPass> make_port_pressure_check() {
  return std::make_unique<PortPressureCheck>();
}

}  // namespace hicsync::analysis::lint
