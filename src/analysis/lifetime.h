// Variable liveness / lifetime analysis.
//
// Feeds the memory-size analysis of §3: "the user makes memory allocation
// decisions based on the memory size analysis and a partial order of
// operations". Liveness gives, per CFG point, which variables hold values
// that may still be read — the peak simultaneous footprint bounds the BRAM
// budget a thread really needs.
#pragma once

#include <map>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/usedef.h"
#include "hic/symbol.h"

namespace hicsync::analysis {

class LivenessAnalysis {
 public:
  LivenessAnalysis(const Cfg& cfg, const UseDefAnalysis& ud);

  /// Symbols live on entry to / exit from a node.
  [[nodiscard]] std::vector<hic::Symbol*> live_in(int node) const;
  [[nodiscard]] std::vector<hic::Symbol*> live_out(int node) const;

  [[nodiscard]] bool is_live_in(int node, const hic::Symbol* sym) const;
  [[nodiscard]] bool is_live_out(int node, const hic::Symbol* sym) const;

  /// Peak number of bits simultaneously live at any point in the thread.
  /// Shared (inter-thread) variables are always counted as live: their value
  /// must persist until remote consumers read it.
  [[nodiscard]] std::uint64_t peak_live_bits() const;

  /// Symbols never live anywhere (dead variables — declared but the value
  /// is never read).
  [[nodiscard]] std::vector<hic::Symbol*> dead_symbols() const;

 private:
  void run();
  [[nodiscard]] int bit_of(const hic::Symbol* sym) const;

  const Cfg& cfg_;
  const UseDefAnalysis& ud_;
  std::vector<hic::Symbol*> symbols_;       // bit position -> symbol
  std::map<const hic::Symbol*, int> bits_;  // symbol -> bit position
  std::vector<std::vector<char>> live_in_;
  std::vector<std::vector<char>> live_out_;
};

}  // namespace hicsync::analysis
