#include "analysis/cfg.h"

#include <algorithm>

namespace hicsync::analysis {

int Cfg::add_node(CfgNodeKind kind, const hic::Stmt* stmt,
                  const hic::Expr* cond) {
  CfgNode n;
  n.id = static_cast<int>(nodes_.size());
  n.kind = kind;
  n.stmt = stmt;
  n.cond = cond;
  nodes_.push_back(std::move(n));
  return nodes_.back().id;
}

void Cfg::add_edge(int from, int to) {
  auto& succs = nodes_[static_cast<std::size_t>(from)].succs;
  if (std::find(succs.begin(), succs.end(), to) != succs.end()) return;
  succs.push_back(to);
  nodes_[static_cast<std::size_t>(to)].preds.push_back(from);
}

void Cfg::connect(const std::vector<int>& sources, int target) {
  for (int s : sources) add_edge(s, target);
}

Cfg Cfg::build(const hic::ThreadDecl& thread) {
  Cfg cfg;
  cfg.thread_ = thread.name;
  cfg.entry_ = cfg.add_node(CfgNodeKind::Entry, nullptr, nullptr);
  std::vector<LoopCtx*> loops;
  std::vector<int> exits =
      cfg.lower_list(thread.body, {cfg.entry_}, loops);
  cfg.exit_ = cfg.add_node(CfgNodeKind::Exit, nullptr, nullptr);
  cfg.connect(exits, cfg.exit_);
  return cfg;
}

std::vector<int> Cfg::lower_list(const std::vector<hic::StmtPtr>& list,
                                 std::vector<int> incoming,
                                 std::vector<LoopCtx*>& loops) {
  for (const auto& s : list) {
    // Dead code after break/continue: incoming empty means unreachable; we
    // still lower it so analyses see the nodes, but leave it unconnected.
    incoming = lower_stmt(*s, std::move(incoming), loops);
  }
  return incoming;
}

std::vector<int> Cfg::lower_stmt(const hic::Stmt& stmt,
                                 std::vector<int> incoming,
                                 std::vector<LoopCtx*>& loops) {
  switch (stmt.kind) {
    case hic::StmtKind::Assign: {
      int n = add_node(CfgNodeKind::Statement, &stmt, nullptr);
      connect(incoming, n);
      return {n};
    }
    case hic::StmtKind::If: {
      int branch = add_node(CfgNodeKind::Branch, &stmt, stmt.cond.get());
      connect(incoming, branch);
      std::vector<int> then_exits =
          lower_list(stmt.then_body, {branch}, loops);
      std::vector<int> exits = std::move(then_exits);
      if (stmt.else_body.empty()) {
        exits.push_back(branch);  // fallthrough when condition is false
      } else {
        std::vector<int> else_exits =
            lower_list(stmt.else_body, {branch}, loops);
        exits.insert(exits.end(), else_exits.begin(), else_exits.end());
      }
      return exits;
    }
    case hic::StmtKind::Case: {
      int branch = add_node(CfgNodeKind::Branch, &stmt, stmt.cond.get());
      connect(incoming, branch);
      std::vector<int> exits;
      bool has_default = false;
      for (const auto& arm : stmt.arms) {
        if (arm.is_default) has_default = true;
        std::vector<int> arm_exits = lower_list(arm.body, {branch}, loops);
        exits.insert(exits.end(), arm_exits.begin(), arm_exits.end());
      }
      if (!has_default) exits.push_back(branch);  // unmatched value falls out
      return exits;
    }
    case hic::StmtKind::While: {
      int branch = add_node(CfgNodeKind::Branch, &stmt, stmt.cond.get());
      connect(incoming, branch);
      std::vector<int> breaks;
      LoopCtx ctx{&breaks, branch, nullptr};
      loops.push_back(&ctx);
      std::vector<int> body_exits = lower_list(stmt.body, {branch}, loops);
      loops.pop_back();
      connect(body_exits, branch);  // back edge
      std::vector<int> exits = std::move(breaks);
      exits.push_back(branch);  // condition-false exit
      return exits;
    }
    case hic::StmtKind::For: {
      // init -> cond -> body -> step -> cond
      std::vector<int> after_init =
          lower_stmt(*stmt.init, std::move(incoming), loops);
      int branch = add_node(CfgNodeKind::Branch, &stmt, stmt.cond.get());
      connect(after_init, branch);
      int step = add_node(CfgNodeKind::Statement, stmt.step.get(), nullptr);
      std::vector<int> breaks;
      LoopCtx ctx{&breaks, step, nullptr};
      loops.push_back(&ctx);
      std::vector<int> body_exits = lower_list(stmt.body, {branch}, loops);
      loops.pop_back();
      connect(body_exits, step);
      add_edge(step, branch);
      std::vector<int> exits = std::move(breaks);
      exits.push_back(branch);
      return exits;
    }
    case hic::StmtKind::Break: {
      if (!loops.empty()) {
        for (int s : incoming) loops.back()->break_sources->push_back(s);
      }
      return {};  // nothing falls through a break
    }
    case hic::StmtKind::Continue: {
      if (!loops.empty()) {
        connect(incoming, loops.back()->continue_target);
      }
      return {};
    }
    case hic::StmtKind::Block:
      return lower_list(stmt.body, std::move(incoming), loops);
  }
  return incoming;
}

std::vector<int> Cfg::reverse_post_order() const {
  std::vector<int> order;
  std::vector<char> visited(nodes_.size(), 0);
  // Iterative post-order DFS.
  std::vector<std::pair<int, std::size_t>> stack;
  stack.emplace_back(entry_, 0);
  visited[static_cast<std::size_t>(entry_)] = 1;
  while (!stack.empty()) {
    auto& [node, next] = stack.back();
    const auto& succs = nodes_[static_cast<std::size_t>(node)].succs;
    if (next < succs.size()) {
      int s = succs[next++];
      if (!visited[static_cast<std::size_t>(s)]) {
        visited[static_cast<std::size_t>(s)] = 1;
        stack.emplace_back(s, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

bool Cfg::all_reachable() const {
  return reverse_post_order().size() == nodes_.size();
}

std::string Cfg::str() const {
  std::string out;
  for (const auto& n : nodes_) {
    out += std::to_string(n.id);
    switch (n.kind) {
      case CfgNodeKind::Entry: out += " entry"; break;
      case CfgNodeKind::Exit: out += " exit"; break;
      case CfgNodeKind::Statement: out += " stmt"; break;
      case CfgNodeKind::Branch: out += " branch"; break;
    }
    out += " ->";
    for (int s : n.succs) out += " " + std::to_string(s);
    out += '\n';
  }
  return out;
}

}  // namespace hicsync::analysis
