#include "analysis/lifetime.h"

#include <algorithm>

namespace hicsync::analysis {

LivenessAnalysis::LivenessAnalysis(const Cfg& cfg, const UseDefAnalysis& ud)
    : cfg_(cfg), ud_(ud) {
  for (const Access& a : ud_.accesses()) {
    if (bits_.count(a.symbol) == 0) {
      bits_[a.symbol] = static_cast<int>(symbols_.size());
      symbols_.push_back(a.symbol);
    }
  }
  run();
}

int LivenessAnalysis::bit_of(const hic::Symbol* sym) const {
  auto it = bits_.find(sym);
  return it == bits_.end() ? -1 : it->second;
}

void LivenessAnalysis::run() {
  const std::size_t num_nodes = cfg_.nodes().size();
  const std::size_t num_syms = symbols_.size();
  std::vector<std::vector<char>> use(num_nodes,
                                     std::vector<char>(num_syms, 0));
  std::vector<std::vector<char>> def = use;
  for (const Access& a : ud_.accesses()) {
    auto n = static_cast<std::size_t>(a.cfg_node);
    auto b = static_cast<std::size_t>(bits_[a.symbol]);
    if (a.is_def) {
      // Array defs do not fully define the variable (other elements keep
      // their values), so they do not block liveness.
      if (!a.symbol->is_array() && !use[n][b]) def[n][b] = 1;
    } else {
      // Uses are collected before the def within an Assign node, so a use
      // here means upward-exposed.
      use[n][b] = 1;
    }
  }

  live_in_.assign(num_nodes, std::vector<char>(num_syms, 0));
  live_out_.assign(num_nodes, std::vector<char>(num_syms, 0));

  // Backward dataflow to a fixed point. Iterate in post-order (reverse of
  // RPO) for fast convergence.
  std::vector<int> order = cfg_.reverse_post_order();
  std::reverse(order.begin(), order.end());
  bool changed = true;
  while (changed) {
    changed = false;
    for (int id : order) {
      auto n = static_cast<std::size_t>(id);
      auto& out = live_out_[n];
      for (int s : cfg_.node(id).succs) {
        const auto& sin = live_in_[static_cast<std::size_t>(s)];
        for (std::size_t b = 0; b < num_syms; ++b) {
          if (sin[b] && !out[b]) out[b] = 1;
        }
      }
      for (std::size_t b = 0; b < num_syms; ++b) {
        char in_b = use[n][b] || (out[b] && !def[n][b]);
        if (in_b != live_in_[n][b]) {
          live_in_[n][b] = in_b;
          changed = true;
        }
      }
    }
  }
}

std::vector<hic::Symbol*> LivenessAnalysis::live_in(int node) const {
  std::vector<hic::Symbol*> out;
  const auto& bits = live_in_[static_cast<std::size_t>(node)];
  for (std::size_t b = 0; b < bits.size(); ++b) {
    if (bits[b]) out.push_back(symbols_[b]);
  }
  return out;
}

std::vector<hic::Symbol*> LivenessAnalysis::live_out(int node) const {
  std::vector<hic::Symbol*> out;
  const auto& bits = live_out_[static_cast<std::size_t>(node)];
  for (std::size_t b = 0; b < bits.size(); ++b) {
    if (bits[b]) out.push_back(symbols_[b]);
  }
  return out;
}

bool LivenessAnalysis::is_live_in(int node, const hic::Symbol* sym) const {
  int b = bit_of(sym);
  return b >= 0 && live_in_[static_cast<std::size_t>(node)]
                           [static_cast<std::size_t>(b)] != 0;
}

bool LivenessAnalysis::is_live_out(int node, const hic::Symbol* sym) const {
  int b = bit_of(sym);
  return b >= 0 && live_out_[static_cast<std::size_t>(node)]
                            [static_cast<std::size_t>(b)] != 0;
}

std::uint64_t LivenessAnalysis::peak_live_bits() const {
  std::uint64_t shared_bits = 0;
  for (const hic::Symbol* s : symbols_) {
    if (s->is_shared()) shared_bits += s->storage_bits();
  }
  std::uint64_t peak = 0;
  for (std::size_t n = 0; n < live_in_.size(); ++n) {
    std::uint64_t here = shared_bits;
    for (std::size_t b = 0; b < symbols_.size(); ++b) {
      if (live_in_[n][b] && !symbols_[b]->is_shared()) {
        here += symbols_[b]->storage_bits();
      }
    }
    peak = std::max(peak, here);
  }
  return peak;
}

std::vector<hic::Symbol*> LivenessAnalysis::dead_symbols() const {
  std::vector<hic::Symbol*> out;
  for (std::size_t b = 0; b < symbols_.size(); ++b) {
    bool live_anywhere = false;
    for (std::size_t n = 0; n < live_in_.size() && !live_anywhere; ++n) {
      live_anywhere = live_in_[n][b] || live_out_[n][b];
    }
    if (!live_anywhere && !symbols_[b]->is_shared()) {
      out.push_back(symbols_[b]);
    }
  }
  return out;
}

}  // namespace hicsync::analysis
