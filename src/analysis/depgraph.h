// Inter-thread dependence graph and static deadlock detection.
//
// §1 of the paper: "deadlocks are identified statically since the user
// explicitly specifies producer(s) and consumer(s)". With blocking consumer
// reads, a cycle in the thread-level wait-for graph (t_a consumes from t_b,
// t_b consumes from t_a, ...) can deadlock when each producer's write is
// ordered after its own blocking read.
#pragma once

#include <string>
#include <vector>

#include "hic/sema.h"

namespace hicsync::analysis {

/// Thread-level dependence graph: edge producer → consumer for every
/// dependency endpoint.
class ThreadDepGraph {
 public:
  struct Edge {
    int from = -1;  // producer thread index
    int to = -1;    // consumer thread index
    const hic::Dependency* dep = nullptr;
  };

  static ThreadDepGraph build(const hic::Program& program,
                              const std::vector<hic::Dependency>& deps);

  [[nodiscard]] const std::vector<std::string>& threads() const {
    return threads_;
  }
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }
  [[nodiscard]] int thread_index(const std::string& name) const;

  /// Strongly connected components with more than one node (or a self
  /// loop): these are the potential deadlock cycles. Each component lists
  /// thread indices.
  [[nodiscard]] std::vector<std::vector<int>> deadlock_cycles() const;
  [[nodiscard]] bool has_deadlock_risk() const {
    return !deadlock_cycles().empty();
  }

  /// Threads in a producer-before-consumer topological order; empty when the
  /// graph is cyclic.
  [[nodiscard]] std::vector<int> topological_order() const;

  /// Human-readable description of each potential deadlock cycle.
  [[nodiscard]] std::vector<std::string> deadlock_reports() const;

 private:
  std::vector<std::string> threads_;
  std::vector<Edge> edges_;
  std::vector<std::vector<int>> adjacency_;
};

}  // namespace hicsync::analysis
