#include "analysis/depgraph.h"

#include <algorithm>

namespace hicsync::analysis {

ThreadDepGraph ThreadDepGraph::build(
    const hic::Program& program, const std::vector<hic::Dependency>& deps) {
  ThreadDepGraph g;
  for (const auto& t : program.threads) g.threads_.push_back(t.name);
  g.adjacency_.assign(g.threads_.size(), {});
  for (const auto& dep : deps) {
    int from = g.thread_index(dep.producer_thread);
    if (from < 0) continue;
    for (const auto& c : dep.consumers) {
      int to = g.thread_index(c.thread);
      if (to < 0) continue;
      g.edges_.push_back(Edge{from, to, &dep});
      g.adjacency_[static_cast<std::size_t>(from)].push_back(to);
    }
  }
  return g;
}

int ThreadDepGraph::thread_index(const std::string& name) const {
  for (std::size_t i = 0; i < threads_.size(); ++i) {
    if (threads_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<std::vector<int>> ThreadDepGraph::deadlock_cycles() const {
  // Tarjan's SCC, iterative.
  const int n = static_cast<int>(threads_.size());
  std::vector<int> index(static_cast<std::size_t>(n), -1);
  std::vector<int> low(static_cast<std::size_t>(n), 0);
  std::vector<char> on_stack(static_cast<std::size_t>(n), 0);
  std::vector<int> stack;
  std::vector<std::vector<int>> sccs;
  int next_index = 0;

  struct Frame {
    int node;
    std::size_t child;
  };
  for (int start = 0; start < n; ++start) {
    if (index[static_cast<std::size_t>(start)] != -1) continue;
    std::vector<Frame> frames{{start, 0}};
    index[static_cast<std::size_t>(start)] = low[static_cast<std::size_t>(start)] = next_index++;
    stack.push_back(start);
    on_stack[static_cast<std::size_t>(start)] = 1;
    while (!frames.empty()) {
      Frame& f = frames.back();
      auto u = static_cast<std::size_t>(f.node);
      if (f.child < adjacency_[u].size()) {
        int v = adjacency_[u][f.child++];
        auto vi = static_cast<std::size_t>(v);
        if (index[vi] == -1) {
          index[vi] = low[vi] = next_index++;
          stack.push_back(v);
          on_stack[vi] = 1;
          frames.push_back({v, 0});
        } else if (on_stack[vi]) {
          low[u] = std::min(low[u], index[vi]);
        }
      } else {
        if (low[u] == index[u]) {
          std::vector<int> scc;
          while (true) {
            int w = stack.back();
            stack.pop_back();
            on_stack[static_cast<std::size_t>(w)] = 0;
            scc.push_back(w);
            if (w == f.node) break;
          }
          // Keep only real cycles: multi-node SCCs or explicit self loops.
          bool self_loop = false;
          if (scc.size() == 1) {
            const auto& adj = adjacency_[static_cast<std::size_t>(scc[0])];
            self_loop =
                std::find(adj.begin(), adj.end(), scc[0]) != adj.end();
          }
          if (scc.size() > 1 || self_loop) {
            std::sort(scc.begin(), scc.end());
            sccs.push_back(std::move(scc));
          }
        }
        int finished = f.node;
        frames.pop_back();
        if (!frames.empty()) {
          auto p = static_cast<std::size_t>(frames.back().node);
          low[p] = std::min(low[p], low[static_cast<std::size_t>(finished)]);
        }
      }
    }
  }
  return sccs;
}

std::vector<int> ThreadDepGraph::topological_order() const {
  const int n = static_cast<int>(threads_.size());
  std::vector<int> indegree(static_cast<std::size_t>(n), 0);
  for (const auto& adj : adjacency_) {
    for (int v : adj) ++indegree[static_cast<std::size_t>(v)];
  }
  std::vector<int> ready;
  for (int i = 0; i < n; ++i) {
    if (indegree[static_cast<std::size_t>(i)] == 0) ready.push_back(i);
  }
  std::vector<int> order;
  while (!ready.empty()) {
    int u = ready.front();
    ready.erase(ready.begin());
    order.push_back(u);
    for (int v : adjacency_[static_cast<std::size_t>(u)]) {
      if (--indegree[static_cast<std::size_t>(v)] == 0) ready.push_back(v);
    }
  }
  if (order.size() != static_cast<std::size_t>(n)) return {};
  return order;
}

std::vector<std::string> ThreadDepGraph::deadlock_reports() const {
  std::vector<std::string> out;
  for (const auto& cycle : deadlock_cycles()) {
    std::string msg = "potential deadlock: threads {";
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      if (i != 0) msg += ", ";
      msg += threads_[static_cast<std::size_t>(cycle[i])];
    }
    msg += "} form a producer/consumer cycle";
    // Name the dependencies inside the cycle.
    msg += " via";
    bool first = true;
    for (const Edge& e : edges_) {
      bool from_in = std::find(cycle.begin(), cycle.end(), e.from) != cycle.end();
      bool to_in = std::find(cycle.begin(), cycle.end(), e.to) != cycle.end();
      if (from_in && to_in) {
        msg += first ? " " : ", ";
        msg += e.dep->id;
        first = false;
      }
    }
    out.push_back(std::move(msg));
  }
  return out;
}

}  // namespace hicsync::analysis
