#include "analysis/usedef.h"

#include <algorithm>

namespace hicsync::analysis {

UseDefAnalysis::UseDefAnalysis(const Cfg& cfg) : cfg_(cfg) {
  collect_accesses();
  run_reaching_definitions();
}

void UseDefAnalysis::collect_expr(int node, const hic::Stmt* stmt,
                                  const hic::Expr& e, bool is_def_root) {
  switch (e.kind) {
    case hic::ExprKind::VarRef: {
      if (e.symbol == nullptr) return;  // unresolved (error program)
      Access a;
      a.index = static_cast<int>(accesses_.size());
      a.cfg_node = node;
      a.stmt = stmt;
      a.expr = &e;
      a.symbol = e.symbol;
      a.is_def = is_def_root;
      accesses_.push_back(a);
      return;
    }
    case hic::ExprKind::Index: {
      // The base is a def if this index expression is the assignment target;
      // the subscript is always a use.
      collect_expr(node, stmt, *e.operands[0], is_def_root);
      collect_expr(node, stmt, *e.operands[1], false);
      return;
    }
    case hic::ExprKind::Member:
      collect_expr(node, stmt, *e.operands[0], is_def_root);
      return;
    case hic::ExprKind::IntLit:
    case hic::ExprKind::CharLit:
      return;
    case hic::ExprKind::Unary:
    case hic::ExprKind::Binary:
    case hic::ExprKind::Call:
      for (const auto& op : e.operands) {
        collect_expr(node, stmt, *op, false);
      }
      return;
  }
}

void UseDefAnalysis::collect_accesses() {
  for (const CfgNode& n : cfg_.nodes()) {
    if (n.kind == CfgNodeKind::Statement && n.stmt != nullptr &&
        n.stmt->kind == hic::StmtKind::Assign) {
      // RHS uses first (matches evaluation order), then the LHS def.
      collect_expr(n.id, n.stmt, *n.stmt->value, false);
      collect_expr(n.id, n.stmt, *n.stmt->target, true);
    } else if (n.kind == CfgNodeKind::Branch && n.cond != nullptr) {
      collect_expr(n.id, n.stmt, *n.cond, false);
    }
  }
  def_ids_.assign(accesses_.size(), -1);
  int next_def = 0;
  for (const Access& a : accesses_) {
    if (a.is_def) def_ids_[static_cast<std::size_t>(a.index)] = next_def++;
  }
}

void UseDefAnalysis::run_reaching_definitions() {
  const std::size_t num_nodes = cfg_.nodes().size();
  int num_defs = 0;
  for (int id : def_ids_) num_defs = std::max(num_defs, id + 1);

  // gen/kill per node.
  std::vector<std::vector<char>> gen(num_nodes,
                                     std::vector<char>(static_cast<std::size_t>(num_defs), 0));
  std::vector<std::vector<char>> kill = gen;
  for (const Access& a : accesses_) {
    if (!a.is_def) continue;
    int bit = def_ids_[static_cast<std::size_t>(a.index)];
    auto& g = gen[static_cast<std::size_t>(a.cfg_node)];
    g[static_cast<std::size_t>(bit)] = 1;
    // A def kills all other defs of the same symbol. (Array writes are
    // conservative: an arr[i] write does not kill other arr defs.)
    if (a.symbol->is_array()) continue;
    for (const Access& other : accesses_) {
      if (!other.is_def || other.symbol != a.symbol ||
          other.index == a.index) {
        continue;
      }
      kill[static_cast<std::size_t>(a.cfg_node)]
          [static_cast<std::size_t>(def_ids_[static_cast<std::size_t>(other.index)])] = 1;
    }
  }

  reach_in_.assign(num_nodes,
                   std::vector<char>(static_cast<std::size_t>(num_defs), 0));
  std::vector<std::vector<char>> reach_out = reach_in_;

  std::vector<int> order = cfg_.reverse_post_order();
  bool changed = true;
  while (changed) {
    changed = false;
    for (int id : order) {
      auto node_idx = static_cast<std::size_t>(id);
      const CfgNode& n = cfg_.node(id);
      auto& in = reach_in_[node_idx];
      for (int p : n.preds) {
        const auto& pout = reach_out[static_cast<std::size_t>(p)];
        for (std::size_t b = 0; b < in.size(); ++b) {
          if (pout[b] && !in[b]) in[b] = 1;
        }
      }
      for (std::size_t b = 0; b < in.size(); ++b) {
        char out_b = (in[b] && !kill[node_idx][b]) || gen[node_idx][b];
        if (out_b != reach_out[node_idx][b]) {
          reach_out[node_idx][b] = out_b;
          changed = true;
        }
      }
    }
  }
}

std::vector<const Access*> UseDefAnalysis::defs() const {
  std::vector<const Access*> out;
  for (const Access& a : accesses_) {
    if (a.is_def) out.push_back(&a);
  }
  return out;
}

std::vector<const Access*> UseDefAnalysis::uses() const {
  std::vector<const Access*> out;
  for (const Access& a : accesses_) {
    if (!a.is_def) out.push_back(&a);
  }
  return out;
}

std::vector<const Access*> UseDefAnalysis::reaching_defs(
    const Access& use) const {
  std::vector<const Access*> out;
  const auto& in = reach_in_[static_cast<std::size_t>(use.cfg_node)];
  bool killed_locally = false;
  // A def of the same symbol *earlier in the same node* supersedes defs
  // flowing in from predecessors (e.g. `x = ...; ` uses before the def in
  // one node cannot happen for Assign nodes — the RHS is collected first —
  // but two accesses in one node still follow access order).
  for (const Access& a : accesses_) {
    if (a.cfg_node != use.cfg_node || a.index >= use.index || !a.is_def ||
        a.symbol != use.symbol) {
      continue;
    }
    out.push_back(&a);
    if (!a.symbol->is_array()) killed_locally = true;
  }
  if (!killed_locally) {
    for (const Access& a : accesses_) {
      if (!a.is_def || a.symbol != use.symbol) continue;
      int bit = def_ids_[static_cast<std::size_t>(a.index)];
      if (in[static_cast<std::size_t>(bit)]) out.push_back(&a);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Access* x, const Access* y) { return x->index < y->index; });
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<const Access*> UseDefAnalysis::reached_uses(
    const Access& def) const {
  std::vector<const Access*> out;
  for (const Access& a : accesses_) {
    if (a.is_def || a.symbol != def.symbol) continue;
    auto rd = reaching_defs(a);
    if (std::find(rd.begin(), rd.end(), &def) != rd.end()) {
      out.push_back(&a);
    }
  }
  return out;
}

std::vector<const Access*> UseDefAnalysis::undefined_uses() const {
  std::vector<const Access*> out;
  for (const Access& a : accesses_) {
    if (a.is_def) continue;
    if (reaching_defs(a).empty()) out.push_back(&a);
  }
  return out;
}

std::vector<InterThreadAccess> extract_interthread_reads(
    const Cfg& cfg, const UseDefAnalysis& ud) {
  std::vector<InterThreadAccess> out;
  for (const Access& a : ud.accesses()) {
    if (a.is_def || a.symbol == nullptr) continue;
    if (a.symbol->thread() != cfg.thread_name()) {
      out.push_back(InterThreadAccess{&a, a.symbol});
    }
  }
  return out;
}

}  // namespace hicsync::analysis
