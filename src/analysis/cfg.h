// Per-thread control-flow graph over primitive statements.
//
// The front-end produces structured ASTs; analyses (reaching definitions,
// liveness) and the behavioural synthesizer need a flat graph. Nodes are
// either primitive statements (assignments), branch decisions (the condition
// of if/case/for/while), or synthetic entry/exit markers.
#pragma once

#include <string>
#include <vector>

#include "hic/ast.h"

namespace hicsync::analysis {

enum class CfgNodeKind {
  Entry,
  Exit,
  Statement,  // an Assign
  Branch,     // evaluates a condition / case scrutinee
};

struct CfgNode {
  int id = -1;
  CfgNodeKind kind = CfgNodeKind::Statement;
  const hic::Stmt* stmt = nullptr;  // Assign for Statement; the structured
                                    // stmt (If/Case/For/While) for Branch
  const hic::Expr* cond = nullptr;  // Branch only
  std::vector<int> succs;
  std::vector<int> preds;
};

/// Flat CFG for one thread. Per the paper's execution model each thread runs
/// to completion processing one message and then restarts, so Exit is *not*
/// connected back to Entry here; analyses that care about the steady state
/// can treat Exit→Entry as an implicit edge via `loops_forever()`.
class Cfg {
 public:
  /// Builds the CFG of `thread`'s body.
  static Cfg build(const hic::ThreadDecl& thread);

  [[nodiscard]] const std::vector<CfgNode>& nodes() const { return nodes_; }
  [[nodiscard]] const CfgNode& node(int id) const { return nodes_[static_cast<std::size_t>(id)]; }
  [[nodiscard]] int entry() const { return entry_; }
  [[nodiscard]] int exit() const { return exit_; }
  [[nodiscard]] const std::string& thread_name() const { return thread_; }

  /// Nodes in reverse post-order from entry (good iteration order for
  /// forward dataflow).
  [[nodiscard]] std::vector<int> reverse_post_order() const;

  /// True if every node is reachable from entry.
  [[nodiscard]] bool all_reachable() const;

  /// Debug rendering: one line per node.
  [[nodiscard]] std::string str() const;

 private:
  int add_node(CfgNodeKind kind, const hic::Stmt* stmt,
               const hic::Expr* cond);
  void add_edge(int from, int to);

  /// Lowers a statement list. `entry_from` is the set of dangling edges to
  /// connect to the first node; returns the dangling exits of the list.
  struct LoopCtx {
    std::vector<int>* break_sources;
    int continue_target;
    std::vector<int>* continue_pending;  // when target not yet known
  };
  std::vector<int> lower_list(const std::vector<hic::StmtPtr>& list,
                              std::vector<int> incoming,
                              std::vector<LoopCtx*>& loops);
  std::vector<int> lower_stmt(const hic::Stmt& stmt, std::vector<int> incoming,
                              std::vector<LoopCtx*>& loops);
  void connect(const std::vector<int>& sources, int target);

  std::string thread_;
  std::vector<CfgNode> nodes_;
  int entry_ = -1;
  int exit_ = -1;
};

}  // namespace hicsync::analysis
