// Use-def analysis over a thread CFG.
//
// The paper (§2) notes that producers/consumers could be extracted with
// "standard compiler use-def analysis [7] and other lifetime analysis
// methods [9]" instead of pragmas. This module implements reaching
// definitions and def-use/use-def chains; `extract_interthread_accesses`
// recovers the producer/consumer relationships from resolved symbols so the
// pragma-declared dependencies can be cross-checked.
#pragma once

#include <vector>

#include "analysis/cfg.h"
#include "hic/symbol.h"

namespace hicsync::analysis {

/// One variable access inside a CFG node.
struct Access {
  int index = -1;       // position in the analysis' access list
  int cfg_node = -1;
  const hic::Stmt* stmt = nullptr;
  const hic::Expr* expr = nullptr;  // the VarRef / Index / Member expression
  hic::Symbol* symbol = nullptr;
  bool is_def = false;
};

class UseDefAnalysis {
 public:
  explicit UseDefAnalysis(const Cfg& cfg);

  [[nodiscard]] const std::vector<Access>& accesses() const {
    return accesses_;
  }
  [[nodiscard]] std::vector<const Access*> defs() const;
  [[nodiscard]] std::vector<const Access*> uses() const;

  /// Definitions of `use.symbol` that may reach `use` (use-def chain).
  [[nodiscard]] std::vector<const Access*> reaching_defs(
      const Access& use) const;

  /// Uses that a definition may reach (def-use chain).
  [[nodiscard]] std::vector<const Access*> reached_uses(
      const Access& def) const;

  /// Uses with no reaching definition in this thread — either genuinely
  /// uninitialized or produced by another thread (cross-thread reads have a
  /// symbol owned by a different thread).
  [[nodiscard]] std::vector<const Access*> undefined_uses() const;

 private:
  void collect_accesses();
  void collect_expr(int node, const hic::Stmt* stmt, const hic::Expr& e,
                    bool is_def_root);
  void run_reaching_definitions();

  const Cfg& cfg_;
  std::vector<Access> accesses_;
  // reach_in_[node] is a bitset over def indices (positions of defs in the
  // per-symbol def lists flattened into accesses_).
  std::vector<std::vector<char>> reach_in_;
  std::vector<int> def_ids_;  // access index -> def bit position, -1 if use
};

/// Cross-thread accesses found by symbol resolution: any read of a symbol
/// owned by another thread is a consume; the owner's writes are produces.
struct InterThreadAccess {
  const Access* access;
  hic::Symbol* symbol;
};
[[nodiscard]] std::vector<InterThreadAccess> extract_interthread_reads(
    const Cfg& cfg, const UseDefAnalysis& ud);

}  // namespace hicsync::analysis
