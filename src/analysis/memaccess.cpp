#include "analysis/memaccess.h"

#include <algorithm>

namespace hicsync::analysis {

MemAccessGraph MemAccessGraph::build(const hic::Program& program,
                                     const hic::Sema& sema,
                                     const std::vector<Cfg>& cfgs) {
  MemAccessGraph g;

  // Collect ops thread by thread, in a deterministic program-order walk of
  // each CFG (RPO approximates program order for structured code).
  std::map<const hic::Stmt*, std::vector<int>> write_ops_by_stmt;
  std::map<const hic::Stmt*, std::vector<int>> read_ops_by_stmt;

  for (const Cfg& cfg : cfgs) {
    int seq = 0;
    int prev_op = -1;
    for (int node_id : cfg.reverse_post_order()) {
      const CfgNode& node = cfg.node(node_id);
      UseDefAnalysis* unused = nullptr;
      (void)unused;
      // Gather accesses of this node directly (cheaper than a full
      // UseDefAnalysis here; direction comes from position in the Assign).
      std::vector<std::pair<hic::Symbol*, bool>> accesses;
      auto walk = [&](auto&& self, const hic::Expr& e, bool is_def) -> void {
        switch (e.kind) {
          case hic::ExprKind::VarRef:
            if (e.symbol != nullptr) accesses.emplace_back(e.symbol, is_def);
            return;
          case hic::ExprKind::Index:
            self(self, *e.operands[0], is_def);
            self(self, *e.operands[1], false);
            return;
          case hic::ExprKind::Member:
            self(self, *e.operands[0], is_def);
            return;
          case hic::ExprKind::IntLit:
          case hic::ExprKind::CharLit:
            return;
          default:
            for (const auto& op : e.operands) self(self, *op, false);
            return;
        }
      };
      if (node.kind == CfgNodeKind::Statement && node.stmt != nullptr &&
          node.stmt->kind == hic::StmtKind::Assign) {
        walk(walk, *node.stmt->value, false);
        walk(walk, *node.stmt->target, true);
      } else if (node.kind == CfgNodeKind::Branch && node.cond != nullptr) {
        walk(walk, *node.cond, false);
      } else {
        continue;
      }

      for (const auto& [sym, is_def] : accesses) {
        MemOp op;
        op.id = static_cast<int>(g.ops_.size());
        op.thread = cfg.thread_name();
        op.symbol = sym;
        op.is_write = is_def;
        op.seq = seq++;
        op.stmt = node.stmt;
        g.ops_.push_back(op);
        g.by_symbol_[sym].push_back(op.id);
        if (prev_op >= 0) g.order_edges_.emplace_back(prev_op, op.id);
        prev_op = op.id;
        if (node.stmt != nullptr) {
          (is_def ? write_ops_by_stmt : read_ops_by_stmt)[node.stmt]
              .push_back(op.id);
        }
      }
    }
  }

  // Cross-thread dependency edges: producer write → each consumer read.
  for (const hic::Dependency& dep : sema.dependencies()) {
    auto wit = write_ops_by_stmt.find(dep.producer_stmt);
    if (wit == write_ops_by_stmt.end()) continue;
    // The producing statement's write of the shared variable.
    int producer_write = -1;
    for (int op_id : wit->second) {
      if (g.ops_[static_cast<std::size_t>(op_id)].symbol == dep.shared_var) {
        producer_write = op_id;
        break;
      }
    }
    if (producer_write < 0) continue;
    for (const hic::DepConsumer& c : dep.consumers) {
      auto rit = read_ops_by_stmt.find(c.stmt);
      if (rit == read_ops_by_stmt.end()) continue;
      for (int op_id : rit->second) {
        if (g.ops_[static_cast<std::size_t>(op_id)].symbol ==
            dep.shared_var) {
          g.order_edges_.emplace_back(producer_write, op_id);
        }
      }
    }
  }

  (void)program;
  return g;
}

std::vector<MemAccessGraph::Accessor> MemAccessGraph::accessors(
    const hic::Symbol* sym) const {
  std::vector<Accessor> out;
  auto it = by_symbol_.find(sym);
  if (it == by_symbol_.end()) return out;
  for (int op_id : it->second) {
    const MemOp& op = ops_[static_cast<std::size_t>(op_id)];
    Accessor* acc = nullptr;
    for (auto& a : out) {
      if (a.thread == op.thread) {
        acc = &a;
        break;
      }
    }
    if (acc == nullptr) {
      out.push_back(Accessor{op.thread, 0, 0});
      acc = &out.back();
    }
    if (op.is_write) {
      ++acc->writes;
    } else {
      ++acc->reads;
    }
  }
  return out;
}

std::vector<hic::Symbol*> MemAccessGraph::symbols() const {
  std::vector<hic::Symbol*> out;
  for (const auto& [sym, _] : by_symbol_) {
    out.push_back(const_cast<hic::Symbol*>(sym));
  }
  std::sort(out.begin(), out.end(), [](hic::Symbol* a, hic::Symbol* b) {
    return a->id() < b->id();
  });
  return out;
}

bool MemAccessGraph::is_consistent() const {
  // Kahn's algorithm over the partial order.
  const std::size_t n = ops_.size();
  std::vector<int> indegree(n, 0);
  std::vector<std::vector<int>> adj(n);
  for (const auto& [from, to] : order_edges_) {
    adj[static_cast<std::size_t>(from)].push_back(to);
    ++indegree[static_cast<std::size_t>(to)];
  }
  std::vector<int> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.push_back(static_cast<int>(i));
  }
  std::size_t seen = 0;
  while (!ready.empty()) {
    int u = ready.back();
    ready.pop_back();
    ++seen;
    for (int v : adj[static_cast<std::size_t>(u)]) {
      if (--indegree[static_cast<std::size_t>(v)] == 0) ready.push_back(v);
    }
  }
  return seen == n;
}

int MemAccessGraph::op_count(const std::string& thread) const {
  int count = 0;
  for (const MemOp& op : ops_) {
    if (op.thread == thread) ++count;
  }
  return count;
}

}  // namespace hicsync::analysis
