// hic-diff run bundles: everything one traced simulation produced, on disk,
// so two runs can be compared after the fact (docs/OBSERVABILITY.md,
// "Cross-run differencing").
//
// A bundle is a directory:
//
//   manifest.json   program identity (source digest), organization and
//                   compile configuration, cycle count, convergence, and
//                   the per-controller area/Fmax model rows
//   events.jsonl    the full TraceBus event stream, one JSON object per
//                   line, cycles nondecreasing (BundleCaptureSink)
//   metrics.json    the MetricsSink snapshot (`--trace=metrics` JSON form)
//   cover.jsonl     optional: one coverage-DB record (hicc --cover format)
//
// `hicc --trace=bundle[,out=DIR]` writes one; `hic-diff A B` loads two and
// runs the alignment engine + delta reporter over them. Everything is
// plain JSON/JSONL so the capture also round-trips through
// support::parse_json / parse_jsonl in tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cover/model.h"
#include "support/json.h"
#include "trace/bus.h"

namespace hicsync::diffview {

inline constexpr int kBundleSchemaVersion = 1;

/// A trace event with owned strings (trace::Event's string_views borrow
/// the emitter's storage and die with the simulation).
struct CapturedEvent {
  std::uint64_t cycle = 0;
  trace::EventKind kind = trace::EventKind::PortRequest;
  trace::PortKind port = trace::PortKind::None;
  trace::StallCause cause = trace::StallCause::None;
  int controller = -1;
  int pseudo_port = -1;
  std::int64_t value = -1;
  std::string thread;
  std::string dep;

  /// "cycle 42 produce bram0 C1 thread=t1 dep=mt1" — the rendering the
  /// forensics context windows use.
  [[nodiscard]] std::string str() const;
};

/// TraceSink that buffers the complete event stream for post-run
/// differencing. Strings are interned per event; attach only when a bundle
/// was requested (capture is not free like the null-bus fast path).
class BundleCaptureSink : public trace::TraceSink {
 public:
  void on_event(const trace::Event& e) override;
  void finish(std::uint64_t final_cycle) override { cycles_ = final_cycle; }

  [[nodiscard]] const std::vector<CapturedEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }

  /// The events.jsonl rendering: one compact JSON object per line, fields
  /// with default values omitted. Cycles are nondecreasing (emission
  /// order), which the capture-sink tests assert.
  [[nodiscard]] std::string events_jsonl() const;

 private:
  std::vector<CapturedEvent> events_;
  std::uint64_t cycles_ = 0;
};

/// One controller's area/Fmax model row (copied from core::BramReport —
/// diffview sits below core, so the fields travel as plain data).
struct AreaRow {
  int bram_id = -1;
  std::string module_name;
  int luts = 0;
  int ffs = 0;
  int slices = 0;
  double fmax_mhz = 0.0;
};

/// manifest.json: the identity and configuration of one captured run.
struct Manifest {
  int schema = kBundleSchemaVersion;
  std::string run_id;          // e.g. "fig1@arbitrated"
  std::string program;         // source name the driver compiled
  std::string source_digest;   // fnv1a64 hex of the source text
  std::string organization;    // sim::to_string(OrgKind)
  bool use_cam = true;
  bool chain = false;
  bool infer = false;
  int passes = 1;
  std::uint64_t max_cycles = 0;
  std::uint64_t cycles = 0;
  bool converged = false;
  std::vector<AreaRow> areas;

  [[nodiscard]] std::string to_json() const;
  /// False (with `error`) on schema skew or missing required fields.
  [[nodiscard]] static bool from_json(const support::JsonValue& v,
                                      Manifest* out,
                                      std::string* error = nullptr);
};

/// A fully-loaded bundle, ready for alignment and delta reporting.
struct Bundle {
  std::string dir;  // where it was loaded from (diagnostics)
  Manifest manifest;
  std::vector<CapturedEvent> events;
  support::JsonValue metrics;       // parsed metrics.json (Null if absent)
  cover::CoverageModel coverage;    // merged cover.jsonl records
  bool has_coverage = false;
};

/// Parses an events.jsonl document. False on the first malformed line.
[[nodiscard]] bool parse_events_jsonl(std::string_view text,
                                      std::vector<CapturedEvent>* out,
                                      std::string* error = nullptr);

/// Writes a bundle directory (created if needed): manifest.json,
/// events.jsonl, metrics.json and — when `cover_record` is nonempty —
/// cover.jsonl. False (with `error`) on I/O failure.
[[nodiscard]] bool write_bundle(const std::string& dir,
                                const std::string& manifest_json,
                                const std::string& events_jsonl,
                                const std::string& metrics_json,
                                const std::string& cover_record,
                                std::string* error = nullptr);

/// Loads a bundle directory written by write_bundle. metrics.json and
/// cover.jsonl are optional; manifest.json and events.jsonl are not.
[[nodiscard]] bool load_bundle(const std::string& dir, Bundle* out,
                               std::string* error = nullptr);

/// fnv1a64 of `bytes` as a 16-digit lowercase hex string — the program
/// digest stamped into manifests (same function family the hic-rt
/// artifact framing uses).
[[nodiscard]] std::string digest_hex(std::string_view bytes);

}  // namespace hicsync::diffview
