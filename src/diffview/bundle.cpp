#include "diffview/bundle.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "cover/db.h"
#include "support/strings.h"

namespace hicsync::diffview {

namespace {

bool parse_kind(std::string_view s, trace::EventKind* out) {
  using trace::EventKind;
  static constexpr EventKind kAll[] = {
      EventKind::PortRequest,  EventKind::PortGrant,
      EventKind::PortStall,    EventKind::ArbWin,
      EventKind::SlotAdvance,  EventKind::Produce,
      EventKind::Consume,      EventKind::RoundComplete,
      EventKind::FsmState,     EventKind::ThreadBlock,
      EventKind::ThreadUnblock, EventKind::PassComplete,
  };
  for (EventKind k : kAll) {
    if (s == trace::to_string(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

bool parse_cause(std::string_view s, trace::StallCause* out) {
  using trace::StallCause;
  static constexpr StallCause kAll[] = {
      StallCause::None,       StallCause::ArbitrationLoss,
      StallCause::DependencyNotProduced, StallCause::NotOurSlot,
      StallCause::PortABusy,  StallCause::DataWait,
  };
  for (StallCause c : kAll) {
    if (s == trace::to_string(c)) {
      *out = c;
      return true;
    }
  }
  return false;
}

bool parse_port(std::string_view s, trace::PortKind* out) {
  using trace::PortKind;
  static constexpr PortKind kAll[] = {PortKind::None, PortKind::A,
                                      PortKind::B, PortKind::C, PortKind::D};
  for (PortKind p : kAll) {
    if (s == trace::to_string(p)) {
      *out = p;
      return true;
    }
  }
  return false;
}

double number_or(const support::JsonValue& obj, std::string_view key,
                 double fallback) {
  const support::JsonValue* v = obj.find(key);
  return v != nullptr && v->is_number() ? v->number_value : fallback;
}

std::string string_or(const support::JsonValue& obj, std::string_view key,
                      const std::string& fallback = "") {
  const support::JsonValue* v = obj.find(key);
  return v != nullptr && v->is_string() ? v->string_value : fallback;
}

bool bool_or(const support::JsonValue& obj, std::string_view key,
             bool fallback) {
  const support::JsonValue* v = obj.find(key);
  return v != nullptr && v->is_bool() ? v->bool_value : fallback;
}

bool write_file(const std::filesystem::path& path, const std::string& body,
                std::string* error) {
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) *error = "cannot write '" + path.string() + "'";
    return false;
  }
  out << body;
  return true;
}

bool read_file(const std::filesystem::path& path, std::string* body) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *body = ss.str();
  return true;
}

}  // namespace

std::string CapturedEvent::str() const {
  std::string out = support::format(
      "cycle %llu %s", static_cast<unsigned long long>(cycle),
      trace::to_string(kind));
  if (controller >= 0) {
    out += support::format(" bram%d", controller);
    if (port != trace::PortKind::None) {
      out += " ";
      out += trace::to_string(port);
      if (pseudo_port >= 0 && port != trace::PortKind::A) {
        out += std::to_string(pseudo_port);
      }
    }
  }
  if (cause != trace::StallCause::None) {
    out += support::format(" cause=%s", trace::to_string(cause));
  }
  if (!thread.empty()) out += " thread=" + thread;
  if (!dep.empty()) out += " dep=" + dep;
  if (value >= 0) {
    out += support::format(" value=%lld", static_cast<long long>(value));
  }
  return out;
}

void BundleCaptureSink::on_event(const trace::Event& e) {
  CapturedEvent c;
  c.cycle = e.cycle;
  c.kind = e.kind;
  c.port = e.port;
  c.cause = e.cause;
  c.controller = e.controller;
  c.pseudo_port = e.pseudo_port;
  c.value = e.value;
  c.thread = std::string(e.thread);
  c.dep = std::string(e.dep);
  events_.push_back(std::move(c));
}

std::string BundleCaptureSink::events_jsonl() const {
  std::string out;
  for (const CapturedEvent& e : events_) {
    out += support::format("{\"cycle\":%llu,\"kind\":\"%s\"",
                           static_cast<unsigned long long>(e.cycle),
                           trace::to_string(e.kind));
    if (e.port != trace::PortKind::None) {
      out += support::format(",\"port\":\"%s\"", trace::to_string(e.port));
    }
    if (e.cause != trace::StallCause::None) {
      out += support::format(",\"cause\":\"%s\"", trace::to_string(e.cause));
    }
    if (e.controller >= 0) {
      out += support::format(",\"controller\":%d", e.controller);
    }
    if (e.pseudo_port >= 0) {
      out += support::format(",\"pseudo_port\":%d", e.pseudo_port);
    }
    if (e.value != -1) {
      out += support::format(",\"value\":%lld",
                             static_cast<long long>(e.value));
    }
    if (!e.thread.empty()) {
      out += ",\"thread\":\"" + support::json_escape(e.thread) + "\"";
    }
    if (!e.dep.empty()) {
      out += ",\"dep\":\"" + support::json_escape(e.dep) + "\"";
    }
    out += "}\n";
  }
  return out;
}

std::string Manifest::to_json() const {
  support::JsonWriter w(/*indent=*/2);
  w.begin_object();
  w.key("schema").value(schema);
  w.key("run_id").value(run_id);
  w.key("program").value(program);
  w.key("source_digest").value(source_digest);
  w.key("organization").value(organization);
  w.key("use_cam").value(use_cam);
  w.key("chain").value(chain);
  w.key("infer").value(infer);
  w.key("passes").value(passes);
  w.key("max_cycles").value(max_cycles);
  w.key("cycles").value(cycles);
  w.key("converged").value(converged);
  w.key("areas").begin_array();
  for (const AreaRow& a : areas) {
    w.begin_object();
    w.key("bram").value(a.bram_id);
    w.key("module").value(a.module_name);
    w.key("luts").value(a.luts);
    w.key("ffs").value(a.ffs);
    w.key("slices").value(a.slices);
    w.key("fmax_mhz").value(a.fmax_mhz);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

bool Manifest::from_json(const support::JsonValue& v, Manifest* out,
                         std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  if (!v.is_object()) return fail("manifest is not a JSON object");
  const int schema = static_cast<int>(number_or(v, "schema", -1));
  if (schema != kBundleSchemaVersion) {
    return fail(support::format("manifest schema %d (this tool reads %d)",
                                schema, kBundleSchemaVersion));
  }
  Manifest m;
  m.schema = schema;
  m.run_id = string_or(v, "run_id");
  m.program = string_or(v, "program");
  m.source_digest = string_or(v, "source_digest");
  m.organization = string_or(v, "organization");
  if (m.organization.empty()) return fail("manifest lacks 'organization'");
  m.use_cam = bool_or(v, "use_cam", true);
  m.chain = bool_or(v, "chain", false);
  m.infer = bool_or(v, "infer", false);
  m.passes = static_cast<int>(number_or(v, "passes", 1));
  m.max_cycles = static_cast<std::uint64_t>(number_or(v, "max_cycles", 0));
  m.cycles = static_cast<std::uint64_t>(number_or(v, "cycles", 0));
  m.converged = bool_or(v, "converged", false);
  if (const support::JsonValue* areas = v.find("areas");
      areas != nullptr && areas->is_array()) {
    for (const support::JsonValue& a : areas->elements) {
      if (!a.is_object()) return fail("malformed area row in manifest");
      AreaRow row;
      row.bram_id = static_cast<int>(number_or(a, "bram", -1));
      row.module_name = string_or(a, "module");
      row.luts = static_cast<int>(number_or(a, "luts", 0));
      row.ffs = static_cast<int>(number_or(a, "ffs", 0));
      row.slices = static_cast<int>(number_or(a, "slices", 0));
      row.fmax_mhz = number_or(a, "fmax_mhz", 0.0);
      m.areas.push_back(std::move(row));
    }
  }
  *out = std::move(m);
  return true;
}

bool parse_events_jsonl(std::string_view text,
                        std::vector<CapturedEvent>* out, std::string* error) {
  std::vector<support::JsonValue> lines;
  if (!support::parse_jsonl(text, &lines, error)) return false;
  out->clear();
  out->reserve(lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const support::JsonValue& v = lines[i];
    auto fail = [&](const std::string& msg) {
      if (error != nullptr) {
        *error = support::format("event %zu: %s", i + 1, msg.c_str());
      }
      return false;
    };
    if (!v.is_object()) return fail("not a JSON object");
    CapturedEvent e;
    e.cycle = static_cast<std::uint64_t>(number_or(v, "cycle", 0));
    if (!parse_kind(string_or(v, "kind"), &e.kind)) {
      return fail("unknown kind '" + string_or(v, "kind") + "'");
    }
    if (const support::JsonValue* p = v.find("port"); p != nullptr) {
      if (!p->is_string() || !parse_port(p->string_value, &e.port)) {
        return fail("bad port");
      }
    }
    if (const support::JsonValue* c = v.find("cause"); c != nullptr) {
      if (!c->is_string() || !parse_cause(c->string_value, &e.cause)) {
        return fail("bad cause");
      }
    }
    e.controller = static_cast<int>(number_or(v, "controller", -1));
    e.pseudo_port = static_cast<int>(number_or(v, "pseudo_port", -1));
    e.value = static_cast<std::int64_t>(number_or(v, "value", -1));
    e.thread = string_or(v, "thread");
    e.dep = string_or(v, "dep");
    out->push_back(std::move(e));
  }
  return true;
}

bool write_bundle(const std::string& dir, const std::string& manifest_json,
                  const std::string& events_jsonl,
                  const std::string& metrics_json,
                  const std::string& cover_record, std::string* error) {
  std::error_code ec;
  std::filesystem::path root(dir);
  std::filesystem::create_directories(root, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "cannot create '" + dir + "': " + ec.message();
    }
    return false;
  }
  if (!write_file(root / "manifest.json", manifest_json, error)) return false;
  if (!write_file(root / "events.jsonl", events_jsonl, error)) return false;
  if (!write_file(root / "metrics.json", metrics_json, error)) return false;
  if (!cover_record.empty() &&
      !write_file(root / "cover.jsonl", cover_record + "\n", error)) {
    return false;
  }
  return true;
}

bool load_bundle(const std::string& dir, Bundle* out, std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = dir + ": " + msg;
    return false;
  };
  Bundle b;
  b.dir = dir;

  std::string text;
  std::filesystem::path root(dir);
  if (!read_file(root / "manifest.json", &text)) {
    return fail("cannot read manifest.json (not a bundle directory?)");
  }
  support::JsonValue manifest;
  std::string perr;
  if (!support::parse_json(text, &manifest, &perr)) {
    return fail("manifest.json: " + perr);
  }
  if (!Manifest::from_json(manifest, &b.manifest, &perr)) {
    return fail(perr);
  }

  if (!read_file(root / "events.jsonl", &text)) {
    return fail("cannot read events.jsonl");
  }
  if (!parse_events_jsonl(text, &b.events, &perr)) {
    return fail("events.jsonl: " + perr);
  }

  if (read_file(root / "metrics.json", &text) && !text.empty()) {
    if (!support::parse_json(text, &b.metrics, &perr)) {
      return fail("metrics.json: " + perr);
    }
  }

  if (read_file(root / "cover.jsonl", &text) && !text.empty()) {
    int records = 0;
    if (!cover::load_records(text, &b.coverage, &perr, &records)) {
      return fail("cover.jsonl: " + perr);
    }
    b.has_coverage = records > 0;
  }

  *out = std::move(b);
  return true;
}

std::string digest_hex(std::string_view bytes) {
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;  // FNV prime
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf);
}

}  // namespace hicsync::diffview
