// Semantic alignment of two trace captures (the hic-diff engine).
//
// Two runs of the same program — under different memory organizations,
// backends, or toolchain versions — never agree cycle for cycle; what must
// agree is the *synchronization semantics*. The engine therefore reduces
// each event stream to per-entity key sequences and aligns those:
//
//   dep/<id>      one entry per dependency round: the produce edge, the
//                 (sorted) consumer set, the round-complete edge. Order
//                 within a round is timing; the round sequence is not.
//   fsm/<thread>  the thread's FSM-state entry sequence. Synthesis is
//                 organization-independent, so the visited-state sequence
//                 must match even though the cycles stretch.
//   block/<thread> ThreadBlock/ThreadUnblock sequence — timing-coupled
//                 (an access that stalls under arbitration may sail
//                 through the event-driven schedule), so it only takes
//                 part when AlignOptions::compare_blocking is set (e.g.
//                 same-configuration determinism checks, replay
//                 forensics).
//
// The first mismatched entry of any participating stream is the *first
// divergence*: reported with both keys, both cycles, and a ±context
// window of raw events from each capture. Matched entries additionally
// yield per-stream cycle skew (how far run B runs behind run A).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "diffview/bundle.h"

namespace hicsync::diffview {

enum class StreamClass { DepRound, FsmState, Blocking };

[[nodiscard]] const char* to_string(StreamClass c);

/// One semantic entry of a stream: the key that must match across runs,
/// plus where it happened in this run (for skew and context windows).
struct KeyedEntry {
  std::string key;
  std::uint64_t cycle = 0;
  /// Index into the capture's raw event vector of the entry's anchor
  /// event (the produce for a round, the FsmState event, the block edge).
  std::size_t event_index = 0;
};

struct Stream {
  StreamClass cls = StreamClass::DepRound;
  std::string id;  // "dep/mt1", "fsm/t2", "block/t3"
  std::vector<KeyedEntry> entries;
};

/// Reduces a capture to its semantic streams, ids sorted.
[[nodiscard]] std::vector<Stream> extract_streams(
    const std::vector<CapturedEvent>& events);

/// Cycle-skew summary of one fully- or partially-matched stream.
struct StreamSkew {
  std::string stream;
  std::size_t matched = 0;
  /// B's cycle minus A's cycle at the last matched entry / the largest
  /// absolute difference over all matched entries.
  std::int64_t last_skew = 0;
  std::int64_t max_abs_skew = 0;
};

struct Divergence {
  std::string stream;
  StreamClass cls = StreamClass::DepRound;
  std::size_t index = 0;       // first mismatched entry within the stream
  std::string key_a;           // "<end of stream>" when A ran out
  std::string key_b;
  std::uint64_t cycle_a = 0;
  std::uint64_t cycle_b = 0;
  std::vector<std::string> context_a;  // rendered raw events around it
  std::vector<std::string> context_b;
};

struct AlignOptions {
  /// Raw events of context on each side of the divergence anchor.
  int context = 5;
  /// Include block/<thread> streams in the comparison (off by default:
  /// blocking dynamics are timing, not semantics, across organizations).
  bool compare_blocking = false;
  /// The runs were stopped at a pass bound, so the very tail of each
  /// capture is timing, not semantics: one organization may squeeze in
  /// the start of the next round or the next FSM state before the
  /// simulator notices convergence. When set, trailing incomplete rounds
  /// are dropped from dep streams and state/blocking sequences are
  /// compared over their common prefix only. Used by the differential
  /// equivalence tests; hic-diff compares full captures.
  bool tail_insensitive = false;
  /// With tail_insensitive: cap each dep stream at its first n completed
  /// rounds (0 = no cap). Matches the differential tests' pass budget.
  int rounds_per_dep = 0;
};

struct AlignResult {
  /// True when every participating stream matched entry for entry.
  bool equivalent = false;
  /// One divergence per diverging stream (its first), ordered by the
  /// earlier of the two anchor cycles — divergences[0] is *the* first
  /// divergence of the comparison.
  std::vector<Divergence> divergences;
  std::vector<StreamSkew> skews;
  std::size_t streams_compared = 0;
  std::size_t entries_matched = 0;

  [[nodiscard]] const Divergence* first() const {
    return divergences.empty() ? nullptr : &divergences.front();
  }
  /// The human-readable forensics record: verdict, first divergence with
  /// both context windows, remaining divergent streams, skew summary.
  [[nodiscard]] std::string forensics_text() const;
  /// The same record as a JSON object (for hic-diff --emit=json).
  [[nodiscard]] std::string json() const;
};

/// Aligns two captures. `a` and `b` are full event streams in emission
/// order (BundleCaptureSink::events() or a loaded bundle's events).
[[nodiscard]] AlignResult align(const std::vector<CapturedEvent>& a,
                                const std::vector<CapturedEvent>& b,
                                const AlignOptions& options = {});

/// Renders the last `n` events of `events` that touch `thread` (as the
/// emitting thread) — the context tail replay forensics attaches when a
/// counterexample fails to reproduce the predicted blocked set.
[[nodiscard]] std::string render_thread_tail(
    const std::vector<CapturedEvent>& events, const std::string& thread,
    int n);

}  // namespace hicsync::diffview
