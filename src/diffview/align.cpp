#include "diffview/align.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <map>
#include <set>

#include "support/json.h"
#include "support/strings.h"

namespace hicsync::diffview {

namespace {

constexpr const char* kEndOfStream = "<end of stream>";
constexpr const char* kMissingStream = "<missing stream>";
constexpr const char* kIncompleteSuffix = " (round incomplete)";

bool is_incomplete_round(const std::string& key) {
  const std::size_t n = std::strlen(kIncompleteSuffix);
  return key.size() >= n &&
         key.compare(key.size() - n, n, kIncompleteSuffix) == 0;
}

/// Applies AlignOptions::tail_insensitive to one capture's streams:
/// drops trailing incomplete rounds and caps dep streams at the round
/// budget. (Incomplete rounds are always trailing — mid-capture a round
/// only leaves the open queue via RoundComplete.)
void trim_tail(std::vector<Stream>& streams, const AlignOptions& options) {
  if (!options.tail_insensitive) return;
  for (Stream& s : streams) {
    if (s.cls != StreamClass::DepRound) continue;
    while (!s.entries.empty() && is_incomplete_round(s.entries.back().key)) {
      s.entries.pop_back();
    }
    if (options.rounds_per_dep > 0 &&
        s.entries.size() > static_cast<std::size_t>(options.rounds_per_dep)) {
      s.entries.resize(static_cast<std::size_t>(options.rounds_per_dep));
    }
  }
  // A dep whose every round was still open (deadlock tail) trims to
  // nothing; drop it so the missing-stream logic sees it that way.
  streams.erase(std::remove_if(streams.begin(), streams.end(),
                               [](const Stream& s) {
                                 return s.entries.empty();
                               }),
                streams.end());
}

/// An in-progress dependency round while scanning one capture.
struct OpenRound {
  std::string producer;
  std::uint64_t produce_cycle = 0;
  std::size_t produce_index = 0;
  std::set<std::string> consumers;
};

std::string round_key(const OpenRound& r, bool complete) {
  std::string key = "produce " + (r.producer.empty() ? "?" : r.producer);
  key += " -> {";
  bool first = true;
  for (const std::string& c : r.consumers) {
    if (!first) key += ",";
    key += c;
    first = false;
  }
  key += "}";
  if (!complete) key += " (round incomplete)";
  return key;
}

/// Renders events[anchor-n .. anchor+n], marking the anchor line.
std::vector<std::string> context_window(
    const std::vector<CapturedEvent>& events, std::size_t anchor, int n) {
  std::vector<std::string> out;
  if (events.empty()) return out;
  if (anchor >= events.size()) anchor = events.size() - 1;
  const std::size_t lo =
      anchor >= static_cast<std::size_t>(n) ? anchor - n : 0;
  const std::size_t hi =
      std::min(events.size() - 1, anchor + static_cast<std::size_t>(n));
  for (std::size_t i = lo; i <= hi; ++i) {
    out.push_back((i == anchor ? ">> " : "   ") + events[i].str());
  }
  return out;
}

}  // namespace

const char* to_string(StreamClass c) {
  switch (c) {
    case StreamClass::DepRound:
      return "dep-round";
    case StreamClass::FsmState:
      return "fsm-state";
    case StreamClass::Blocking:
      return "blocking";
  }
  return "?";
}

std::vector<Stream> extract_streams(const std::vector<CapturedEvent>& events) {
  // std::map keeps the stream ids sorted, which makes extraction (and
  // therefore alignment and reporting) order deterministic.
  std::map<std::string, Stream> streams;
  auto stream = [&](StreamClass cls, const std::string& prefix,
                    const std::string& entity) -> Stream& {
    const std::string id = prefix + entity;
    Stream& s = streams[id];
    if (s.id.empty()) {
      s.cls = cls;
      s.id = id;
    }
    return s;
  };

  // Rounds of one dep overlap in the event stream: with a double-buffered
  // dependency slot the producer's next write can land before the previous
  // round's last consume + round-complete. Rounds still *complete* in FIFO
  // order, so each dep keeps a queue of open rounds — Produce pushes,
  // Consume attributes to the oldest open round, RoundComplete flushes it.
  std::map<std::string, std::deque<OpenRound>> open;
  auto flush_front = [&](const std::string& dep, bool complete) {
    auto it = open.find(dep);
    if (it == open.end() || it->second.empty()) return;
    Stream& s = stream(StreamClass::DepRound, "dep/", dep);
    const OpenRound& r = it->second.front();
    s.entries.push_back(
        {round_key(r, complete), r.produce_cycle, r.produce_index});
    it->second.pop_front();
  };

  for (std::size_t i = 0; i < events.size(); ++i) {
    const CapturedEvent& e = events[i];
    switch (e.kind) {
      case trace::EventKind::Produce: {
        if (e.dep.empty()) break;
        OpenRound r;
        r.producer = e.thread;
        r.produce_cycle = e.cycle;
        r.produce_index = i;
        open[e.dep].push_back(std::move(r));
        break;
      }
      case trace::EventKind::Consume: {
        if (e.dep.empty()) break;
        auto it = open.find(e.dep);
        if (it != open.end() && !it->second.empty() && !e.thread.empty()) {
          it->second.front().consumers.insert(e.thread);
        }
        break;
      }
      case trace::EventKind::RoundComplete: {
        if (!e.dep.empty()) flush_front(e.dep, /*complete=*/true);
        break;
      }
      case trace::EventKind::FsmState: {
        if (e.thread.empty()) break;
        Stream& s = stream(StreamClass::FsmState, "fsm/", std::string(e.thread));
        s.entries.push_back(
            {support::format("state %lld", static_cast<long long>(e.value)),
             e.cycle, i});
        break;
      }
      case trace::EventKind::ThreadBlock:
      case trace::EventKind::ThreadUnblock: {
        if (e.thread.empty()) break;
        Stream& s =
            stream(StreamClass::Blocking, "block/", std::string(e.thread));
        std::string key =
            e.kind == trace::EventKind::ThreadBlock ? "block" : "unblock";
        if (e.cause != trace::StallCause::None) {
          key += support::format(" cause=%s", trace::to_string(e.cause));
        }
        if (!e.dep.empty()) key += " dep=" + e.dep;
        s.entries.push_back({std::move(key), e.cycle, i});
        break;
      }
      default:
        break;
    }
  }
  // Rounds still open at end of capture (timeout, deadlock) are semantic
  // state too: a run that never completed round k must not align with one
  // that did.
  for (auto& [dep, queue] : open) {
    while (!queue.empty()) flush_front(dep, /*complete=*/false);
  }

  std::vector<Stream> out;
  out.reserve(streams.size());
  for (auto& [id, s] : streams) out.push_back(std::move(s));
  return out;
}

AlignResult align(const std::vector<CapturedEvent>& a,
                  const std::vector<CapturedEvent>& b,
                  const AlignOptions& options) {
  std::vector<Stream> sa = extract_streams(a);
  std::vector<Stream> sb = extract_streams(b);
  trim_tail(sa, options);
  trim_tail(sb, options);
  std::map<std::string, const Stream*> by_id_a, by_id_b;
  for (const Stream& s : sa) by_id_a[s.id] = &s;
  for (const Stream& s : sb) by_id_b[s.id] = &s;

  std::set<std::string> ids;
  for (const Stream& s : sa) ids.insert(s.id);
  for (const Stream& s : sb) ids.insert(s.id);

  AlignResult result;
  for (const std::string& id : ids) {
    const Stream* pa = by_id_a.count(id) ? by_id_a.at(id) : nullptr;
    const Stream* pb = by_id_b.count(id) ? by_id_b.at(id) : nullptr;
    const StreamClass cls = (pa != nullptr ? pa : pb)->cls;
    if (cls == StreamClass::Blocking && !options.compare_blocking) continue;
    result.streams_compared++;

    if (pa == nullptr || pb == nullptr) {
      const Stream& present = pa != nullptr ? *pa : *pb;
      Divergence d;
      d.stream = id;
      d.cls = cls;
      d.index = 0;
      d.key_a = pa != nullptr ? present.entries.front().key : kMissingStream;
      d.key_b = pb != nullptr ? present.entries.front().key : kMissingStream;
      const KeyedEntry& anchor = present.entries.front();
      d.cycle_a = pa != nullptr ? anchor.cycle : 0;
      d.cycle_b = pb != nullptr ? anchor.cycle : 0;
      if (pa != nullptr) {
        d.context_a = context_window(a, anchor.event_index, options.context);
      }
      if (pb != nullptr) {
        d.context_b = context_window(b, anchor.event_index, options.context);
      }
      result.divergences.push_back(std::move(d));
      continue;
    }

    const std::vector<KeyedEntry>& ea = pa->entries;
    const std::vector<KeyedEntry>& eb = pb->entries;
    const std::size_t n = std::min(ea.size(), eb.size());
    std::size_t matched = 0;
    StreamSkew skew;
    skew.stream = id;
    while (matched < n && ea[matched].key == eb[matched].key) {
      const std::int64_t s = static_cast<std::int64_t>(eb[matched].cycle) -
                             static_cast<std::int64_t>(ea[matched].cycle);
      skew.last_skew = s;
      skew.max_abs_skew = std::max(skew.max_abs_skew, s < 0 ? -s : s);
      ++matched;
    }
    skew.matched = matched;
    result.entries_matched += matched;
    if (matched > 0) result.skews.push_back(skew);

    if (matched == ea.size() && matched == eb.size()) continue;
    // Tail-insensitive state/blocking streams compare by common prefix:
    // extra entries on one side are the next pass starting, not a
    // semantic difference.
    if (options.tail_insensitive && cls != StreamClass::DepRound &&
        matched == n) {
      continue;
    }

    Divergence d;
    d.stream = id;
    d.cls = cls;
    d.index = matched;
    const bool a_has = matched < ea.size();
    const bool b_has = matched < eb.size();
    d.key_a = a_has ? ea[matched].key : kEndOfStream;
    d.key_b = b_has ? eb[matched].key : kEndOfStream;
    // For an exhausted side, anchor the context at its last entry so the
    // window shows what it was doing when the other run kept going.
    const KeyedEntry& anchor_a = a_has ? ea[matched] : ea.back();
    const KeyedEntry& anchor_b = b_has ? eb[matched] : eb.back();
    d.cycle_a = anchor_a.cycle;
    d.cycle_b = anchor_b.cycle;
    d.context_a = context_window(a, anchor_a.event_index, options.context);
    d.context_b = context_window(b, anchor_b.event_index, options.context);
    result.divergences.push_back(std::move(d));
  }

  std::stable_sort(result.divergences.begin(), result.divergences.end(),
                   [](const Divergence& x, const Divergence& y) {
                     return std::min(x.cycle_a, x.cycle_b) <
                            std::min(y.cycle_a, y.cycle_b);
                   });
  result.equivalent = result.divergences.empty();
  return result;
}

std::string AlignResult::forensics_text() const {
  std::string out;
  if (equivalent) {
    out += support::format(
        "trace alignment: EQUIVALENT (%zu streams, %zu entries matched)\n",
        streams_compared, entries_matched);
    return out;
  }
  out += support::format(
      "trace alignment: DIVERGED (%zu of %zu streams; %zu entries matched "
      "before first divergence)\n",
      divergences.size(), streams_compared, entries_matched);
  const Divergence& d = divergences.front();
  out += support::format(
      "first divergence: stream %s [%s] entry %zu\n", d.stream.c_str(),
      to_string(d.cls), d.index);
  out += support::format("  run A (cycle %llu): %s\n",
                         static_cast<unsigned long long>(d.cycle_a),
                         d.key_a.c_str());
  out += support::format("  run B (cycle %llu): %s\n",
                         static_cast<unsigned long long>(d.cycle_b),
                         d.key_b.c_str());
  if (!d.context_a.empty()) {
    out += "  context A:\n";
    for (const std::string& line : d.context_a) out += "    " + line + "\n";
  }
  if (!d.context_b.empty()) {
    out += "  context B:\n";
    for (const std::string& line : d.context_b) out += "    " + line + "\n";
  }
  if (divergences.size() > 1) {
    out += "also diverged:\n";
    for (std::size_t i = 1; i < divergences.size(); ++i) {
      const Divergence& o = divergences[i];
      out += support::format("  %s entry %zu: '%s' vs '%s'\n",
                             o.stream.c_str(), o.index, o.key_a.c_str(),
                             o.key_b.c_str());
    }
  }
  return out;
}

std::string AlignResult::json() const {
  support::JsonWriter w(/*indent=*/2);
  w.begin_object();
  w.key("equivalent").value(equivalent);
  w.key("streams_compared").value(static_cast<std::uint64_t>(streams_compared));
  w.key("entries_matched").value(static_cast<std::uint64_t>(entries_matched));
  w.key("divergences").begin_array();
  for (const Divergence& d : divergences) {
    w.begin_object();
    w.key("stream").value(d.stream);
    w.key("class").value(to_string(d.cls));
    w.key("index").value(static_cast<std::uint64_t>(d.index));
    w.key("key_a").value(d.key_a);
    w.key("key_b").value(d.key_b);
    w.key("cycle_a").value(d.cycle_a);
    w.key("cycle_b").value(d.cycle_b);
    w.key("context_a").begin_array();
    for (const std::string& line : d.context_a) w.value(line);
    w.end_array();
    w.key("context_b").begin_array();
    for (const std::string& line : d.context_b) w.value(line);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("skews").begin_array();
  for (const StreamSkew& s : skews) {
    w.begin_object();
    w.key("stream").value(s.stream);
    w.key("matched").value(static_cast<std::uint64_t>(s.matched));
    w.key("last_skew").value(static_cast<std::int64_t>(s.last_skew));
    w.key("max_abs_skew").value(static_cast<std::int64_t>(s.max_abs_skew));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string render_thread_tail(const std::vector<CapturedEvent>& events,
                               const std::string& thread, int n) {
  std::vector<const CapturedEvent*> mine;
  for (const CapturedEvent& e : events) {
    if (e.thread == thread) mine.push_back(&e);
  }
  const std::size_t keep =
      std::min(mine.size(), static_cast<std::size_t>(n > 0 ? n : 0));
  std::string out;
  for (std::size_t i = mine.size() - keep; i < mine.size(); ++i) {
    out += "    " + mine[i]->str() + "\n";
  }
  return out;
}

}  // namespace hicsync::diffview
