#include "diffview/delta.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <set>

#include "support/json.h"
#include "support/strings.h"
#include "trace/metrics.h"

namespace hicsync::diffview {

namespace {

constexpr double kEps = 1e-9;

/// Ordered metric -> value view of one side, so sections can be built from
/// the union of both sides' keys with absences reading as 0.
using ValueMap = std::map<std::string, double>;

void add_union_rows(DeltaSection* section, const ValueMap& a,
                    const ValueMap& b, bool is_int) {
  std::set<std::string> keys;
  for (const auto& [k, v] : a) keys.insert(k);
  for (const auto& [k, v] : b) keys.insert(k);
  for (const std::string& k : keys) {
    DeltaRow row;
    row.name = k;
    row.a = a.count(k) ? a.at(k) : 0.0;
    row.b = b.count(k) ? b.at(k) : 0.0;
    row.is_int = is_int;
    section->rows.push_back(std::move(row));
  }
}

double number_at(const support::JsonValue& obj, std::string_view key) {
  const support::JsonValue* v = obj.find(key);
  return v != nullptr && v->is_number() ? v->number_value : 0.0;
}

/// Per-port utilization % keyed by port name.
ValueMap port_utilization(const support::JsonValue& metrics) {
  ValueMap out;
  const support::JsonValue* ports = metrics.find("ports");
  if (ports == nullptr || !ports->is_array()) return out;
  for (const support::JsonValue& p : ports->elements) {
    const support::JsonValue* name = p.find("port");
    if (name == nullptr || !name->is_string()) continue;
    out[name->string_value] = number_at(p, "utilization_pct");
  }
  return out;
}

/// "stall.<cause>" counters from the registry, keyed by cause.
ValueMap stall_attribution(const support::JsonValue& metrics) {
  ValueMap out;
  const support::JsonValue* reg = metrics.find("registry");
  const support::JsonValue* counters =
      reg != nullptr ? reg->find("counters") : nullptr;
  if (counters == nullptr || !counters->is_object()) return out;
  for (const auto& [name, v] : counters->members) {
    if (name.rfind("stall.", 0) == 0 && v.is_number()) {
      out[name.substr(6)] = v.number_value;
    }
  }
  return out;
}

ValueMap controller_occupancy(const support::JsonValue& metrics) {
  ValueMap out;
  const support::JsonValue* occ = metrics.find("occupancy_pct");
  if (occ == nullptr || !occ->is_object()) return out;
  for (const auto& [name, v] : occ->members) {
    if (v.is_number()) out[name] = v.number_value;
  }
  return out;
}

std::vector<std::uint64_t> u64_array(const support::JsonValue& obj,
                                     std::string_view key) {
  std::vector<std::uint64_t> out;
  const support::JsonValue* arr = obj.find(key);
  if (arr == nullptr || !arr->is_array()) return out;
  for (const support::JsonValue& v : arr->elements) {
    if (v.is_number()) out.push_back(static_cast<std::uint64_t>(v.number_value));
  }
  return out;
}

/// Reconstructs the registry's round-latency histograms (dep id -> hist).
std::map<std::string, trace::Histogram> round_histograms(
    const support::JsonValue& metrics) {
  std::map<std::string, trace::Histogram> out;
  const support::JsonValue* reg = metrics.find("registry");
  const support::JsonValue* hists =
      reg != nullptr ? reg->find("histograms") : nullptr;
  if (hists == nullptr || !hists->is_object()) return out;
  constexpr std::string_view kPrefix = "dep.";
  constexpr std::string_view kSuffix = ".round_latency";
  for (const auto& [name, v] : hists->members) {
    if (!v.is_object()) continue;
    if (name.size() <= kPrefix.size() + kSuffix.size()) continue;
    if (name.rfind(kPrefix, 0) != 0) continue;
    if (name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
        0) {
      continue;
    }
    std::vector<std::uint64_t> bounds = u64_array(v, "bounds");
    if (bounds.empty()) continue;  // pre-bounds snapshot; nothing to rebuild
    const std::string dep =
        name.substr(kPrefix.size(),
                    name.size() - kPrefix.size() - kSuffix.size());
    out.emplace(dep,
                trace::Histogram::from_snapshot(
                    std::move(bounds), u64_array(v, "buckets"),
                    static_cast<std::uint64_t>(number_at(v, "min")),
                    static_cast<std::uint64_t>(number_at(v, "max")),
                    static_cast<std::uint64_t>(number_at(v, "sum"))));
  }
  return out;
}

ValueMap latency_percentiles(const support::JsonValue& metrics) {
  ValueMap out;
  std::map<std::string, trace::Histogram> hists = round_histograms(metrics);
  std::optional<trace::Histogram> merged;
  for (const auto& [dep, h] : hists) {
    out[dep + " p50"] = static_cast<double>(h.percentile(50));
    out[dep + " p95"] = static_cast<double>(h.percentile(95));
    out[dep + " p99"] = static_cast<double>(h.percentile(99));
    if (!merged) {
      merged.emplace(h.bounds());
    }
    merged->merge(h);
  }
  if (merged && hists.size() > 1) {
    out["all-deps p50"] = static_cast<double>(merged->percentile(50));
    out["all-deps p95"] = static_cast<double>(merged->percentile(95));
    out["all-deps p99"] = static_cast<double>(merged->percentile(99));
  }
  return out;
}

ValueMap coverage_pcts(const Bundle& bundle) {
  ValueMap out;
  if (!bundle.has_coverage) return out;
  for (const cover::Covergroup* g : bundle.coverage.groups()) {
    out[g->name()] = g->coverage_pct();
  }
  out["(total)"] = bundle.coverage.coverage_pct();
  return out;
}

/// "group / bin" identifiers of every declared bin.
std::set<std::string> coverage_bins(const Bundle& bundle) {
  std::set<std::string> out;
  if (!bundle.has_coverage) return out;
  for (const cover::Covergroup* g : bundle.coverage.groups()) {
    for (const cover::CoverBin& b : g->bins()) {
      out.insert(g->name() + " / " + b.name);
    }
  }
  return out;
}

ValueMap area_values(const Manifest& m) {
  ValueMap out;
  for (const AreaRow& a : m.areas) {
    const std::string base = support::format("bram%d ", a.bram_id);
    out[base + "luts"] = a.luts;
    out[base + "ffs"] = a.ffs;
    out[base + "slices"] = a.slices;
    out[base + "fmax_mhz"] = a.fmax_mhz;
  }
  return out;
}

std::string render_value(double v, bool is_int) {
  if (is_int) {
    return support::format("%lld", static_cast<long long>(std::llround(v)));
  }
  return support::format("%.3f", v);
}

std::string render_delta(double d, bool is_int) {
  if (std::fabs(d) <= kEps) return "0";
  std::string s = render_value(d, is_int);
  if (d > 0 && !s.empty() && s[0] != '+') s.insert(s.begin(), '+');
  return s;
}

std::string manifest_line(const char* label, const Manifest& m) {
  return support::format(
      "%s %s  program=%s digest=%s org=%s cycles=%llu converged=%s\n", label,
      m.run_id.empty() ? "(unnamed)" : m.run_id.c_str(), m.program.c_str(),
      m.source_digest.c_str(), m.organization.c_str(),
      static_cast<unsigned long long>(m.cycles), m.converged ? "yes" : "no");
}

}  // namespace

bool DeltaRow::differs() const { return std::fabs(b - a) > kEps; }

DiffReport diff_bundles(const Bundle& a, const Bundle& b,
                        const DeltaOptions& options) {
  DiffReport r;
  r.manifest_a = a.manifest;
  r.manifest_b = b.manifest;
  r.align = align(a.events, b.events, options.align);

  auto section = [&](std::string title, const ValueMap& va, const ValueMap& vb,
                     bool is_int) {
    DeltaSection s;
    s.title = std::move(title);
    add_union_rows(&s, va, vb, is_int);
    if (!s.rows.empty()) r.sections.push_back(std::move(s));
  };

  section("Run",
          {{"cycles", static_cast<double>(a.manifest.cycles)},
           {"converged", a.manifest.converged ? 1.0 : 0.0}},
          {{"cycles", static_cast<double>(b.manifest.cycles)},
           {"converged", b.manifest.converged ? 1.0 : 0.0}},
          /*is_int=*/true);
  section("Per-port utilization (%)", port_utilization(a.metrics),
          port_utilization(b.metrics), /*is_int=*/false);
  section("Stall-cause attribution (stall events)",
          stall_attribution(a.metrics), stall_attribution(b.metrics),
          /*is_int=*/true);
  section("Round latency (cycles)", latency_percentiles(a.metrics),
          latency_percentiles(b.metrics), /*is_int=*/true);
  section("Controller occupancy (%)", controller_occupancy(a.metrics),
          controller_occupancy(b.metrics), /*is_int=*/false);
  section("Coverage (%)", coverage_pcts(a), coverage_pcts(b),
          /*is_int=*/false);
  section("Area / Fmax model", area_values(a.manifest),
          area_values(b.manifest), /*is_int=*/false);

  const std::set<std::string> bins_a = coverage_bins(a);
  const std::set<std::string> bins_b = coverage_bins(b);
  std::set_difference(bins_a.begin(), bins_a.end(), bins_b.begin(),
                      bins_b.end(), std::back_inserter(r.cover_only_a));
  std::set_difference(bins_b.begin(), bins_b.end(), bins_a.begin(),
                      bins_a.end(), std::back_inserter(r.cover_only_b));

  for (const DeltaSection& s : r.sections) {
    for (const DeltaRow& row : s.rows) {
      if (row.differs()) r.metric_deltas = true;
    }
  }
  if (!r.cover_only_a.empty() || !r.cover_only_b.empty()) {
    r.metric_deltas = true;
  }
  return r;
}

std::string DiffReport::text() const {
  std::string out = "=== hic-diff ===\n";
  out += manifest_line("run A:", manifest_a);
  out += manifest_line("run B:", manifest_b);
  out += align.forensics_text();
  for (const DeltaSection& s : sections) {
    out += s.title + ":\n";
    out += support::format("  %-28s %14s %14s %12s\n", "metric", "A", "B",
                           "delta");
    for (const DeltaRow& row : s.rows) {
      out += support::format("  %-28s %14s %14s %12s\n", row.name.c_str(),
                             render_value(row.a, row.is_int).c_str(),
                             render_value(row.b, row.is_int).c_str(),
                             render_delta(row.delta(), row.is_int).c_str());
    }
  }
  if (!cover_only_a.empty() || !cover_only_b.empty()) {
    out += "coverage bins present in exactly one run:\n";
    for (const std::string& bin : cover_only_a) out += "  only A: " + bin + "\n";
    for (const std::string& bin : cover_only_b) out += "  only B: " + bin + "\n";
  }
  out += support::format(
      "verdict: %s (exit %d)\n",
      trace_diverged() ? "TRACE DIVERGENCE"
                       : (metric_deltas ? "metric deltas only" : "equal"),
      exit_code());
  return out;
}

std::string DiffReport::markdown() const {
  std::string out = "## Cross-run diff: " +
                    (manifest_a.run_id.empty() ? "A" : manifest_a.run_id) +
                    " vs " +
                    (manifest_b.run_id.empty() ? "B" : manifest_b.run_id) +
                    "\n\n";
  out += "| run | program | digest | organization | cycles | converged |\n";
  out += "|---|---|---|---|---:|---|\n";
  for (const auto* m : {&manifest_a, &manifest_b}) {
    out += support::format(
        "| %s | %s | `%s` | %s | %llu | %s |\n",
        m == &manifest_a ? "A" : "B", m->program.c_str(),
        m->source_digest.c_str(), m->organization.c_str(),
        static_cast<unsigned long long>(m->cycles),
        m->converged ? "yes" : "no");
  }
  out += "\n### Trace alignment\n\n";
  if (align.equivalent) {
    out += support::format(
        "Semantically equivalent: %zu streams, %zu entries matched.\n",
        align.streams_compared, align.entries_matched);
  } else {
    out += "```\n" + align.forensics_text() + "```\n";
  }
  if (!align.skews.empty()) {
    out += "\n| stream | matched | last skew | max \\|skew\\| |\n";
    out += "|---|---:|---:|---:|\n";
    for (const StreamSkew& s : align.skews) {
      out += support::format("| %s | %zu | %lld | %lld |\n", s.stream.c_str(),
                             s.matched, static_cast<long long>(s.last_skew),
                             static_cast<long long>(s.max_abs_skew));
    }
  }
  for (const DeltaSection& s : sections) {
    out += "\n### " + s.title + "\n\n";
    out += "| metric | A | B | Δ |\n|---|---:|---:|---:|\n";
    for (const DeltaRow& row : s.rows) {
      out += support::format("| %s | %s | %s | %s |\n", row.name.c_str(),
                             render_value(row.a, row.is_int).c_str(),
                             render_value(row.b, row.is_int).c_str(),
                             render_delta(row.delta(), row.is_int).c_str());
    }
  }
  if (!cover_only_a.empty() || !cover_only_b.empty()) {
    out += "\n### Coverage bins present in exactly one run\n\n";
    for (const std::string& bin : cover_only_a) {
      out += "- only A: " + bin + "\n";
    }
    for (const std::string& bin : cover_only_b) {
      out += "- only B: " + bin + "\n";
    }
  }
  out += support::format(
      "\n**Verdict:** %s (exit %d)\n",
      trace_diverged() ? "trace divergence"
                       : (metric_deltas ? "metric deltas only" : "equal"),
      exit_code());
  return out;
}

std::string DiffReport::json() const {
  support::JsonWriter w(/*indent=*/2);
  w.begin_object();
  w.key("manifest_a").raw(manifest_a.to_json());
  w.key("manifest_b").raw(manifest_b.to_json());
  w.key("alignment").raw(align.json());
  w.key("sections").begin_array();
  for (const DeltaSection& s : sections) {
    w.begin_object();
    w.key("title").value(s.title);
    w.key("rows").begin_array();
    for (const DeltaRow& row : s.rows) {
      w.begin_object();
      w.key("name").value(row.name);
      w.key("a").value(row.a);
      w.key("b").value(row.b);
      w.key("delta").value(row.delta());
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("cover_only_a").begin_array();
  for (const std::string& bin : cover_only_a) w.value(bin);
  w.end_array();
  w.key("cover_only_b").begin_array();
  for (const std::string& bin : cover_only_b) w.value(bin);
  w.end_array();
  w.key("trace_diverged").value(trace_diverged());
  w.key("metric_deltas").value(metric_deltas);
  w.key("exit_code").value(exit_code());
  w.end_object();
  return w.str();
}

}  // namespace hicsync::diffview
