// The hic-diff delta reporter: §4-style comparison tables over two run
// bundles (per-port utilization, stall-cause attribution, round-latency
// percentiles, controller occupancy, coverage deltas, area/Fmax model
// rows), rendered as text, markdown (the hic-report dashboard section), or
// JSON.
#pragma once

#include <string>
#include <vector>

#include "diffview/align.h"
#include "diffview/bundle.h"

namespace hicsync::diffview {

struct DeltaOptions {
  AlignOptions align;
};

/// One row of a comparison table: a metric with its value in each run.
struct DeltaRow {
  std::string name;
  double a = 0.0;
  double b = 0.0;
  bool is_int = false;  // render without decimals

  [[nodiscard]] double delta() const { return b - a; }
  [[nodiscard]] bool differs() const;
};

struct DeltaSection {
  std::string title;
  std::vector<DeltaRow> rows;
};

struct DiffReport {
  Manifest manifest_a;
  Manifest manifest_b;
  AlignResult align;
  std::vector<DeltaSection> sections;
  /// Coverage bins present in exactly one bundle ("group / bin").
  std::vector<std::string> cover_only_a;
  std::vector<std::string> cover_only_b;
  /// Any table row (or coverage-bin presence) differs between the runs.
  bool metric_deltas = false;

  [[nodiscard]] bool trace_diverged() const { return !align.equivalent; }
  /// The hic-diff verdict: 0 = equal, 1 = metric deltas only, 2 = trace
  /// divergence (usage/io failures are the CLI's 3, before a report
  /// exists).
  [[nodiscard]] int exit_code() const {
    if (trace_diverged()) return 2;
    return metric_deltas ? 1 : 0;
  }

  [[nodiscard]] std::string text() const;
  [[nodiscard]] std::string markdown() const;
  [[nodiscard]] std::string json() const;
};

/// Aligns the two bundles' traces and tabulates every metric delta.
[[nodiscard]] DiffReport diff_bundles(const Bundle& a, const Bundle& b,
                                      const DeltaOptions& options = {});

}  // namespace hicsync::diffview
