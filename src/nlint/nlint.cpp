#include "nlint/nlint.h"

#include <algorithm>
#include <sstream>

#include "nlint/netgraph.h"
#include "support/json.h"

namespace hicsync::nlint {
namespace {

using rtl::RtlExpr;
using rtl::RtlOp;
using support::Severity;

const std::vector<CheckInfo>& registry_storage() {
  static const std::vector<CheckInfo> checks = {
      {"nlint-comb-loop", Severity::Error,
       "combinational loop through continuous assigns (cycle witness)"},
      {"nlint-undriven-net", Severity::Error,
       "net is read but nothing drives it"},
      {"nlint-multiple-drivers", Severity::Error,
       "net has conflicting drivers (lists every driver)"},
      {"nlint-unread-net", Severity::Note,
       "driven non-output net that nothing reads"},
      {"nlint-dead-cone", Severity::Note,
       "net only read behind constant (unreachable) mux selects"},
      {"nlint-width-mismatch", Severity::Error,
       "expression-tree width inconsistency (operands, mux arms, targets)"},
      {"nlint-onehot-violation", Severity::Error,
       "mutual-exclusion claim refuted, with an overlapping assignment"},
      {"nlint-onehot-unproved", Severity::Warning,
       "mutual-exclusion claim the bounded prover could not settle"},
      {"nlint-uninitialized-feedback", Severity::Warning,
       "register on a sequential feedback path without a reset value"},
      {"nlint-census-drift", Severity::Error,
       "netlist census disagrees with the BramReport/DepListHint model"},
  };
  return checks;
}

class Checker {
 public:
  Checker(const rtl::Module& module, const NlintOptions& options,
          const Expectations* exp, NlintResult& result)
      : m_(module), g_(module), opt_(options), exp_(exp), result_(result) {
    summary_.module = module.name();
    summary_.nets = static_cast<int>(module.nets().size());
    summary_.assigns = static_cast<int>(module.assigns().size());
  }

  void run() {
    if (enabled("nlint-comb-loop")) check_comb_loops();
    if (enabled("nlint-undriven-net")) check_undriven();
    if (enabled("nlint-multiple-drivers")) check_multiple_drivers();
    if (enabled("nlint-unread-net")) check_unread();
    if (enabled("nlint-dead-cone")) check_dead_cones();
    if (enabled("nlint-width-mismatch")) check_widths();
    if (enabled("nlint-onehot-violation") ||
        enabled("nlint-onehot-unproved")) {
      check_onehot();
    }
    if (enabled("nlint-uninitialized-feedback")) check_reset_coverage();
    if (enabled("nlint-census-drift")) check_census();
    result_.modules.push_back(summary_);
  }

 private:
  [[nodiscard]] bool enabled(std::string_view id) const {
    if (opt_.checks.empty()) return true;
    return std::find(opt_.checks.begin(), opt_.checks.end(), id) !=
           opt_.checks.end();
  }

  void report(const char* id, std::string message) {
    const CheckInfo* info = find_check(id);
    Finding f;
    f.check_id = id;
    f.severity = info != nullptr ? info->default_severity : Severity::Error;
    f.module = m_.name();
    f.message = std::move(message);
    result_.findings.push_back(std::move(f));
  }

  // --- comb loops ---------------------------------------------------------

  void check_comb_loops() {
    for (const std::vector<int>& cycle : g_.comb_cycles()) {
      std::ostringstream msg;
      msg << "combinational loop: ";
      for (int net : cycle) msg << g_.net_name(net) << " -> ";
      msg << g_.net_name(cycle.front());
      report("nlint-comb-loop", msg.str());
    }
  }

  // --- driver inventory ---------------------------------------------------

  void check_undriven() {
    for (int n = 0; n < g_.net_count(); ++n) {
      const auto& inf = g_.info(n);
      if (inf.reads > 0 && !g_.driven(n)) {
        report("nlint-undriven-net",
               "net '" + g_.net_name(n) + "' is read " +
                   std::to_string(inf.reads) +
                   " time(s) but nothing drives it");
      }
    }
  }

  void check_multiple_drivers() {
    for (int n = 0; n < g_.net_count(); ++n) {
      const auto& inf = g_.info(n);
      std::vector<std::string> drivers;
      for (int a : inf.cont_drivers) {
        drivers.push_back("continuous assign #" + std::to_string(a));
      }
      for (int s : inf.seq_drivers) {
        drivers.push_back("sequential assign #" + std::to_string(s));
      }
      if (inf.mem_read) drivers.push_back("memory read port");
      if (inf.is_input) drivers.push_back("input port");
      if (drivers.size() < 2) continue;
      // A reg with several seq drivers in distinct enable regions is the
      // only benign-looking shape, and even that is last-write-wins in
      // rtl::eval — report everything with >1 driver.
      std::ostringstream msg;
      msg << "net '" << g_.net_name(n) << "' has " << drivers.size()
          << " drivers: ";
      for (std::size_t i = 0; i < drivers.size(); ++i) {
        if (i != 0) msg << ", ";
        msg << drivers[i];
      }
      report("nlint-multiple-drivers", msg.str());
    }
  }

  void check_unread() {
    for (int n = 0; n < g_.net_count(); ++n) {
      const auto& inf = g_.info(n);
      if (inf.is_input || inf.is_output || inf.reads > 0) continue;
      if (!g_.driven(n)) continue;
      report("nlint-unread-net",
             "net '" + g_.net_name(n) + "' is driven but never read");
    }
  }

  // --- dead cones ---------------------------------------------------------

  void live_reads(const RtlExpr& e, std::vector<int>& counts) const {
    if (e.op == RtlOp::Ref) {
      ++counts[static_cast<std::size_t>(e.net)];
      return;
    }
    if (e.op == RtlOp::Mux) {
      auto sel = g_.fold(*e.args[0]);
      if (sel.has_value()) {
        // The select is constant: the other arm can never propagate.
        live_reads(*e.args[0], counts);
        live_reads(*sel != 0 ? *e.args[1] : *e.args[2], counts);
        return;
      }
    }
    if (e.op == RtlOp::And) {
      auto a = g_.fold(*e.args[0]);
      auto b = g_.fold(*e.args[1]);
      if ((a && *a == 0) || (b && *b == 0)) {
        // A constant-zero operand kills the other cone.
        live_reads(a && *a == 0 ? *e.args[0] : *e.args[1], counts);
        return;
      }
    }
    for (const auto& a : e.args) live_reads(*a, counts);
  }

  void check_dead_cones() {
    std::vector<int> live(static_cast<std::size_t>(g_.net_count()), 0);
    for (const rtl::ContAssign& a : m_.assigns()) live_reads(*a.value, live);
    for (const rtl::SeqAssign& s : m_.seqs()) {
      live_reads(*s.value, live);
      if (s.enable != nullptr) live_reads(*s.enable, live);
    }
    for (const rtl::Memory& mem : m_.memories()) {
      for (const rtl::MemoryPort& p : mem.ports) {
        live_reads(*p.addr, live);
        if (p.write_enable != nullptr) live_reads(*p.write_enable, live);
        if (p.write_data != nullptr) live_reads(*p.write_data, live);
      }
    }
    for (int n = 0; n < g_.net_count(); ++n) {
      const auto& inf = g_.info(n);
      if (inf.is_input || inf.is_output) continue;
      if (inf.reads == 0 || live[static_cast<std::size_t>(n)] > 0) continue;
      if (!g_.driven(n)) continue;  // undriven-net already reports it
      report("nlint-dead-cone",
             "net '" + g_.net_name(n) +
                 "' is only read behind unreachable (constant) selects");
    }
  }

  // --- widths -------------------------------------------------------------

  void width_error(const std::string& site, const std::string& what) {
    report("nlint-width-mismatch", site + ": " + what);
  }

  void check_expr_widths(const RtlExpr& e, const std::string& site) {
    for (const auto& a : e.args) check_expr_widths(*a, site);
    auto wstr = [](int w) { return std::to_string(w) + "-bit"; };
    switch (e.op) {
      case RtlOp::Const:
        break;
      case RtlOp::Ref: {
        const int nw = m_.net(e.net).width;
        if (e.width != nw) {
          width_error(site, "reference to " + wstr(nw) + " net '" +
                                g_.net_name(e.net) + "' typed as " +
                                wstr(e.width));
        }
        break;
      }
      case RtlOp::Slice:
        if (e.lo < 0 || e.hi < e.lo || e.hi >= e.args[0]->width) {
          width_error(site, "slice [" + std::to_string(e.hi) + ":" +
                                std::to_string(e.lo) + "] of a " +
                                wstr(e.args[0]->width) + " value");
        } else if (e.width != e.hi - e.lo + 1) {
          width_error(site, "slice typed as " + wstr(e.width) +
                                " but selects " + wstr(e.hi - e.lo + 1));
        }
        break;
      case RtlOp::Concat: {
        int sum = 0;
        for (const auto& a : e.args) sum += a->width;
        if (e.width != sum) {
          width_error(site, "concat typed as " + wstr(e.width) +
                                " but parts total " + wstr(sum));
        }
        break;
      }
      case RtlOp::Not:
        if (e.width != e.args[0]->width) {
          width_error(site, "not of a " + wstr(e.args[0]->width) +
                                " value typed as " + wstr(e.width));
        }
        break;
      case RtlOp::And:
      case RtlOp::Or:
      case RtlOp::Xor:
      case RtlOp::Add:
      case RtlOp::Sub: {
        if (e.args[0]->width != e.args[1]->width) {
          width_error(site, "operand widths differ: " +
                                wstr(e.args[0]->width) + " vs " +
                                wstr(e.args[1]->width));
        } else if (e.width != e.args[0]->width) {
          width_error(site, "result typed as " + wstr(e.width) +
                                " from " + wstr(e.args[0]->width) +
                                " operands");
        }
        break;
      }
      case RtlOp::Eq:
      case RtlOp::Ne:
      case RtlOp::Lt:
      case RtlOp::Le:
        if (e.args[0]->width != e.args[1]->width) {
          width_error(site, "comparison operand widths differ: " +
                                wstr(e.args[0]->width) + " vs " +
                                wstr(e.args[1]->width));
        }
        if (e.width != 1) {
          width_error(site, "comparison result typed as " + wstr(e.width));
        }
        break;
      case RtlOp::Shl:
      case RtlOp::Shr:
        if (e.args[1]->op != RtlOp::Const) {
          width_error(site, "shift amount must be a constant");
        }
        if (e.width != e.args[0]->width) {
          width_error(site, "shift result typed as " + wstr(e.width) +
                                " from a " + wstr(e.args[0]->width) +
                                " value");
        }
        break;
      case RtlOp::Mux: {
        if (e.args[0]->width != 1) {
          width_error(site,
                      "mux select is " + wstr(e.args[0]->width) +
                          " (must be 1-bit)");
        }
        if (e.args[1]->width != e.args[2]->width) {
          width_error(site, "mux arms differ: " + wstr(e.args[1]->width) +
                                " vs " + wstr(e.args[2]->width) +
                                " (narrow arm is silently zero-extended)");
        } else if (e.width != e.args[1]->width) {
          width_error(site, "mux typed as " + wstr(e.width) + " with " +
                                wstr(e.args[1]->width) + " arms");
        }
        break;
      }
      case RtlOp::ReduceOr:
      case RtlOp::ReduceAnd:
        if (e.width != 1) {
          width_error(site, "reduction typed as " + wstr(e.width));
        }
        break;
    }
  }

  void check_widths() {
    for (const rtl::ContAssign& a : m_.assigns()) {
      const std::string site = "assign to '" + g_.net_name(a.target) + "'";
      check_expr_widths(*a.value, site);
      if (a.value->width != m_.net(a.target).width) {
        width_error(site, "value is " + std::to_string(a.value->width) +
                              "-bit for a " +
                              std::to_string(m_.net(a.target).width) +
                              "-bit net");
      }
    }
    for (const rtl::SeqAssign& s : m_.seqs()) {
      const std::string site = "next-state of '" + g_.net_name(s.target) + "'";
      check_expr_widths(*s.value, site);
      if (s.value->width != m_.net(s.target).width) {
        width_error(site, "value is " + std::to_string(s.value->width) +
                              "-bit for a " +
                              std::to_string(m_.net(s.target).width) +
                              "-bit register");
      }
      if (s.enable != nullptr) {
        check_expr_widths(*s.enable, site + " (enable)");
        if (s.enable->width != 1) {
          width_error(site, "enable is " + std::to_string(s.enable->width) +
                                "-bit (must be 1-bit)");
        }
      }
    }
    for (const rtl::Memory& mem : m_.memories()) {
      for (std::size_t i = 0; i < mem.ports.size(); ++i) {
        const rtl::MemoryPort& p = mem.ports[i];
        const std::string site =
            "memory '" + mem.name + "' port " + std::to_string(i);
        check_expr_widths(*p.addr, site + " (address)");
        if (p.write_enable != nullptr) {
          check_expr_widths(*p.write_enable, site + " (write enable)");
          if (p.write_enable->width != 1) {
            width_error(site, "write enable is " +
                                  std::to_string(p.write_enable->width) +
                                  "-bit (must be 1-bit)");
          }
        }
        if (p.write_data != nullptr) {
          check_expr_widths(*p.write_data, site + " (write data)");
          if (p.write_data->width != mem.width) {
            width_error(site, "write data is " +
                                  std::to_string(p.write_data->width) +
                                  "-bit for a " + std::to_string(mem.width) +
                                  "-bit memory");
          }
        }
      }
    }
  }

  // --- one-hot claims -----------------------------------------------------

  void check_onehot() {
    for (const rtl::OneHotClaim& claim : m_.onehot_claims()) {
      ++summary_.claims_total;
      OneHotOutcome outcome = prove_onehot(g_, claim.nets, opt_.onehot);
      summary_.facts_derived += outcome.facts_derived;
      if (opt_.explain) {
        std::ostringstream ex;
        ex << m_.name() << ": " << claim.origin << " ("
           << claim.nets.size() << " nets): " << to_string(outcome.status);
        if (!outcome.detail.empty()) ex << " — " << outcome.detail;
        if (!outcome.witness.empty()) ex << " — " << outcome.witness;
        result_.explain.push_back(ex.str());
      }
      switch (outcome.status) {
        case OneHotStatus::Proved:
          ++summary_.claims_proved;
          break;
        case OneHotStatus::Violation: {
          ++summary_.claims_refuted;
          if (!enabled("nlint-onehot-violation")) break;
          std::ostringstream msg;
          msg << claim.origin << ": nets '" << g_.net_name(outcome.net_a)
              << "' and '" << g_.net_name(outcome.net_b)
              << "' can be high together: " << outcome.witness;
          report("nlint-onehot-violation", msg.str());
          break;
        }
        case OneHotStatus::Inconclusive: {
          ++summary_.claims_inconclusive;
          if (!enabled("nlint-onehot-unproved")) break;
          std::ostringstream msg;
          msg << claim.origin << ": exclusivity of '"
              << g_.net_name(outcome.net_a) << "' and '"
              << g_.net_name(outcome.net_b) << "' not proved";
          if (!outcome.detail.empty()) msg << " (" << outcome.detail << ")";
          report("nlint-onehot-unproved", msg.str());
          break;
        }
      }
    }
  }

  // --- reset coverage -----------------------------------------------------

  /// Registers in the comb-expanded support of an expression.
  void reg_support(const RtlExpr* e, std::vector<int>& regs) const {
    if (e == nullptr) return;
    std::vector<int> roots;
    collect_root_refs(*e, roots);
    for (int t : g_.cone_support(roots)) {
      if (m_.net(t).kind == rtl::NetKind::Reg) regs.push_back(t);
    }
  }

  static void collect_root_refs(const RtlExpr& e, std::vector<int>& refs) {
    if (e.op == RtlOp::Ref) refs.push_back(e.net);
    for (const auto& a : e.args) collect_root_refs(*a, refs);
  }

  void check_reset_coverage() {
    for (const rtl::SeqAssign& s : m_.seqs()) {
      if (s.has_reset) continue;
      // Feedback search: does target's next value depend (through any chain
      // of registers) on the target itself?
      std::vector<int> frontier;
      reg_support(s.value.get(), frontier);
      reg_support(s.enable.get(), frontier);
      std::vector<char> seen(static_cast<std::size_t>(g_.net_count()), 0);
      bool feedback = false;
      while (!frontier.empty() && !feedback) {
        int r = frontier.back();
        frontier.pop_back();
        if (seen[static_cast<std::size_t>(r)] != 0) continue;
        seen[static_cast<std::size_t>(r)] = 1;
        if (r == s.target) {
          feedback = true;
          break;
        }
        for (int si : g_.info(r).seq_drivers) {
          const rtl::SeqAssign& sd =
              m_.seqs()[static_cast<std::size_t>(si)];
          reg_support(sd.value.get(), frontier);
          reg_support(sd.enable.get(), frontier);
        }
      }
      if (feedback) {
        report("nlint-uninitialized-feedback",
               "register '" + g_.net_name(s.target) +
                   "' holds a feedback path but has no reset value; "
                   "rtl::eval powers on at 0, hardware may not");
      }
    }
  }

  // --- census -------------------------------------------------------------

  /// Number of nets named `<prefix><integer><suffix>` exactly.
  [[nodiscard]] int count_family(const std::string& prefix,
                                 const std::string& suffix,
                                 bool inputs_only) const {
    int count = 0;
    for (const rtl::Net& n : m_.nets()) {
      const std::string& name = n.name;
      if (name.size() <= prefix.size() + suffix.size()) continue;
      if (name.compare(0, prefix.size(), prefix) != 0) continue;
      if (suffix.size() > 0 &&
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
              0) {
        continue;
      }
      const std::size_t digits_begin = prefix.size();
      const std::size_t digits_end = name.size() - suffix.size();
      if (digits_begin >= digits_end) continue;
      bool all_digits = true;
      for (std::size_t i = digits_begin; i < digits_end; ++i) {
        if (name[i] < '0' || name[i] > '9') {
          all_digits = false;
          break;
        }
      }
      if (!all_digits) continue;
      if (inputs_only && !g_.info(n.id).is_input) continue;
      ++count;
    }
    return count;
  }

  void census_mismatch(const std::string& what, int netlist, int model) {
    report("nlint-census-drift",
           what + ": netlist has " + std::to_string(netlist) +
               ", model expects " + std::to_string(model));
  }

  void check_census() {
    if (exp_ == nullptr) return;
    if (exp_->ffs >= 0 && m_.flipflop_bits() != exp_->ffs) {
      census_mismatch("flip-flop bits", m_.flipflop_bits(), exp_->ffs);
    }
    if (exp_->consumers >= 0) {
      const int nc = count_family("c_req", "", /*inputs_only=*/true);
      if (nc != exp_->consumers) {
        census_mismatch("consumer pseudo-ports", nc, exp_->consumers);
      }
    }
    if (exp_->producers >= 0) {
      const std::string prefix =
          exp_->org == Expectations::Org::EventDriven ? "p_req" : "d_req";
      const int np = count_family(prefix, "", /*inputs_only=*/true);
      if (np != exp_->producers) {
        census_mismatch("producer pseudo-ports", np, exp_->producers);
      }
    }
    if (exp_->dependencies >= 0 &&
        exp_->org == Expectations::Org::Arbitrated) {
      const int ne = count_family("dep", "_count", /*inputs_only=*/false);
      if (ne != exp_->dependencies) {
        census_mismatch(
            "dependency-list entries (dep<i>_count registers; a pruned "
            "DepListHint entry must be absent)",
            ne, exp_->dependencies);
      }
    }
    if (exp_->slots >= 0 && exp_->org == Expectations::Org::EventDriven) {
      const int ns = count_family("fire_s", "", /*inputs_only=*/false);
      if (ns != exp_->slots) {
        census_mismatch("event slots (fire_s<i> wires)", ns, exp_->slots);
      }
    }
  }

  const rtl::Module& m_;
  NetGraph g_;
  const NlintOptions& opt_;
  const Expectations* exp_;
  NlintResult& result_;
  ModuleSummary summary_;
};

}  // namespace

const std::vector<CheckInfo>& check_registry() { return registry_storage(); }

const CheckInfo* find_check(std::string_view id) {
  for (const CheckInfo& c : registry_storage()) {
    if (id == c.id) return &c;
  }
  return nullptr;
}

int NlintResult::errors() const {
  int n = 0;
  for (const Finding& f : findings) {
    if (f.severity == Severity::Error) ++n;
  }
  return n;
}

int NlintResult::warnings() const {
  int n = 0;
  for (const Finding& f : findings) {
    if (f.severity == Severity::Warning) ++n;
  }
  return n;
}

int NlintResult::notes() const {
  int n = 0;
  for (const Finding& f : findings) {
    if (f.severity == Severity::Note) ++n;
  }
  return n;
}

int NlintResult::claims_inconclusive() const {
  int n = 0;
  for (const ModuleSummary& m : modules) n += m.claims_inconclusive;
  return n;
}

std::string NlintResult::text() const {
  std::ostringstream out;
  for (const ModuleSummary& m : modules) {
    out << "nlint: module '" << m.module << "': " << m.nets << " nets, "
        << m.assigns << " assigns; claims: " << m.claims_proved << "/"
        << m.claims_total << " proved";
    if (m.claims_refuted > 0) out << ", " << m.claims_refuted << " refuted";
    if (m.claims_inconclusive > 0) {
      out << ", " << m.claims_inconclusive << " unproved";
    }
    out << " (" << m.facts_derived << " facts)\n";
  }
  for (const std::string& ex : explain) out << "nlint: proof: " << ex << "\n";
  for (const Finding& f : findings) {
    out << "nlint: [" << support::to_string(f.severity) << "] " << f.check_id
        << ": module '" << f.module << "': " << f.message << "\n";
  }
  out << "nlint: " << errors() << " error(s), " << warnings()
      << " warning(s), " << notes() << " note(s) across " << modules.size()
      << " module(s)\n";
  return out.str();
}

std::string NlintResult::json() const {
  std::ostringstream out;
  out << "{\"errors\":" << errors() << ",\"warnings\":" << warnings()
      << ",\"notes\":" << notes()
      << ",\"inconclusive\":" << claims_inconclusive() << ",\"modules\":[";
  for (std::size_t i = 0; i < modules.size(); ++i) {
    const ModuleSummary& m = modules[i];
    if (i != 0) out << ',';
    out << "{\"module\":\"" << support::json_escape(m.module)
        << "\",\"nets\":" << m.nets << ",\"assigns\":" << m.assigns
        << ",\"claims\":{\"total\":" << m.claims_total
        << ",\"proved\":" << m.claims_proved
        << ",\"refuted\":" << m.claims_refuted
        << ",\"inconclusive\":" << m.claims_inconclusive
        << "},\"facts\":" << m.facts_derived << "}";
  }
  out << "],\"findings\":[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i != 0) out << ',';
    out << "{\"check\":\"" << support::json_escape(f.check_id)
        << "\",\"severity\":\"" << support::to_string(f.severity)
        << "\",\"module\":\"" << support::json_escape(f.module)
        << "\",\"message\":\"" << support::json_escape(f.message) << "\"}";
  }
  out << "]}";
  return out.str();
}

NlintResult run_module(const rtl::Module& module, const NlintOptions& options,
                       const Expectations* exp) {
  NlintResult result;
  Checker checker(module, options, exp, result);
  checker.run();
  return result;
}

NlintResult run_design(const rtl::Design& design, const NlintOptions& options,
                       const std::vector<std::string>& names,
                       const std::map<std::string, Expectations>& expectations) {
  NlintResult result;
  for (const auto& module : design.modules()) {
    if (!names.empty() &&
        std::find(names.begin(), names.end(), module->name()) ==
            names.end()) {
      continue;
    }
    auto it = expectations.find(module->name());
    const Expectations* exp =
        it != expectations.end() ? &it->second : nullptr;
    merge(result, run_module(*module, options, exp));
  }
  return result;
}

void merge(NlintResult& into, NlintResult&& from) {
  for (auto& f : from.findings) into.findings.push_back(std::move(f));
  for (auto& m : from.modules) into.modules.push_back(std::move(m));
  for (auto& e : from.explain) into.explain.push_back(std::move(e));
}

std::size_t report_findings(const NlintResult& result,
                            support::DiagnosticEngine& diags) {
  std::size_t errors = 0;
  for (const Finding& f : result.findings) {
    if (f.severity == Severity::Error) ++errors;
    diags.report(f.severity, support::SourceLoc{},
                 "module '" + f.module + "': " + f.message, f.check_id);
  }
  return errors;
}

}  // namespace hicsync::nlint
