// Bounded bit-level mutual-exclusion prover over combinational cones.
//
// Discharges the structural claims the RTL builders record
// (rtl::Module::onehot_claims): a set of 1-bit nets of which at most one may
// be high in any cycle — the single-grant invariant of the round-robin
// arbiter, decoder outputs, and every build_onehot_mux select set.
//
// Method: for each member net, assume it is 1 and propagate the implied
// necessary conditions backward through its combinational cone (an
// implication-literal abstract domain: exact values of nets). Two members
// whose implied fact sets contradict on some net can never be high
// together. Muxes with unresolved selects stall propagation and nominate
// the select as a global case-split variable; the proof then requires the
// contradiction in *every* case, which is what discharges the arbiter's
// hi/lo rotating-priority structure. Pairs the implication engine cannot
// separate fall back to exhaustive enumeration of the pair's cone support
// when it is small enough — which either produces a concrete overlapping
// assignment (a definite violation, with witness) or completes the proof.
// Registers, inputs and memory-read nets are treated as free variables, so
// every proof is sound for arbitrary reachable states.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nlint/netgraph.h"

namespace hicsync::nlint {

struct OneHotOptions {
  /// Case-split budget: at most this many distinct select nets (2^n cases).
  int max_split_nets = 4;
  /// Exhaustive-fallback budget: total free bits of a pair's cone support.
  int max_enum_bits = 14;
  /// At most this many unproved pairs are handed to the fallback.
  int max_fallback_pairs = 8;
};

enum class OneHotStatus { Proved, Violation, Inconclusive };

[[nodiscard]] const char* to_string(OneHotStatus s);

struct OneHotOutcome {
  OneHotStatus status = OneHotStatus::Proved;
  /// Offending (Violation) or undecided (Inconclusive) pair of claim nets.
  int net_a = -1;
  int net_b = -1;
  /// Violation: the concrete overlapping assignment, e.g.
  /// "req0=1 req1=1 (other cone inputs 0)".
  std::string witness;
  /// One-line proof narration for --explain.
  std::string detail;
  int cases_used = 0;
  int pairs_total = 0;
  int pairs_by_implication = 0;
  int pairs_by_enumeration = 0;
  std::uint64_t facts_derived = 0;
};

/// Proves that at most one of `members` (1-bit nets of g's module) can be 1
/// in any single cycle, for any values of the cone's free variables.
[[nodiscard]] OneHotOutcome prove_onehot(const NetGraph& g,
                                         const std::vector<int>& members,
                                         const OneHotOptions& opt = {});

}  // namespace hicsync::nlint
