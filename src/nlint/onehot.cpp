#include "nlint/onehot.h"

#include <algorithm>
#include <optional>
#include <sstream>

namespace hicsync::nlint {

const char* to_string(OneHotStatus s) {
  switch (s) {
    case OneHotStatus::Proved:
      return "proved";
    case OneHotStatus::Violation:
      return "violation";
    case OneHotStatus::Inconclusive:
      return "inconclusive";
  }
  return "?";
}

namespace {

using rtl::RtlExpr;
using rtl::RtlOp;

// ---------------------------------------------------------------------------
// Fact store: exact net values derived during one member's propagation,
// epoch-stamped so resets are O(1).
// ---------------------------------------------------------------------------

class FactStore {
 public:
  explicit FactStore(int nets)
      : value_(static_cast<std::size_t>(nets), 0),
        epoch_(static_cast<std::size_t>(nets), 0) {}

  void reset() {
    ++cur_;
    trail_.clear();
  }

  enum class Record { New, Known, Contradiction };

  Record record(int net, std::uint64_t v) {
    auto un = static_cast<std::size_t>(net);
    if (epoch_[un] == cur_) {
      return value_[un] == v ? Record::Known : Record::Contradiction;
    }
    epoch_[un] = cur_;
    value_[un] = v;
    trail_.push_back(net);
    return Record::New;
  }

  [[nodiscard]] bool known(int net) const {
    return epoch_[static_cast<std::size_t>(net)] == cur_;
  }
  [[nodiscard]] std::uint64_t value(int net) const {
    return value_[static_cast<std::size_t>(net)];
  }
  /// Nets given a value since the last reset, in derivation order.
  [[nodiscard]] const std::vector<int>& trail() const { return trail_; }

 private:
  std::vector<std::uint64_t> value_;
  std::vector<std::uint32_t> epoch_;
  std::uint32_t cur_ = 1;
  std::vector<int> trail_;
};

// ---------------------------------------------------------------------------
// Backward implication propagation.
// ---------------------------------------------------------------------------

class Propagator {
 public:
  Propagator(const NetGraph& g, FactStore& store) : g_(g), store_(store) {}

  /// Distinct 1-bit mux-select nets whose unknown value stalled
  /// propagation; candidates for global case splitting.
  std::vector<int> split_candidates;
  std::uint64_t facts = 0;

  [[nodiscard]] bool assume_net(int net, std::uint64_t v) {
    v = NetGraph::mask_width(v, g_.module().net(net).width);
    switch (store_.record(net, v)) {
      case FactStore::Record::Known:
        return true;
      case FactStore::Record::Contradiction:
        return false;
      case FactStore::Record::New:
        break;
    }
    ++facts;
    const RtlExpr* drv = g_.comb_driver(net);
    if (drv == nullptr) return true;  // free variable (input/reg/mem read)
    return require(*drv, v);
  }

  /// Requires expression e to evaluate to v (masked to e.width); derives
  /// the implied net facts. Returns false on contradiction.
  [[nodiscard]] bool require(const RtlExpr& e, std::uint64_t v) {
    v = NetGraph::mask_width(v, e.width);
    switch (e.op) {
      case RtlOp::Const:
        return NetGraph::mask_width(e.value, e.width) == v;
      case RtlOp::Ref:
        return assume_net(e.net, v);
      case RtlOp::Not:
        return require(*e.args[0],
                       NetGraph::mask_width(~v, e.args[0]->width));
      case RtlOp::And: {
        if (v == NetGraph::mask_width(~0ULL, e.width) &&
            e.args[0]->width == e.width && e.args[1]->width == e.width) {
          return require(*e.args[0], v) && require(*e.args[1], v);
        }
        if (e.width == 1 && v == 0) {
          auto a = partial_eval(*e.args[0]);
          auto b = partial_eval(*e.args[1]);
          if (a && *a != 0) return require(*e.args[1], 0);
          if (b && *b != 0) return require(*e.args[0], 0);
        }
        return true;
      }
      case RtlOp::Or: {
        if (v == 0) {
          return require(*e.args[0], 0) && require(*e.args[1], 0);
        }
        if (e.width == 1) {
          auto a = partial_eval(*e.args[0]);
          auto b = partial_eval(*e.args[1]);
          if (a && *a == 0) return require(*e.args[1], 1);
          if (b && *b == 0) return require(*e.args[0], 1);
        }
        return true;
      }
      case RtlOp::Xor: {
        auto a = partial_eval(*e.args[0]);
        auto b = partial_eval(*e.args[1]);
        if (a && e.args[1]->width == e.width) {
          return require(*e.args[1], v ^ *a);
        }
        if (b && e.args[0]->width == e.width) {
          return require(*e.args[0], v ^ *b);
        }
        return true;
      }
      case RtlOp::Eq:
      case RtlOp::Ne: {
        const bool want_equal = (e.op == RtlOp::Eq) == (v != 0);
        if (!want_equal) return true;  // disequalities carry no exact fact
        auto a = partial_eval(*e.args[0]);
        auto b = partial_eval(*e.args[1]);
        if (a && b) return *a == *b;
        if (b) return require(*e.args[0], *b);
        if (a) return require(*e.args[1], *a);
        return true;
      }
      case RtlOp::Mux: {
        auto s = partial_eval(*e.args[0]);
        if (s) return require(*s != 0 ? *e.args[1] : *e.args[2], v);
        auto t = partial_eval(*e.args[1]);
        auto f = partial_eval(*e.args[2]);
        if (t && f) {
          const std::uint64_t tv = NetGraph::mask_width(*t, e.width);
          const std::uint64_t fv = NetGraph::mask_width(*f, e.width);
          if (tv == v && fv != v) return require(*e.args[0], 1);
          if (fv == v && tv != v) return require(*e.args[0], 0);
          if (tv != v && fv != v) return false;
          return true;
        }
        nominate_split(*e.args[0]);
        return true;
      }
      case RtlOp::Slice: {
        if (e.lo == 0 && e.hi == e.args[0]->width - 1) {
          return require(*e.args[0], v);
        }
        return true;
      }
      case RtlOp::Concat: {
        int offset = e.width;
        for (const auto& part : e.args) {
          offset -= part->width;
          const std::uint64_t pv =
              NetGraph::mask_width(offset >= 0 ? v >> offset : 0, part->width);
          if (!require(*part, pv)) return false;
        }
        return true;
      }
      case RtlOp::ReduceOr:
        if (v == 0) return require(*e.args[0], 0);
        if (e.args[0]->width == 1) return require(*e.args[0], 1);
        return true;
      case RtlOp::ReduceAnd:
        if (v != 0) {
          return require(*e.args[0],
                         NetGraph::mask_width(~0ULL, e.args[0]->width));
        }
        if (e.args[0]->width == 1) return require(*e.args[0], 0);
        return true;
      case RtlOp::Add:
      case RtlOp::Sub:
      case RtlOp::Lt:
      case RtlOp::Le:
      case RtlOp::Shl:
      case RtlOp::Shr:
        return true;  // no exact backward facts
    }
    return true;
  }

 private:
  /// Value of e under current facts and folded constants, when determined.
  [[nodiscard]] std::optional<std::uint64_t> partial_eval(const RtlExpr& e) {
    switch (e.op) {
      case RtlOp::Const:
        return NetGraph::mask_width(e.value, e.width);
      case RtlOp::Ref:
        if (store_.known(e.net)) return store_.value(e.net);
        return g_.const_value(e.net);
      case RtlOp::Not: {
        auto v = partial_eval(*e.args[0]);
        if (!v) return std::nullopt;
        return NetGraph::mask_width(~*v, e.width);
      }
      case RtlOp::And: {
        auto a = partial_eval(*e.args[0]);
        if (a && *a == 0) return 0;
        auto b = partial_eval(*e.args[1]);
        if (b && *b == 0) return 0;
        if (a && b) return NetGraph::mask_width(*a & *b, e.width);
        return std::nullopt;
      }
      case RtlOp::Or: {
        auto a = partial_eval(*e.args[0]);
        auto b = partial_eval(*e.args[1]);
        if (e.width == 1 && a && *a == 1) return 1;
        if (e.width == 1 && b && *b == 1) return 1;
        if (a && b) return NetGraph::mask_width(*a | *b, e.width);
        return std::nullopt;
      }
      case RtlOp::Eq: {
        auto a = partial_eval(*e.args[0]);
        auto b = partial_eval(*e.args[1]);
        if (a && b) return *a == *b ? 1 : 0;
        return std::nullopt;
      }
      case RtlOp::Mux: {
        auto s = partial_eval(*e.args[0]);
        if (!s) return std::nullopt;
        auto arm = partial_eval(*s != 0 ? *e.args[1] : *e.args[2]);
        if (!arm) return std::nullopt;
        return NetGraph::mask_width(*arm, e.width);
      }
      default: {
        // Fall back to pure constant folding for the remaining shapes.
        return g_.fold(e);
      }
    }
  }

  void nominate_split(const RtlExpr& sel) {
    if (sel.op == RtlOp::Ref && sel.width == 1 &&
        g_.module().net(sel.net).width == 1) {
      if (std::find(split_candidates.begin(), split_candidates.end(),
                    sel.net) == split_candidates.end()) {
        split_candidates.push_back(sel.net);
      }
    }
  }

  const NetGraph& g_;
  FactStore& store_;
};

// ---------------------------------------------------------------------------
// Pair-coverage bookkeeping: one bit row per member.
// ---------------------------------------------------------------------------

class PairMatrix {
 public:
  PairMatrix(int k, bool ones) : k_(k), words_((k + 63) / 64) {
    bits_.assign(static_cast<std::size_t>(k_) * words_,
                 ones ? ~0ULL : 0ULL);
  }

  void set(int i, int j) {
    bits_[static_cast<std::size_t>(i) * words_ +
          static_cast<std::size_t>(j / 64)] |= 1ULL << (j % 64);
    bits_[static_cast<std::size_t>(j) * words_ +
          static_cast<std::size_t>(i / 64)] |= 1ULL << (i % 64);
  }

  void set_row(int i) {
    for (std::size_t w = 0; w < words_; ++w) {
      bits_[static_cast<std::size_t>(i) * words_ + w] = ~0ULL;
    }
    for (int j = 0; j < k_; ++j) set(i, j);
  }

  [[nodiscard]] bool get(int i, int j) const {
    return (bits_[static_cast<std::size_t>(i) * words_ +
                  static_cast<std::size_t>(j / 64)] >>
            (j % 64)) &
           1ULL;
  }

  void or_into_row(int i, const std::vector<std::uint64_t>& row) {
    for (std::size_t w = 0; w < words_; ++w) {
      bits_[static_cast<std::size_t>(i) * words_ + w] |= row[w];
    }
  }

  void and_with(const PairMatrix& other) {
    for (std::size_t w = 0; w < bits_.size(); ++w) bits_[w] &= other.bits_[w];
  }

  [[nodiscard]] int words() const { return static_cast<int>(words_); }

 private:
  int k_;
  std::size_t words_;
  std::vector<std::uint64_t> bits_;
};

// Per-net value groups accumulated during one case.
struct NetGroups {
  // Parallel arrays: distinct values seen, and the members that derived
  // each value. Nearly always two groups, one a singleton.
  std::vector<std::uint64_t> values;
  std::vector<std::vector<int>> members;

  void add(std::uint64_t v, int member) {
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (values[i] == v) {
        members[i].push_back(member);
        return;
      }
    }
    values.push_back(v);
    members.push_back({member});
  }
};

// ---------------------------------------------------------------------------
// Exhaustive fallback: evaluate the pair's cones over every assignment of
// their (small) free support.
// ---------------------------------------------------------------------------

class ConeEval {
 public:
  explicit ConeEval(const NetGraph& g)
      : g_(g),
        value_(static_cast<std::size_t>(g.net_count()), 0),
        state_(static_cast<std::size_t>(g.net_count()), 0),
        epoch_(static_cast<std::size_t>(g.net_count()), 0) {}

  void new_assignment() { ++cur_; }

  void set(int net, std::uint64_t v) {
    auto un = static_cast<std::size_t>(net);
    epoch_[un] = cur_;
    state_[un] = 2;
    value_[un] = NetGraph::mask_width(v, g_.module().net(net).width);
  }

  std::uint64_t net_value(int net) {
    auto un = static_cast<std::size_t>(net);
    if (epoch_[un] == cur_ && state_[un] == 2) return value_[un];
    if (epoch_[un] == cur_ && state_[un] == 1) return 0;  // comb cycle guard
    epoch_[un] = cur_;
    state_[un] = 1;
    const RtlExpr* drv = g_.comb_driver(net);
    std::uint64_t v = 0;
    if (drv != nullptr) {
      v = NetGraph::mask_width(eval(*drv), g_.module().net(net).width);
    }
    epoch_[un] = cur_;
    state_[un] = 2;
    value_[un] = v;
    return v;
  }

  std::uint64_t eval(const RtlExpr& e) {
    auto m = [&](std::uint64_t v) { return NetGraph::mask_width(v, e.width); };
    switch (e.op) {
      case RtlOp::Const:
        return m(e.value);
      case RtlOp::Ref:
        return net_value(e.net);
      case RtlOp::Slice:
        return NetGraph::mask_width(eval(*e.args[0]) >> e.lo,
                                    e.hi - e.lo + 1);
      case RtlOp::Concat: {
        std::uint64_t v = 0;
        for (const auto& a : e.args) {
          v = (v << a->width) | NetGraph::mask_width(eval(*a), a->width);
        }
        return m(v);
      }
      case RtlOp::Not:
        return m(~eval(*e.args[0]));
      case RtlOp::And:
        return m(eval(*e.args[0]) & eval(*e.args[1]));
      case RtlOp::Or:
        return m(eval(*e.args[0]) | eval(*e.args[1]));
      case RtlOp::Xor:
        return m(eval(*e.args[0]) ^ eval(*e.args[1]));
      case RtlOp::Add:
        return m(eval(*e.args[0]) + eval(*e.args[1]));
      case RtlOp::Sub:
        return m(eval(*e.args[0]) - eval(*e.args[1]));
      case RtlOp::Eq:
        return eval(*e.args[0]) == eval(*e.args[1]) ? 1 : 0;
      case RtlOp::Ne:
        return eval(*e.args[0]) != eval(*e.args[1]) ? 1 : 0;
      case RtlOp::Lt:
        return eval(*e.args[0]) < eval(*e.args[1]) ? 1 : 0;
      case RtlOp::Le:
        return eval(*e.args[0]) <= eval(*e.args[1]) ? 1 : 0;
      case RtlOp::Shl:
        return m(eval(*e.args[0]) << eval(*e.args[1]));
      case RtlOp::Shr:
        return m(eval(*e.args[0]) >> eval(*e.args[1]));
      case RtlOp::Mux:
        return m(eval(*e.args[0]) != 0 ? eval(*e.args[1])
                                       : eval(*e.args[2]));
      case RtlOp::ReduceOr:
        return eval(*e.args[0]) != 0 ? 1 : 0;
      case RtlOp::ReduceAnd:
        return NetGraph::mask_width(eval(*e.args[0]), e.args[0]->width) ==
                       NetGraph::mask_width(~0ULL, e.args[0]->width)
                   ? 1
                   : 0;
    }
    return 0;
  }

 private:
  const NetGraph& g_;
  std::vector<std::uint64_t> value_;
  std::vector<char> state_;  // 0 none, 1 in progress, 2 done (this epoch)
  std::vector<std::uint32_t> epoch_;
  std::uint32_t cur_ = 1;
};

struct EnumResult {
  enum class Kind { Proved, Violation, TooWide } kind = Kind::TooWide;
  std::string witness;
};

EnumResult enumerate_pair(const NetGraph& g, int a, int b, int max_bits) {
  EnumResult res;
  std::vector<int> support = g.cone_support({a, b});
  int total_bits = 0;
  for (int s : support) total_bits += g.module().net(s).width;
  if (total_bits > max_bits) return res;  // TooWide

  ConeEval eval(g);
  const std::uint64_t limit = 1ULL << total_bits;
  for (std::uint64_t word = 0; word < limit; ++word) {
    eval.new_assignment();
    int off = 0;
    for (int s : support) {
      const int w = g.module().net(s).width;
      eval.set(s, (word >> off) & NetGraph::mask_width(~0ULL, w));
      off += w;
    }
    if (eval.net_value(a) != 0 && eval.net_value(b) != 0) {
      std::ostringstream witness;
      bool any = false;
      int woff = 0;
      for (int s : support) {
        const int w = g.module().net(s).width;
        const std::uint64_t v = (word >> woff) & NetGraph::mask_width(~0ULL, w);
        woff += w;
        if (v == 0) continue;
        if (any) witness << ' ';
        witness << g.net_name(s) << '=' << v;
        any = true;
      }
      if (!any) witness << "(all cone inputs 0)";
      witness << " -> " << g.net_name(a) << "=1 " << g.net_name(b) << "=1";
      res.kind = EnumResult::Kind::Violation;
      res.witness = witness.str();
      return res;
    }
  }
  res.kind = EnumResult::Kind::Proved;
  return res;
}

}  // namespace

// ---------------------------------------------------------------------------

OneHotOutcome prove_onehot(const NetGraph& g, const std::vector<int>& members,
                           const OneHotOptions& opt) {
  OneHotOutcome out;

  // Deduplicate while preserving order; a literally repeated net can
  // trivially be high "twice", so report it as a violation outright.
  std::vector<int> ms;
  for (int m : members) {
    if (std::find(ms.begin(), ms.end(), m) != ms.end()) {
      out.status = OneHotStatus::Violation;
      out.net_a = out.net_b = m;
      out.witness = g.net_name(m) + " listed twice in the claim";
      return out;
    }
    ms.push_back(m);
  }
  const int k = static_cast<int>(ms.size());
  out.pairs_total = k * (k - 1) / 2;
  if (k < 2) {
    out.status = OneHotStatus::Proved;
    out.cases_used = 0;
    return out;
  }

  FactStore store(g.net_count());
  std::vector<int> split_nets;  // grows after a failed round

  // covered(i,j) once a contradiction separates the pair in EVERY case.
  PairMatrix covered(k, /*ones=*/false);

  auto run_round = [&](const std::vector<int>& splits) {
    const int ncases = 1 << splits.size();
    PairMatrix all_cases(k, /*ones=*/true);
    std::vector<int> next_candidates;
    for (int c = 0; c < ncases; ++c) {
      PairMatrix case_cov(k, /*ones=*/false);
      // Seed facts defining this case.
      store.reset();
      Propagator seed_prop(g, store);
      bool case_possible = true;
      for (std::size_t b = 0; b < splits.size(); ++b) {
        if (!seed_prop.assume_net(splits[b], (c >> b) & 1ULL)) {
          case_possible = false;
          break;
        }
      }
      out.facts_derived += seed_prop.facts;
      if (!case_possible) continue;  // vacuous: everything stays covered
      std::vector<std::pair<int, std::uint64_t>> seed_facts;
      for (int net : store.trail()) {
        seed_facts.emplace_back(net, store.value(net));
      }

      std::vector<NetGroups> groups(static_cast<std::size_t>(g.net_count()));
      std::vector<int> touched;
      std::vector<char> impossible(static_cast<std::size_t>(k), 0);
      for (int i = 0; i < k; ++i) {
        store.reset();
        bool ok = true;
        for (const auto& [net, v] : seed_facts) {
          // Replaying recorded closures: plain inserts, no re-derivation.
          if (store.record(net, v) == FactStore::Record::Contradiction) {
            ok = false;
            break;
          }
        }
        Propagator prop(g, store);
        ok = ok && prop.assume_net(ms[static_cast<std::size_t>(i)], 1);
        out.facts_derived += prop.facts;
        for (int cand : prop.split_candidates) {
          if (std::find(next_candidates.begin(), next_candidates.end(),
                        cand) == next_candidates.end()) {
            next_candidates.push_back(cand);
          }
        }
        if (!ok) {
          impossible[static_cast<std::size_t>(i)] = 1;
          continue;
        }
        // The first seed_facts.size() trail entries are the replayed seeds;
        // everything after is this member's own closure.
        const std::vector<int>& trail = store.trail();
        for (std::size_t t = seed_facts.size(); t < trail.size(); ++t) {
          const int net = trail[t];
          NetGroups& ng = groups[static_cast<std::size_t>(net)];
          if (ng.values.empty()) touched.push_back(net);
          ng.add(store.value(net), i);
        }
      }

      // Conflicts: members deriving different values of the same net.
      std::vector<std::uint64_t> row(static_cast<std::size_t>(
          covered.words()));
      for (int net : touched) {
        const NetGroups& ng = groups[static_cast<std::size_t>(net)];
        if (ng.values.size() < 2) continue;
        for (std::size_t a = 0; a < ng.values.size(); ++a) {
          for (std::size_t b = a + 1; b < ng.values.size(); ++b) {
            const auto& ga = ng.members[a];
            const auto& gb = ng.members[b];
            const auto& small = ga.size() <= gb.size() ? ga : gb;
            const auto& large = ga.size() <= gb.size() ? gb : ga;
            if (small.size() == 1) {
              const int s = small.front();
              std::fill(row.begin(), row.end(), 0);
              for (int o : large) {
                row[static_cast<std::size_t>(o / 64)] |= 1ULL << (o % 64);
                case_cov.set(o, s);
              }
              case_cov.or_into_row(s, row);
            } else {
              for (int x : small) {
                for (int y : large) case_cov.set(x, y);
              }
            }
          }
        }
      }
      for (int i = 0; i < k; ++i) {
        if (impossible[static_cast<std::size_t>(i)] != 0) case_cov.set_row(i);
      }
      all_cases.and_with(case_cov);
    }
    covered = all_cases;
    out.cases_used += ncases;
    return next_candidates;
  };

  std::vector<int> candidates = run_round(split_nets);

  auto all_covered = [&]() {
    for (int i = 0; i < k; ++i) {
      for (int j = i + 1; j < k; ++j) {
        if (!covered.get(i, j)) return false;
      }
    }
    return true;
  };

  if (!all_covered() && !candidates.empty()) {
    for (int cand : candidates) {
      if (static_cast<int>(split_nets.size()) >= opt.max_split_nets) break;
      split_nets.push_back(cand);
    }
    run_round(split_nets);
  }

  // Count implication-proved pairs, then hand leftovers to enumeration.
  std::vector<std::pair<int, int>> unproved;
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      if (covered.get(i, j)) {
        ++out.pairs_by_implication;
      } else {
        unproved.emplace_back(i, j);
      }
    }
  }

  int fallback_used = 0;
  for (const auto& [i, j] : unproved) {
    const int a = ms[static_cast<std::size_t>(i)];
    const int b = ms[static_cast<std::size_t>(j)];
    if (fallback_used >= opt.max_fallback_pairs) {
      out.status = OneHotStatus::Inconclusive;
      out.net_a = a;
      out.net_b = b;
      out.detail = "fallback budget exhausted";
      return out;
    }
    ++fallback_used;
    EnumResult er = enumerate_pair(g, a, b, opt.max_enum_bits);
    switch (er.kind) {
      case EnumResult::Kind::Proved:
        ++out.pairs_by_enumeration;
        break;
      case EnumResult::Kind::Violation:
        out.status = OneHotStatus::Violation;
        out.net_a = a;
        out.net_b = b;
        out.witness = std::move(er.witness);
        return out;
      case EnumResult::Kind::TooWide:
        out.status = OneHotStatus::Inconclusive;
        out.net_a = a;
        out.net_b = b;
        out.detail = "cone support exceeds the enumeration budget";
        return out;
    }
  }

  out.status = OneHotStatus::Proved;
  {
    std::ostringstream d;
    d << out.pairs_total << " pair(s) proved ("
      << out.pairs_by_implication << " by implication, "
      << out.pairs_by_enumeration << " by enumeration) across "
      << out.cases_used << " case(s)";
    if (!split_nets.empty()) {
      d << ", split on";
      for (int s : split_nets) d << ' ' << g.net_name(s);
    }
    out.detail = d.str();
  }
  return out;
}

}  // namespace hicsync::nlint
