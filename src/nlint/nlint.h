// hic-nlint: netlist-level structural & synchronization static analyzer.
//
// hic-lint checks .hic source and hic-bound/hic-verify check the abstract
// synchronization model; this subsystem closes the remaining gap and checks
// the *generated* RTL controllers themselves. A registry of netlist checks
// (mirroring hic-lint's pass-registry design) runs over each controller
// rtl::Module and reports findings with stable `nlint-*` check IDs through
// the shared DiagnosticEngine:
//
//   nlint-comb-loop               combinational loop (Tarjan SCC witness)
//   nlint-undriven-net            net read but driven by nothing
//   nlint-multiple-drivers        conflicting drivers of one net
//   nlint-unread-net              driven net that nothing reads
//   nlint-dead-cone               logic only reachable through dead selects
//   nlint-width-mismatch          expression-tree width inconsistency
//   nlint-onehot-violation        refuted mutual-exclusion claim + witness
//   nlint-onehot-unproved         claim the bounded prover could not settle
//   nlint-uninitialized-feedback  FF on a feedback path without reset
//   nlint-census-drift            netlist vs BramReport/DepListHints drift
//
// The one-hot checks discharge the structural claims the rtl builders
// record (arbiter single-grant, decoder exclusivity, every build_onehot_mux
// select set) with a bounded bit-level abstract interpretation — see
// nlint/onehot.h. Wired into core::Compiler as a profiled opt-in phase
// (`hicc --nlint`, exit code 7) and the standalone `hic-nlint` tool.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "nlint/onehot.h"
#include "rtl/netlist.h"
#include "support/diagnostics.h"

namespace hicsync::nlint {

/// Immutable metadata of one registered netlist check.
struct CheckInfo {
  const char* id;
  support::Severity default_severity;
  const char* description;  // one line, for docs and --list-checks
};

/// Every built-in check, in reporting order.
[[nodiscard]] const std::vector<CheckInfo>& check_registry();
[[nodiscard]] const CheckInfo* find_check(std::string_view id);

/// Generator-side expectations for the census check, assembled from the
/// compiler's BramReport (area model, post-pruning dependency counts,
/// pseudo-port plan). Negative fields are not checked.
struct Expectations {
  enum class Org { None, Arbitrated, EventDriven };
  Org org = Org::None;
  int ffs = -1;           // flip-flop bits per the area model
  int dependencies = -1;  // dependency-list entries after DepListHint pruning
  int slots = -1;         // event slots (event-driven organization)
  int consumers = -1;     // consumer pseudo-ports
  int producers = -1;     // producer pseudo-ports
};

struct NlintOptions {
  bool enabled = false;
  /// Check IDs to run; empty runs every registered check.
  std::vector<std::string> checks;
  /// Collect per-claim proof narration into NlintResult::explain.
  bool explain = false;
  OneHotOptions onehot;
};

struct Finding {
  std::string check_id;
  support::Severity severity = support::Severity::Error;
  std::string module;
  std::string message;  // includes the witness where the check has one
};

struct ModuleSummary {
  std::string module;
  int nets = 0;
  int assigns = 0;
  int claims_total = 0;
  int claims_proved = 0;
  int claims_refuted = 0;
  int claims_inconclusive = 0;
  std::uint64_t facts_derived = 0;
};

struct NlintResult {
  std::vector<Finding> findings;
  std::vector<ModuleSummary> modules;
  std::vector<std::string> explain;  // per-claim narration (--explain)

  [[nodiscard]] int errors() const;
  [[nodiscard]] int warnings() const;
  [[nodiscard]] int notes() const;
  [[nodiscard]] int claims_inconclusive() const;
  [[nodiscard]] bool clean() const { return errors() == 0; }

  [[nodiscard]] std::string text() const;
  [[nodiscard]] std::string json() const;
};

/// Runs the enabled checks over one module. `exp` enables the census check.
[[nodiscard]] NlintResult run_module(const rtl::Module& module,
                                     const NlintOptions& options,
                                     const Expectations* exp = nullptr);

/// Runs over every named module of the design (all, when `names` is empty),
/// with per-module expectations where provided.
[[nodiscard]] NlintResult run_design(
    const rtl::Design& design, const NlintOptions& options,
    const std::vector<std::string>& names = {},
    const std::map<std::string, Expectations>& expectations = {});

void merge(NlintResult& into, NlintResult&& from);

/// Reports every finding into the engine under its check ID; returns the
/// number reported at error severity.
std::size_t report_findings(const NlintResult& result,
                            support::DiagnosticEngine& diags);

}  // namespace hicsync::nlint
