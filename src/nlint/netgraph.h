// Structural index over one rtl::Module, shared by every hic-nlint check.
//
// Built once per analyzed module: per-net driver/reader inventory (who
// continuously assigns, sequentially assigns, or memory-reads into each
// net), the combinational dependency graph with its strongly connected
// components (Tarjan) for loop detection, constant folding over
// combinational cones, and cone-support queries (the terminal inputs/
// registers a net's combinational value depends on) used by the one-hot
// prover's exhaustive fallback.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rtl/netlist.h"

namespace hicsync::nlint {

class NetGraph {
 public:
  explicit NetGraph(const rtl::Module& module);
  NetGraph(const NetGraph&) = delete;
  NetGraph& operator=(const NetGraph&) = delete;

  struct NetInfo {
    std::vector<int> cont_drivers;  // indices into module.assigns()
    std::vector<int> seq_drivers;   // indices into module.seqs()
    bool mem_read = false;          // target of a memory read port
    bool is_input = false;
    bool is_output = false;
    int reads = 0;  // reference count across every expression site
  };

  [[nodiscard]] const rtl::Module& module() const { return module_; }
  [[nodiscard]] int net_count() const {
    return static_cast<int>(infos_.size());
  }
  [[nodiscard]] const NetInfo& info(int net) const {
    return infos_[static_cast<std::size_t>(net)];
  }
  [[nodiscard]] const std::string& net_name(int net) const {
    return module_.net(net).name;
  }

  /// True when anything at all drives the net (input port, continuous or
  /// sequential assign, or a memory read port).
  [[nodiscard]] bool driven(int net) const;

  /// The unique continuous driver expression, or nullptr when the net has
  /// no continuous driver or more than one (the multiple-drivers check
  /// reports the latter; every other analysis falls back to the first).
  [[nodiscard]] const rtl::RtlExpr* comb_driver(int net) const;

  /// Combinational loops: every SCC of the continuous-assign dependency
  /// graph with more than one net (or a self-edge), each listed as net ids
  /// ordered along an actual cycle, first net repeated implicitly.
  [[nodiscard]] const std::vector<std::vector<int>>& comb_cycles() const {
    return cycles_;
  }
  /// True when `net` participates in any combinational loop.
  [[nodiscard]] bool on_comb_cycle(int net) const {
    return on_cycle_[static_cast<std::size_t>(net)];
  }

  /// Folded constant value of a net when its combinational cone reduces to
  /// a constant (inputs, registers and memory reads block folding).
  [[nodiscard]] std::optional<std::uint64_t> const_value(int net) const;
  /// Folded constant value of an arbitrary expression.
  [[nodiscard]] std::optional<std::uint64_t> fold(const rtl::RtlExpr& e) const;

  /// Terminal nets of the combinational cones of `roots`: the inputs,
  /// registers, memory-read nets and undriven wires the roots' values
  /// depend on, in ascending net-id order.
  [[nodiscard]] std::vector<int> cone_support(
      const std::vector<int>& roots) const;

  [[nodiscard]] static std::uint64_t mask_width(std::uint64_t v, int width) {
    if (width >= 64) return v;
    return v & ((1ULL << width) - 1);
  }

 private:
  void index_drivers();
  void find_cycles();
  void fold_constants();

  const rtl::Module& module_;
  std::vector<NetInfo> infos_;
  std::vector<std::vector<int>> cycles_;
  std::vector<char> on_cycle_;
  // Folding memo: has_const_[net] != 0 iff const_[net] is meaningful.
  std::vector<char> has_const_;
  std::vector<std::uint64_t> const_;
};

}  // namespace hicsync::nlint
