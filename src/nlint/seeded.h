// Seeded netlist-bug fixtures: small hand-built modules, each carrying one
// deliberately injected structural defect, paired with the nlint-* check
// that must flag it. They pin the analyzer's verdicts (goldens live in
// tests/nlint/seeded_test.cpp and the CI nlint job) and double as living
// documentation of what each check catches. `hic-nlint --seed-bug <name>`
// runs the analyzer over one of them.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "rtl/netlist.h"

namespace hicsync::nlint {

struct SeededBug {
  const char* name;        // CLI-facing fixture name
  const char* check_id;    // the nlint-* check that must fire
  const char* description; // what the injected defect is
};

/// Every fixture, in a stable order.
[[nodiscard]] const std::vector<SeededBug>& seeded_bugs();
[[nodiscard]] const SeededBug* find_seeded_bug(std::string_view name);

/// Builds the named fixture as a fresh module of `design` and returns it.
/// Throws std::invalid_argument for an unknown name.
rtl::Module& build_seeded_bug(rtl::Design& design, std::string_view name);

}  // namespace hicsync::nlint
