#include "nlint/seeded.h"

#include <stdexcept>

#include "rtl/builder.h"

namespace hicsync::nlint {
namespace {

using rtl::ebin;
using rtl::econst;
using rtl::emux;
using rtl::enot;
using rtl::eref;
using rtl::RtlExprPtr;
using rtl::RtlOp;

void build_comb_loop(rtl::Module& m) {
  const int c = m.add_input("c", 1);
  const int d = m.add_input("d", 1);
  const int a = m.add_wire("a", 1);
  const int b = m.add_wire("b", 1);
  // a and b feed each other with no register in between.
  m.assign(a, ebin(RtlOp::And, eref(b, 1), eref(c, 1)));
  m.assign(b, ebin(RtlOp::Or, eref(a, 1), eref(d, 1)));
  const int out = m.add_output("loop_out", 1);
  m.assign(out, eref(a, 1));
}

void build_double_driven_grant(rtl::Module& m) {
  const int req0 = m.add_input("req0", 1);
  const int req1 = m.add_input("req1", 1);
  // Two arbitration fragments both claim ownership of the same grant wire.
  const int grant = m.add_wire("grant", 1);
  m.assign(grant, eref(req0, 1));
  m.assign(grant, ebin(RtlOp::And, eref(req1, 1), enot(eref(req0, 1))));
  const int out = m.add_output("granted", 1);
  m.assign(out, eref(grant, 1));
}

void build_overlapping_onehot(rtl::Module& m) {
  const int req0 = m.add_input("req0", 1);
  const int req1 = m.add_input("req1", 1);
  const int s0 = m.add_wire("s0", 1);
  const int s1 = m.add_wire("s1", 1);
  // s0 and s1 are both high when req0 and req1 are — the mux merges arms.
  m.assign(s0, eref(req0, 1));
  m.assign(s1, ebin(RtlOp::And, eref(req0, 1), eref(req1, 1)));
  const int v0 = m.add_input("v0", 8);
  const int v1 = m.add_input("v1", 8);
  std::vector<RtlExprPtr> values;
  values.push_back(eref(v0, 8));
  values.push_back(eref(v1, 8));
  const int out = m.add_output("out", 8);
  m.assign(out, rtl::build_onehot_mux(m, {s0, s1}, std::move(values), 8));
}

void build_width_truncating_mux_arm(rtl::Module& m) {
  const int sel = m.add_input("sel", 1);
  const int narrow = m.add_input("narrow", 8);
  const int wide = m.add_input("wide", 16);
  const int out = m.add_output("out", 16);
  // The 8-bit arm is silently zero-extended to the 16-bit mux width.
  m.assign(out, emux(eref(sel, 1), eref(narrow, 8), eref(wide, 16)));
}

void build_undriven_net(rtl::Module& m) {
  const int a = m.add_input("a", 1);
  const int ghost = m.add_wire("ghost", 1);
  const int out = m.add_output("out", 1);
  m.assign(out, ebin(RtlOp::And, eref(a, 1), eref(ghost, 1)));
}

void build_no_reset_feedback(rtl::Module& m) {
  const int en = m.add_input("en", 1);
  const int r = m.add_reg("r", 8);
  // r's next value depends on r itself, but there is no reset arm, so the
  // power-on value is whatever the fabric wakes up with.
  m.seq(r,
        emux(eref(en, 1),
             ebin(RtlOp::Add, eref(r, 8), econst(1, 8)), eref(r, 8)),
        nullptr, 0, /*has_reset=*/false);
  const int out = m.add_output("count", 8);
  m.assign(out, eref(r, 8));
}

}  // namespace

const std::vector<SeededBug>& seeded_bugs() {
  static const std::vector<SeededBug> bugs = {
      {"comb-loop", "nlint-comb-loop",
       "two continuous assigns feed each other with no register in between"},
      {"double-driven-grant", "nlint-multiple-drivers",
       "two arbitration fragments both continuously drive one grant wire"},
      {"overlapping-onehot", "nlint-onehot-violation",
       "build_onehot_mux selects that are simultaneously high when both "
       "requests arrive"},
      {"width-truncating-mux-arm", "nlint-width-mismatch",
       "an 8-bit mux arm against a 16-bit arm, silently zero-extended"},
      {"undriven-net", "nlint-undriven-net",
       "a wire read by the output cone that nothing ever drives"},
      {"no-reset-feedback", "nlint-uninitialized-feedback",
       "a counter register on a feedback path with no reset value"},
  };
  return bugs;
}

const SeededBug* find_seeded_bug(std::string_view name) {
  for (const SeededBug& b : seeded_bugs()) {
    if (name == b.name) return &b;
  }
  return nullptr;
}

rtl::Module& build_seeded_bug(rtl::Design& design, std::string_view name) {
  if (name == "comb-loop") {
    rtl::Module& m = design.add_module("seeded_comb_loop");
    build_comb_loop(m);
    return m;
  }
  if (name == "double-driven-grant") {
    rtl::Module& m = design.add_module("seeded_double_driven_grant");
    build_double_driven_grant(m);
    return m;
  }
  if (name == "overlapping-onehot") {
    rtl::Module& m = design.add_module("seeded_overlapping_onehot");
    build_overlapping_onehot(m);
    return m;
  }
  if (name == "width-truncating-mux-arm") {
    rtl::Module& m = design.add_module("seeded_width_truncating_mux_arm");
    build_width_truncating_mux_arm(m);
    return m;
  }
  if (name == "undriven-net") {
    rtl::Module& m = design.add_module("seeded_undriven_net");
    build_undriven_net(m);
    return m;
  }
  if (name == "no-reset-feedback") {
    rtl::Module& m = design.add_module("seeded_no_reset_feedback");
    build_no_reset_feedback(m);
    return m;
  }
  throw std::invalid_argument("unknown seeded bug '" + std::string(name) +
                              "'");
}

}  // namespace hicsync::nlint
