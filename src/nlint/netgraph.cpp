#include "nlint/netgraph.h"

#include <algorithm>

namespace hicsync::nlint {
namespace {

void collect_refs(const rtl::RtlExpr& e, std::vector<int>& refs) {
  if (e.op == rtl::RtlOp::Ref) refs.push_back(e.net);
  for (const auto& a : e.args) collect_refs(*a, refs);
}

}  // namespace

NetGraph::NetGraph(const rtl::Module& module) : module_(module) {
  infos_.resize(module.nets().size());
  on_cycle_.assign(module.nets().size(), 0);
  index_drivers();
  find_cycles();
  fold_constants();
}

void NetGraph::index_drivers() {
  for (const rtl::Port& p : module_.ports()) {
    auto& inf = infos_[static_cast<std::size_t>(p.net)];
    if (p.dir == rtl::PortDir::Input) {
      inf.is_input = true;
    } else {
      inf.is_output = true;
    }
  }
  auto count_reads = [&](const rtl::RtlExpr* e) {
    if (e == nullptr) return;
    std::vector<int> refs;
    collect_refs(*e, refs);
    for (int r : refs) ++infos_[static_cast<std::size_t>(r)].reads;
  };
  const auto& assigns = module_.assigns();
  for (std::size_t i = 0; i < assigns.size(); ++i) {
    infos_[static_cast<std::size_t>(assigns[i].target)].cont_drivers.push_back(
        static_cast<int>(i));
    count_reads(assigns[i].value.get());
  }
  const auto& seqs = module_.seqs();
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    infos_[static_cast<std::size_t>(seqs[i].target)].seq_drivers.push_back(
        static_cast<int>(i));
    count_reads(seqs[i].value.get());
    count_reads(seqs[i].enable.get());
  }
  for (const rtl::Memory& m : module_.memories()) {
    for (const rtl::MemoryPort& p : m.ports) {
      if (p.read_data >= 0) {
        infos_[static_cast<std::size_t>(p.read_data)].mem_read = true;
      }
      count_reads(p.addr.get());
      count_reads(p.write_enable.get());
      count_reads(p.write_data.get());
    }
  }
}

bool NetGraph::driven(int net) const {
  const NetInfo& inf = info(net);
  return inf.is_input || inf.mem_read || !inf.cont_drivers.empty() ||
         !inf.seq_drivers.empty();
}

const rtl::RtlExpr* NetGraph::comb_driver(int net) const {
  const NetInfo& inf = info(net);
  if (inf.cont_drivers.empty()) return nullptr;
  return module_.assigns()[static_cast<std::size_t>(inf.cont_drivers.front())]
      .value.get();
}

void NetGraph::find_cycles() {
  // Net-level dependency graph restricted to continuously driven nets:
  // edge u -> v when v's driver reads u. Iterative Tarjan.
  const int n = net_count();
  std::vector<std::vector<int>> out_edges(static_cast<std::size_t>(n));
  std::vector<char> has_self(static_cast<std::size_t>(n), 0);
  for (int v = 0; v < n; ++v) {
    const rtl::RtlExpr* drv = comb_driver(v);
    if (drv == nullptr) continue;
    std::vector<int> refs;
    collect_refs(*drv, refs);
    std::sort(refs.begin(), refs.end());
    refs.erase(std::unique(refs.begin(), refs.end()), refs.end());
    for (int u : refs) {
      if (comb_driver(u) == nullptr && u != v) continue;
      out_edges[static_cast<std::size_t>(u)].push_back(v);
      if (u == v) has_self[static_cast<std::size_t>(u)] = 1;
    }
  }

  std::vector<int> index(static_cast<std::size_t>(n), -1);
  std::vector<int> lowlink(static_cast<std::size_t>(n), 0);
  std::vector<char> on_stack(static_cast<std::size_t>(n), 0);
  std::vector<int> stack;
  int next_index = 0;

  struct Frame {
    int v;
    std::size_t edge;
  };
  std::vector<Frame> call;
  std::vector<std::vector<int>> sccs;

  for (int root = 0; root < n; ++root) {
    if (index[static_cast<std::size_t>(root)] != -1) continue;
    if (comb_driver(root) == nullptr) continue;
    call.push_back(Frame{root, 0});
    while (!call.empty()) {
      Frame& f = call.back();
      auto uv = static_cast<std::size_t>(f.v);
      if (f.edge == 0) {
        index[uv] = lowlink[uv] = next_index++;
        stack.push_back(f.v);
        on_stack[uv] = 1;
      }
      bool descended = false;
      while (f.edge < out_edges[uv].size()) {
        int w = out_edges[uv][f.edge++];
        auto uw = static_cast<std::size_t>(w);
        if (index[uw] == -1) {
          call.push_back(Frame{w, 0});
          descended = true;
          break;
        }
        if (on_stack[uw]) {
          lowlink[uv] = std::min(lowlink[uv], index[uw]);
        }
      }
      if (descended) continue;
      if (lowlink[uv] == index[uv]) {
        std::vector<int> scc;
        while (true) {
          int w = stack.back();
          stack.pop_back();
          on_stack[static_cast<std::size_t>(w)] = 0;
          scc.push_back(w);
          if (w == f.v) break;
        }
        if (scc.size() > 1 || has_self[uv]) sccs.push_back(std::move(scc));
      }
      int child = f.v;
      call.pop_back();
      if (!call.empty()) {
        auto up = static_cast<std::size_t>(call.back().v);
        lowlink[up] = std::min(lowlink[up],
                               lowlink[static_cast<std::size_t>(child)]);
      }
    }
  }

  // Order each SCC along an actual cycle: walk in-SCC edges from the first
  // net until it closes.
  for (auto& scc : sccs) {
    std::vector<char> in_scc(static_cast<std::size_t>(n), 0);
    for (int v : scc) {
      in_scc[static_cast<std::size_t>(v)] = 1;
      on_cycle_[static_cast<std::size_t>(v)] = 1;
    }
    std::vector<int> ordered;
    std::vector<char> visited(static_cast<std::size_t>(n), 0);
    int cur = scc.front();
    while (!visited[static_cast<std::size_t>(cur)]) {
      visited[static_cast<std::size_t>(cur)] = 1;
      ordered.push_back(cur);
      int next = -1;
      for (int w : out_edges[static_cast<std::size_t>(cur)]) {
        if (in_scc[static_cast<std::size_t>(w)]) {
          next = w;
          break;
        }
      }
      if (next == -1) break;
      cur = next;
    }
    // Trim any lead-in so the listed path starts where the cycle closes.
    auto closing = std::find(ordered.begin(), ordered.end(), cur);
    if (closing != ordered.end() && closing != ordered.begin()) {
      ordered.erase(ordered.begin(), closing);
    }
    cycles_.push_back(std::move(ordered));
  }
  std::sort(cycles_.begin(), cycles_.end(),
            [](const std::vector<int>& a, const std::vector<int>& b) {
              return a.front() < b.front();
            });
}

void NetGraph::fold_constants() {
  has_const_.assign(static_cast<std::size_t>(net_count()), 0);
  const_.assign(static_cast<std::size_t>(net_count()), 0);
  // Memoized post-order over comb drivers; nets on cycles never fold.
  // state: 0 = unvisited, 1 = done (has_const_ says whether it folded).
  std::vector<char> state(static_cast<std::size_t>(net_count()), 0);
  std::vector<char> expanding(static_cast<std::size_t>(net_count()), 0);
  struct Item {
    int net;
    bool expand;
  };
  std::vector<Item> work;
  for (int root = 0; root < net_count(); ++root) {
    if (state[static_cast<std::size_t>(root)] != 0) continue;
    work.push_back(Item{root, true});
    while (!work.empty()) {
      Item it = work.back();
      work.pop_back();
      auto un = static_cast<std::size_t>(it.net);
      const rtl::RtlExpr* drv = comb_driver(it.net);
      if (it.expand) {
        if (state[un] != 0 || expanding[un] != 0) continue;
        if (drv == nullptr || on_cycle_[un] ||
            info(it.net).cont_drivers.size() > 1) {
          state[un] = 1;  // terminal or ambiguous: not a constant
          continue;
        }
        expanding[un] = 1;
        work.push_back(Item{it.net, false});
        std::vector<int> refs;
        collect_refs(*drv, refs);
        for (int r : refs) {
          if (state[static_cast<std::size_t>(r)] == 0) {
            work.push_back(Item{r, true});
          }
        }
        continue;
      }
      expanding[un] = 0;
      state[un] = 1;
      std::optional<std::uint64_t> value = fold(*drv);
      if (value.has_value()) {
        has_const_[un] = 1;
        const_[un] = mask_width(*value, module_.net(it.net).width);
      }
    }
  }
}

std::optional<std::uint64_t> NetGraph::const_value(int net) const {
  if (has_const_[static_cast<std::size_t>(net)] != 0) {
    return const_[static_cast<std::size_t>(net)];
  }
  return std::nullopt;
}

std::optional<std::uint64_t> NetGraph::fold(const rtl::RtlExpr& e) const {
  using rtl::RtlOp;
  auto fold1 = [&](const rtl::RtlExpr& a) { return fold(a); };
  switch (e.op) {
    case RtlOp::Const:
      return mask_width(e.value, e.width);
    case RtlOp::Ref:
      return const_value(e.net);
    case RtlOp::Slice: {
      auto v = fold1(*e.args[0]);
      if (!v) return std::nullopt;
      return mask_width(*v >> e.lo, e.hi - e.lo + 1);
    }
    case RtlOp::Concat: {
      std::uint64_t v = 0;
      for (const auto& a : e.args) {
        auto p = fold1(*a);
        if (!p) return std::nullopt;
        v = (v << a->width) | mask_width(*p, a->width);
      }
      return mask_width(v, e.width);
    }
    case RtlOp::Not: {
      auto v = fold1(*e.args[0]);
      if (!v) return std::nullopt;
      return mask_width(~*v, e.width);
    }
    case RtlOp::And: {
      auto a = fold1(*e.args[0]);
      auto b = fold1(*e.args[1]);
      if (a && *a == 0) return 0;
      if (b && *b == 0) return 0;
      if (a && b) return mask_width(*a & *b, e.width);
      return std::nullopt;
    }
    case RtlOp::Or: {
      auto a = fold1(*e.args[0]);
      auto b = fold1(*e.args[1]);
      if (a && b) return mask_width(*a | *b, e.width);
      return std::nullopt;
    }
    case RtlOp::Xor: {
      auto a = fold1(*e.args[0]);
      auto b = fold1(*e.args[1]);
      if (a && b) return mask_width(*a ^ *b, e.width);
      return std::nullopt;
    }
    case RtlOp::Add: {
      auto a = fold1(*e.args[0]);
      auto b = fold1(*e.args[1]);
      if (a && b) return mask_width(*a + *b, e.width);
      return std::nullopt;
    }
    case RtlOp::Sub: {
      auto a = fold1(*e.args[0]);
      auto b = fold1(*e.args[1]);
      if (a && b) return mask_width(*a - *b, e.width);
      return std::nullopt;
    }
    case RtlOp::Eq:
    case RtlOp::Ne:
    case RtlOp::Lt:
    case RtlOp::Le: {
      auto a = fold1(*e.args[0]);
      auto b = fold1(*e.args[1]);
      if (!a || !b) return std::nullopt;
      switch (e.op) {
        case RtlOp::Eq:
          return *a == *b ? 1 : 0;
        case RtlOp::Ne:
          return *a != *b ? 1 : 0;
        case RtlOp::Lt:
          return *a < *b ? 1 : 0;
        default:
          return *a <= *b ? 1 : 0;
      }
    }
    case RtlOp::Shl: {
      auto a = fold1(*e.args[0]);
      auto b = fold1(*e.args[1]);
      if (a && b) return mask_width(*a << *b, e.width);
      return std::nullopt;
    }
    case RtlOp::Shr: {
      auto a = fold1(*e.args[0]);
      auto b = fold1(*e.args[1]);
      if (a && b) return mask_width(*a >> *b, e.width);
      return std::nullopt;
    }
    case RtlOp::Mux: {
      auto s = fold1(*e.args[0]);
      if (s) {
        auto arm = fold1(*s != 0 ? *e.args[1] : *e.args[2]);
        if (arm) return mask_width(*arm, e.width);
        return std::nullopt;
      }
      auto a = fold1(*e.args[1]);
      auto b = fold1(*e.args[2]);
      if (a && b && mask_width(*a, e.width) == mask_width(*b, e.width)) {
        return mask_width(*a, e.width);
      }
      return std::nullopt;
    }
    case RtlOp::ReduceOr: {
      auto v = fold1(*e.args[0]);
      if (!v) return std::nullopt;
      return mask_width(*v, e.args[0]->width) != 0 ? 1 : 0;
    }
    case RtlOp::ReduceAnd: {
      auto v = fold1(*e.args[0]);
      if (!v) return std::nullopt;
      return mask_width(*v, e.args[0]->width) ==
                     mask_width(~0ULL, e.args[0]->width)
                 ? 1
                 : 0;
    }
  }
  return std::nullopt;
}

std::vector<int> NetGraph::cone_support(const std::vector<int>& roots) const {
  std::vector<char> seen(static_cast<std::size_t>(net_count()), 0);
  std::vector<int> support;
  std::vector<int> work = roots;
  while (!work.empty()) {
    int v = work.back();
    work.pop_back();
    auto uv = static_cast<std::size_t>(v);
    if (seen[uv] != 0) continue;
    seen[uv] = 1;
    const rtl::RtlExpr* drv = comb_driver(v);
    if (drv == nullptr) {
      support.push_back(v);
      continue;
    }
    std::vector<int> refs;
    collect_refs(*drv, refs);
    for (int r : refs) work.push_back(r);
  }
  std::sort(support.begin(), support.end());
  return support;
}

}  // namespace hicsync::nlint
