// hic-bound: sound static bounds where hic-verify enumerates.
//
// The checker (verify/checker.h) answers occupancy, blocking, and
// deadlock questions *exactly* by exploring the reachable product state
// space — exponential in the thread count, so a 1024-consumer fan-out
// exhausts any state budget. This facade answers the first two questions
// with sound over-approximations computed by abstract interpretation over
// the per-thread CFGs (bound/engine.h): milliseconds at 1024 consumers,
// and every reported interval provably contains the checker's exact value
// (the differential suite in tests/bound asserts this on every fixture the
// checker can finish).
//
// Three clients (each its own translation unit):
//  1. occupancy.h — dependency-list occupancy vs generated CAM capacity,
//     plus memalloc::DepListHints that let the generators shrink the
//     dependency list and drop dead pseudo-ports;
//  2. blocking.h — per-consumer worst-case blocking boundedness and a
//     saturating steps/cycles bound;
//  3. deadport.h — pseudo-ports that can never raise a request, with an
//     estimated flip-flop saving (Tables 1–2 tightening).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bound/blocking.h"
#include "bound/counters.h"
#include "bound/deadport.h"
#include "bound/occupancy.h"
#include "memalloc/allocator.h"
#include "memalloc/portplan.h"
#include "support/diagnostics.h"
#include "verify/model.h"

namespace hicsync::bound {

struct BoundOptions {
  bool enabled = false;
  /// Feed shrinking DepListHints into the memory-organization generators
  /// (drops provably dead dependency entries and their pseudo-ports).
  bool apply_sizing = true;
  /// Collect per-derivation provenance traces (hic-bound --explain).
  bool explain = false;
};

/// All static bounds for one memory organization.
struct BoundResult {
  sim::OrgKind organization = sim::OrgKind::Arbitrated;

  std::vector<OccupancyBound> occupancy;
  std::vector<BlockingStaticBound> blocking;
  std::vector<DeadPortReport> dead_ports;
  /// Hints that actually shrink something, for memalloc::apply_dep_list_hint.
  std::vector<memalloc::DepListHint> sizing_hints;

  /// Total worklist iterations across every per-thread solve (profiling).
  std::uint64_t worklist_steps = 0;
  /// Any per-thread solve hit the widening threshold.
  bool widened = false;

  /// Occupancy hi ≤ capacity (arbitrated) / slot hi < total (event-driven)
  /// on every controller.
  [[nodiscard]] bool all_within_capacity() const;
  [[nodiscard]] bool all_blocking_bounded() const;

  [[nodiscard]] std::string text() const;
  [[nodiscard]] std::string json() const;
  /// Provenance traces, one block per derivation (--explain).
  [[nodiscard]] std::string explain_text() const;
};

/// Runs every client for one organization. `sema` must have run
/// successfully; `map`/`plans` from the allocator and port planner.
[[nodiscard]] BoundResult run_bound(
    const hic::Program& program, const hic::Sema& sema,
    const memalloc::MemoryMap& map,
    const std::vector<memalloc::BramPortPlan>& plans,
    sim::OrgKind organization, const BoundOptions& options);

/// Reports the result's findings into `diags` with stable check IDs
/// (bound-occupancy-exceeds-capacity, bound-dead-dependency,
/// bound-blocking-unbounded, bound-dead-port; see docs/DIAGNOSTICS.md).
/// Returns the number of error-severity findings (drivers map it to exit
/// code 6).
std::size_t report_findings(const BoundResult& result, const hic::Sema& sema,
                            support::DiagnosticEngine& diags);

}  // namespace hicsync::bound
