// hic-bound client 2: static worst-case blocking bounds per consumer.
//
// hic-verify computes the exact worst-case number of steps a consumer can
// spend blocked at its guarded read by enumerating the blocked region of
// the reachable state graph — unaffordable past a few dozen threads. This
// client answers the same boundedness question (and a sound steps/cycles
// bound) in polynomial time:
//
// Freeze consumer c at its read of d0. The read stays blocked only while
// its guard never becomes enabled, which pins the abstract controller
// state (countdown(d0) = 0 for arbitrated — so no produce or consume of
// d0 happens at all; the schedule of c's controller parked short of c's
// slot for event-driven — so no op of that controller happens at all).
// Blocking is unbounded exactly when some other thread can take
// infinitely many steps under that freeze. A greatest-fixpoint liveness
// computation over the thread CFGs (with the Exit→Entry restart edge)
// over-approximates "can move infinitely often":
//   * thread t is live iff its CFG restricted to usable nodes has a cycle;
//   * arbitrated: an op on d0 is never usable; produce(e) is usable iff
//     some consumer ≠ c can cycle through a consume of e (the countdown
//     must drain each round — the abstract model does not track *which*
//     consumer decrements, so one live consumer suffices); consume(e) is
//     usable iff e's producer is live and its produce is usable;
//   * event-driven: an op on controller X is usable iff every slot owner
//     of X is live (a full schedule round needs every slot exercised);
//     c's own controller is never usable.
// Every rule over-approximates recurrence in hic-verify's semantics, so
// "no thread live" soundly implies the checker's bounded verdict, and the
// reported steps bound (product of the other threads' CFG sizes and the
// controller state counts, saturating) dominates the checker's exact
// longest blocked path. The differential suite asserts both containments
// on every fixture where the checker terminates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bound/counters.h"
#include "verify/model.h"

namespace hicsync::bound {

/// Static blocking bound of one consumer endpoint.
struct BlockingStaticBound {
  std::string dep;
  std::string thread;
  int consumer = -1;
  bool bounded = false;
  /// Sound upper bound on steps other threads take while this consumer
  /// stays blocked; kInf when the (finite) bound saturated 64 bits.
  std::uint64_t steps = 0;
  /// (steps + 1) * (fairness window + 1), saturating — comparable to
  /// verify::BlockingBound::cycles.
  std::uint64_t cycles = 0;
  bool saturated = false;
  std::string note;  // why unbounded, when !bounded
  std::vector<std::string> provenance;  // fixpoint trace (--explain)
};

/// Runs the blocking client for every consumer endpoint of `model`.
[[nodiscard]] std::vector<BlockingStaticBound> blocking_bounds(
    const verify::ProgramModel& model, bool explain);

}  // namespace hicsync::bound
