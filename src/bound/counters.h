// hic-bound: per-pass synchronization-op counting, the shared front half
// of every client analysis.
//
// For each thread the engine runs an interval analysis whose abstract
// value is a vector of counters, one per sync op the thread performs
// (produce of dependency d / consume endpoint (d, k)). The transfer
// function of a node adds 1 to each counter of the node's ops; branches
// join, loops widen. The OUT value at Exit is then the per-pass count
// interval of every op — [1,1] for an unavoidable straight-line op,
// [0,1] for one under a branch, [0,inf) for one inside a loop, and a
// counter whose every site is unreachable stays 0 with `reachable`
// false.
//
// Branch conditions are nondeterministic in the model (exactly as in
// hic-verify), so these counts over-approximate every real execution:
// trip counts are never trusted, which is what keeps the clients' bounds
// ≥ the checker's exact values.
#pragma once

#include <cstdint>
#include <vector>

#include "bound/lattice.h"
#include "verify/model.h"

namespace hicsync::bound {

/// One tracked sync op of one thread, with its per-pass count interval.
struct OpCount {
  verify::SyncOp::Kind kind = verify::SyncOp::Kind::Consume;
  int dep = -1;       // index into ProgramModel::deps()
  int consumer = -1;  // Consume: index within the dependency's consumers
  /// True when at least one CFG site of this op is reachable from the
  /// thread entry.
  bool reachable = false;
  /// Executions per run-to-completion pass of the thread.
  Interval per_pass = Interval::exact(0);
};

/// Counter summary of one thread.
struct ThreadCounters {
  int thread = -1;
  std::vector<OpCount> ops;
  std::uint64_t worklist_steps = 0;
  bool widened = false;

  [[nodiscard]] const OpCount* find(verify::SyncOp::Kind kind, int dep,
                                    int consumer) const;
};

/// Runs the counter analysis for every thread of `model`.
[[nodiscard]] std::vector<ThreadCounters> count_sync_ops(
    const verify::ProgramModel& model);

}  // namespace hicsync::bound
