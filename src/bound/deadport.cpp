#include "bound/deadport.h"

#include "support/bits.h"
#include "support/strings.h"

namespace hicsync::bound {

namespace {

/// Index of `dep` in the model's dependency table (pointer identity, id
/// fallback for plans built from a different sema pass).
int dep_index(const verify::ProgramModel& model, const hic::Dependency* dep) {
  for (std::size_t i = 0; i < model.deps().size(); ++i) {
    if (model.deps()[i].dep == dep) return static_cast<int>(i);
  }
  for (std::size_t i = 0; i < model.deps().size(); ++i) {
    if (model.deps()[i].dep != nullptr && dep != nullptr &&
        model.deps()[i].dep->id == dep->id) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

bool produce_reachable(const verify::ProgramModel& model,
                       const std::vector<ThreadCounters>& counters, int di) {
  const verify::DepModel& dm = model.deps()[static_cast<std::size_t>(di)];
  if (dm.producer_thread < 0) return false;
  const OpCount* oc =
      counters[static_cast<std::size_t>(dm.producer_thread)].find(
          verify::SyncOp::Kind::Produce, di, -1);
  return oc != nullptr && oc->reachable;
}

bool consume_reachable(const verify::ProgramModel& model,
                       const std::vector<ThreadCounters>& counters, int di,
                       int thread) {
  const verify::DepModel& dm = model.deps()[static_cast<std::size_t>(di)];
  for (std::size_t k = 0; k < dm.consume_sites.size(); ++k) {
    if (dm.consume_sites[k].thread != thread) continue;
    const OpCount* oc = counters[static_cast<std::size_t>(thread)].find(
        verify::SyncOp::Kind::Consume, di, static_cast<int>(k));
    if (oc != nullptr && oc->reachable) return true;
  }
  return false;
}

bool any_consume_reachable(const verify::ProgramModel& model,
                           const std::vector<ThreadCounters>& counters,
                           int di) {
  const verify::DepModel& dm = model.deps()[static_cast<std::size_t>(di)];
  for (const verify::DepModel::ConsumeSite& site : dm.consume_sites) {
    if (site.thread < 0) continue;
    if (consume_reachable(model, counters, di, site.thread)) return true;
  }
  return false;
}

}  // namespace

std::vector<DeadPortReport> dead_ports(
    const verify::ProgramModel& model,
    const std::vector<memalloc::BramPortPlan>& plans,
    const std::vector<ThreadCounters>& counters) {
  std::vector<DeadPortReport> out;
  for (const memalloc::BramPortPlan& plan : plans) {
    DeadPortReport rep;
    rep.bram_id = plan.bram_id;
    rep.planned_consumer_ports = plan.consumer_pseudo_ports();
    rep.planned_producer_ports = plan.producer_pseudo_ports();
    rep.live_consumer_ports = rep.planned_consumer_ports;
    rep.live_producer_ports = rep.planned_producer_ports;

    // Fully-dead dependency entries on this BRAM (counted once per BRAM,
    // not per port they feed).
    std::uint64_t dead_entry_bits = 0;
    for (std::size_t di = 0; di < model.deps().size(); ++di) {
      const verify::DepModel& dm = model.deps()[di];
      if (dm.controller < 0 ||
          model.controllers()[static_cast<std::size_t>(dm.controller)]
                  .bram_id != plan.bram_id) {
        continue;
      }
      if (!produce_reachable(model, counters, static_cast<int>(di)) &&
          !any_consume_reachable(model, counters, static_cast<int>(di))) {
        // Countdown register + valid bit of the §3.1 dependency list.
        dead_entry_bits +=
            static_cast<std::uint64_t>(support::clog2_at_least1(
                static_cast<std::uint64_t>(
                    dm.dependency_number > 0 ? dm.dependency_number : 1) +
                1)) +
            1;
      }
    }

    for (const memalloc::PortClient& client : plan.clients) {
      if (client.port != memalloc::LogicalPort::C &&
          client.port != memalloc::LogicalPort::D) {
        continue;
      }
      int ti = model.thread_index(client.thread);
      if (ti < 0) continue;
      bool any_live = false;
      bool all_fully_dead = !client.deps.empty();
      for (const hic::Dependency* dep : client.deps) {
        int di = dep_index(model, dep);
        if (di < 0) {
          all_fully_dead = false;
          continue;
        }
        bool site_live =
            client.port == memalloc::LogicalPort::C
                ? consume_reachable(model, counters, di, ti)
                : produce_reachable(model, counters, di) &&
                      model.deps()[static_cast<std::size_t>(di)]
                              .producer_thread == ti;
        if (site_live) any_live = true;
        if (produce_reachable(model, counters, di) ||
            any_consume_reachable(model, counters, di)) {
          all_fully_dead = false;
        }
      }
      if (any_live) continue;

      DeadPort dp;
      dp.bram_id = plan.bram_id;
      dp.thread = client.thread;
      dp.port = client.port;
      dp.pseudo_port = client.pseudo_port;
      dp.prunable = all_fully_dead;
      dp.note = support::format(
          "%s pseudo-port %d of thread '%s' on bram%d never raises a "
          "request (no reachable %s site)%s",
          memalloc::to_string(client.port), client.pseudo_port,
          client.thread.c_str(), plan.bram_id,
          client.port == memalloc::LogicalPort::C ? "consume" : "produce",
          all_fully_dead ? "; its dependencies are fully dead, so the "
                           "sizing hint prunes it"
                         : "; kept — its dependencies still guard other "
                           "endpoints");
      if (client.port == memalloc::LogicalPort::C) {
        --rep.live_consumer_ports;
      } else {
        --rep.live_producer_ports;
      }
      rep.ff_bits_saved += 1;  // the port's eligibility FF
      rep.dead.push_back(std::move(dp));
    }
    if (!rep.dead.empty()) rep.ff_bits_saved += dead_entry_bits;
    if (!rep.dead.empty() || dead_entry_bits > 0) out.push_back(rep);
  }
  return out;
}

}  // namespace hicsync::bound
