// hic-bound client 3: dead-port / dead-FF reachability tightening.
//
// The port planner attaches a C (consumer) or D (producer) pseudo-port for
// every thread that *syntactically* touches a dependency on a BRAM. The
// dataflow solver knows more: when none of a client's sync sites are
// reachable in its thread's CFG, the pseudo-port can never raise a request
// and its arbitration slot, eligibility register, and operand-mux leg are
// dead fabric — the Tables 1–2 area rows the ISSUE asks to tighten.
//
// This client is report-only by default: it names each dead pseudo-port
// and totals an estimated flip-flop saving (one eligibility FF per dead
// pseudo-port plus, for each fully-dead dependency entry, its countdown
// register of clog2(N+1) bits and valid bit — see memorg/arbitrated.cpp
// for the registers in question). Pruning itself happens through the
// memalloc::DepListHint path, which only removes clients whose every
// dependency is provably fully dead (behavior-preserving); a port that is
// dead but whose dependencies still guard live consumers is reported and
// kept.
#pragma once

#include <string>
#include <vector>

#include "bound/counters.h"
#include "memalloc/portplan.h"
#include "verify/model.h"

namespace hicsync::bound {

/// One pseudo-port the solver proved can never raise a request.
struct DeadPort {
  int bram_id = -1;
  std::string thread;
  memalloc::LogicalPort port = memalloc::LogicalPort::C;
  int pseudo_port = -1;
  /// Every dependency of the client is fully dead, so the DepListHint
  /// pruning will drop the client entirely.
  bool prunable = false;
  std::string note;
};

/// Dead-port findings for one BRAM's port plan.
struct DeadPortReport {
  int bram_id = -1;
  int planned_consumer_ports = 0;
  int planned_producer_ports = 0;
  int live_consumer_ports = 0;
  int live_producer_ports = 0;
  /// Estimated register bits freed if the dead ports and fully-dead
  /// entries are pruned (eligibility FFs + countdown/valid bits).
  std::uint64_t ff_bits_saved = 0;
  std::vector<DeadPort> dead;
};

/// Runs the dead-port client over every port plan.
[[nodiscard]] std::vector<DeadPortReport> dead_ports(
    const verify::ProgramModel& model,
    const std::vector<memalloc::BramPortPlan>& plans,
    const std::vector<ThreadCounters>& counters);

}  // namespace hicsync::bound
