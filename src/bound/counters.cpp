#include "bound/counters.h"

#include <map>
#include <tuple>

#include "bound/engine.h"

namespace hicsync::bound {

namespace {

/// Vector-of-intervals domain: one counter per tracked op of the thread.
class CounterDomain {
 public:
  using Value = std::vector<Interval>;

  CounterDomain(const verify::ThreadModel& tm, std::size_t num_counters,
                const std::map<std::tuple<int, int, int>, std::size_t>& index)
      : tm_(tm), num_(num_counters), index_(index) {}

  [[nodiscard]] Value bottom() const { return Value(num_, Interval::bottom()); }
  [[nodiscard]] Value entry_value() const {
    return Value(num_, Interval::exact(0));
  }
  bool join(Value& into, const Value& from) const {
    bool changed = false;
    for (std::size_t i = 0; i < num_; ++i) {
      changed = into[i].join_with(from[i]) || changed;
    }
    return changed;
  }
  void widen(Value& into, const Value& from) const {
    for (std::size_t i = 0; i < num_; ++i) into[i].widen_with(from[i]);
  }
  [[nodiscard]] Value transfer(const analysis::CfgNode& n,
                               const Value& in) const {
    Value out = in;
    for (const verify::SyncOp& op :
         tm_.nodes[static_cast<std::size_t>(n.id)].ops) {
      auto it = index_.find(key(op));
      if (it != index_.end()) out[it->second] = out[it->second].plus(1);
    }
    return out;
  }

  [[nodiscard]] static std::tuple<int, int, int> key(
      const verify::SyncOp& op) {
    return {static_cast<int>(op.kind), op.dep,
            op.kind == verify::SyncOp::Kind::Consume ? op.consumer : -1};
  }

 private:
  const verify::ThreadModel& tm_;
  std::size_t num_;
  const std::map<std::tuple<int, int, int>, std::size_t>& index_;
};

}  // namespace

const OpCount* ThreadCounters::find(verify::SyncOp::Kind kind, int dep,
                                    int consumer) const {
  for (const OpCount& oc : ops) {
    if (oc.kind == kind && oc.dep == dep &&
        (kind == verify::SyncOp::Kind::Produce || oc.consumer == consumer)) {
      return &oc;
    }
  }
  return nullptr;
}

std::vector<ThreadCounters> count_sync_ops(const verify::ProgramModel& model) {
  std::vector<ThreadCounters> out;
  for (std::size_t ti = 0; ti < model.threads().size(); ++ti) {
    const verify::ThreadModel& tm = model.threads()[ti];
    ThreadCounters tc;
    tc.thread = static_cast<int>(ti);

    // Aggregate duplicate sites (e.g. duplicate-producer-write fixtures)
    // into one counter per (kind, dep, consumer).
    std::map<std::tuple<int, int, int>, std::size_t> index;
    for (const verify::NodeModel& n : tm.nodes) {
      for (const verify::SyncOp& op : n.ops) {
        auto k = CounterDomain::key(op);
        if (index.find(k) == index.end()) {
          index.emplace(k, tc.ops.size());
          OpCount oc;
          oc.kind = op.kind;
          oc.dep = op.dep;
          oc.consumer = op.kind == verify::SyncOp::Kind::Consume
                            ? op.consumer
                            : -1;
          tc.ops.push_back(oc);
        }
      }
    }
    if (tc.ops.empty()) {
      out.push_back(std::move(tc));
      continue;
    }

    CounterDomain dom(tm, tc.ops.size(), index);
    auto result = WorklistSolver<CounterDomain>::solve(tm.cfg, dom);
    tc.worklist_steps = result.steps;
    tc.widened = result.widened;

    // Per-pass counts: the OUT of Exit. A thread that can never complete
    // a pass (Exit unreachable — e.g. an unconditional infinite loop)
    // leaves Exit at bottom; fall back to the join over every node so
    // in-loop ops still count.
    std::vector<Interval> at_exit =
        result.out[static_cast<std::size_t>(tm.cfg.exit())];
    if (!at_exit.empty() && at_exit[0].is_bottom()) {
      at_exit.assign(tc.ops.size(), Interval::bottom());
      for (std::size_t n = 0; n < result.out.size(); ++n) {
        for (std::size_t i = 0; i < tc.ops.size(); ++i) {
          at_exit[i].join_with(result.out[n][i]);
        }
      }
    }
    for (std::size_t i = 0; i < tc.ops.size(); ++i) {
      tc.ops[i].per_pass =
          at_exit[i].is_bottom() ? Interval::exact(0) : at_exit[i];
    }

    // Reachability per op: any site whose IN is non-bottom. (A counter can
    // be 0-valued at Exit yet reachable — op under a branch — and a
    // nonzero Exit interval of an aggregated counter does not say *which*
    // site ran, so reachability is judged at the sites.)
    for (std::size_t ni = 0; ni < tm.nodes.size(); ++ni) {
      if (result.in[ni].empty() || result.in[ni][0].is_bottom()) continue;
      for (const verify::SyncOp& op : tm.nodes[ni].ops) {
        auto it = index.find(CounterDomain::key(op));
        if (it != index.end()) tc.ops[it->second].reachable = true;
      }
    }
    out.push_back(std::move(tc));
  }
  return out;
}

}  // namespace hicsync::bound
