#include "bound/occupancy.h"

#include "support/strings.h"

namespace hicsync::bound {

OccupancyResult occupancy_bounds(const verify::ProgramModel& model,
                                 const std::vector<ThreadCounters>& counters,
                                 bool explain) {
  OccupancyResult r;
  for (std::size_t ci = 0; ci < model.controllers().size(); ++ci) {
    const verify::ControllerModel& cm = model.controllers()[ci];
    OccupancyBound ob;
    ob.bram_id = cm.bram_id;
    ob.controller = static_cast<int>(ci);
    ob.capacity = cm.cam_capacity;
    ob.total_slots = cm.total_slots;
    if (cm.total_slots > 0) {
      // The slot counter is a mod-total counter; its range needs no
      // fixpoint, only the modulus.
      ob.slot = Interval::range(
          0, static_cast<std::uint64_t>(cm.total_slots) - 1);
    }

    std::uint64_t open_hi = 0;
    for (int di : cm.deps) {
      const verify::DepModel& dm =
          model.deps()[static_cast<std::size_t>(di)];
      DepBound db;
      db.dep = di;
      db.id = dm.dep->id;

      const OpCount* prod =
          dm.producer_thread >= 0
              ? counters[static_cast<std::size_t>(dm.producer_thread)].find(
                    verify::SyncOp::Kind::Produce, di, -1)
              : nullptr;
      db.produces_per_pass =
          prod != nullptr ? prod->per_pass : Interval::exact(0);
      db.dead_produce = prod == nullptr || !prod->reachable;

      bool any_consume_reachable = false;
      for (std::size_t k = 0; k < dm.consume_sites.size(); ++k) {
        const verify::DepModel::ConsumeSite& site = dm.consume_sites[k];
        if (site.thread < 0) continue;
        const OpCount* cons =
            counters[static_cast<std::size_t>(site.thread)].find(
                verify::SyncOp::Kind::Consume, di, static_cast<int>(k));
        if (cons != nullptr && cons->reachable) any_consume_reachable = true;
      }
      db.fully_dead = db.dead_produce && !any_consume_reachable;

      db.counter.scale =
          static_cast<std::uint64_t>(dm.dependency_number > 0
                                         ? dm.dependency_number
                                         : 1);
      db.counter.rounds = db.dead_produce
                              ? Interval::exact(0)
                              : Interval::range(0, kInf);
      db.counter.drains =
          db.dead_produce ? Interval::exact(0)
                          : Interval::range(0, db.counter.scale);
      db.countdown = db.counter.countdown();
      if (!db.countdown.is_bottom() && db.countdown.hi > 0) ++open_hi;

      if (explain) {
        db.provenance.push_back(support::format(
            "produce('%s') per pass in %s (%s)", db.id.c_str(),
            db.produces_per_pass.str().c_str(),
            db.dead_produce ? "no reachable produce site"
                            : "reachable in the producer's CFG"));
        db.provenance.push_back(db.counter.str(db.id));
        db.provenance.push_back(support::format(
            "entry('%s') open (countdown > 0) in %s -> contributes %s to "
            "the occupancy sum",
            db.id.c_str(), db.countdown.str().c_str(),
            db.countdown.hi > 0 ? "[0, 1]" : "[0, 0]"));
      }
      ob.deps.push_back(std::move(db));
    }
    ob.occupancy = Interval::range(0, open_hi);

    memalloc::DepListHint hint;
    hint.bram_id = cm.bram_id;
    hint.capacity = cm.cam_capacity;
    hint.occupancy_hi = static_cast<int>(open_hi);
    for (const DepBound& db : ob.deps) {
      if (db.fully_dead) hint.dead_deps.push_back(db.id);
    }
    if (hint.shrinks()) r.hints.push_back(std::move(hint));
    r.controllers.push_back(std::move(ob));
  }
  return r;
}

}  // namespace hicsync::bound
