#include "bound/bound.h"

#include "support/json.h"
#include "support/strings.h"

namespace hicsync::bound {

bool BoundResult::all_within_capacity() const {
  for (const OccupancyBound& ob : occupancy) {
    if (organization == sim::OrgKind::Arbitrated) {
      if (ob.occupancy.hi > static_cast<std::uint64_t>(ob.capacity)) {
        return false;
      }
    } else if (ob.total_slots > 0 &&
               ob.slot.hi >= static_cast<std::uint64_t>(ob.total_slots)) {
      return false;
    }
  }
  return true;
}

bool BoundResult::all_blocking_bounded() const {
  for (const BlockingStaticBound& b : blocking) {
    if (!b.bounded) return false;
  }
  return true;
}

BoundResult run_bound(const hic::Program& program, const hic::Sema& sema,
                      const memalloc::MemoryMap& map,
                      const std::vector<memalloc::BramPortPlan>& plans,
                      sim::OrgKind organization,
                      const BoundOptions& options) {
  BoundResult r;
  r.organization = organization;

  verify::ProgramModel model =
      verify::ProgramModel::build(program, sema, map, plans, organization);

  std::vector<ThreadCounters> counters = count_sync_ops(model);
  for (const ThreadCounters& tc : counters) {
    r.worklist_steps += tc.worklist_steps;
    r.widened = r.widened || tc.widened;
  }

  OccupancyResult occ = occupancy_bounds(model, counters, options.explain);
  r.occupancy = std::move(occ.controllers);
  if (options.apply_sizing) r.sizing_hints = std::move(occ.hints);

  r.blocking = blocking_bounds(model, options.explain);
  r.dead_ports = dead_ports(model, plans, counters);
  return r;
}

std::size_t report_findings(const BoundResult& result, const hic::Sema& sema,
                            support::DiagnosticEngine& diags) {
  std::size_t errors = 0;
  auto dep_loc = [&](const std::string& dep_id) -> support::SourceLoc {
    for (const hic::Dependency& d : sema.dependencies()) {
      if (d.id == dep_id) return d.loc;
    }
    return {};
  };
  auto consumer_loc = [&](const std::string& dep_id,
                          const std::string& thread) -> support::SourceLoc {
    for (const hic::Dependency& d : sema.dependencies()) {
      if (d.id != dep_id) continue;
      for (const hic::DepConsumer& c : d.consumers) {
        if (c.thread == thread) return c.loc;
      }
    }
    return dep_loc(dep_id);
  };
  const char* org = sim::to_string(result.organization);

  for (const OccupancyBound& ob : result.occupancy) {
    bool exceeded =
        result.organization == sim::OrgKind::Arbitrated
            ? ob.occupancy.hi > static_cast<std::uint64_t>(ob.capacity)
            : (ob.total_slots > 0 &&
               ob.slot.hi >= static_cast<std::uint64_t>(ob.total_slots));
    if (exceeded) {
      diags.report(
          support::Severity::Error, {},
          result.organization == sim::OrgKind::Arbitrated
              ? support::format(
                    "bram%d dependency-list occupancy bound %s exceeds the "
                    "generated CAM capacity %d (%s organization)",
                    ob.bram_id, ob.occupancy.str().c_str(), ob.capacity, org)
              : support::format(
                    "bram%d slot bound %s exceeds the schedule length %d "
                    "(%s organization)",
                    ob.bram_id, ob.slot.str().c_str(), ob.total_slots, org),
          "bound-occupancy-exceeds-capacity");
      ++errors;
    }
    for (const DepBound& db : ob.deps) {
      if (!db.fully_dead) continue;
      diags.report(
          support::Severity::Warning, dep_loc(db.id),
          support::format(
              "dependency '%s' is dead code: no produce or consume of it is "
              "reachable; its bram%d list entry is removable (sizing hint)",
              db.id.c_str(), ob.bram_id),
          "bound-dead-dependency");
    }
  }

  for (const BlockingStaticBound& b : result.blocking) {
    if (b.bounded) continue;
    diags.report(
        support::Severity::Warning, consumer_loc(b.dep, b.thread),
        support::format("cannot statically bound the blocking of thread "
                        "'%s' at its read of '%s' (%s organization): %s",
                        b.thread.c_str(), b.dep.c_str(), org, b.note.c_str()),
        "bound-blocking-unbounded");
  }

  for (const DeadPortReport& rep : result.dead_ports) {
    for (const DeadPort& dp : rep.dead) {
      diags.report(support::Severity::Warning, {}, dp.note,
                   "bound-dead-port");
    }
  }
  return errors;
}

std::string BoundResult::text() const {
  std::string out;
  out += support::format(
      "bound: organization=%s worklist_steps=%llu%s\n",
      sim::to_string(organization),
      static_cast<unsigned long long>(worklist_steps),
      widened ? " (widened)" : "");
  for (const OccupancyBound& ob : occupancy) {
    if (organization == sim::OrgKind::Arbitrated) {
      out += support::format(
          "  bram%d: occupancy %s of capacity %d%s\n", ob.bram_id,
          ob.occupancy.str().c_str(), ob.capacity,
          ob.occupancy.hi <= static_cast<std::uint64_t>(ob.capacity)
              ? ""
              : " EXCEEDED");
    } else {
      out += support::format("  bram%d: slot %s of %d slot(s)\n", ob.bram_id,
                             ob.slot.str().c_str(), ob.total_slots);
    }
    for (const DepBound& db : ob.deps) {
      if (db.fully_dead) {
        out += support::format("    dep '%s': dead (entry removable)\n",
                               db.id.c_str());
      } else if (db.dead_produce) {
        out += support::format(
            "    dep '%s': no reachable produce (consumers would block)\n",
            db.id.c_str());
      }
    }
  }
  for (const BlockingStaticBound& b : blocking) {
    if (b.bounded) {
      if (b.saturated) {
        out += support::format(
            "  blocking '%s' @ %s: bounded (bound saturates 64 bits)\n",
            b.dep.c_str(), b.thread.c_str());
      } else {
        out += support::format(
            "  blocking '%s' @ %s: <= %llu step(s), <= %llu cycle(s)\n",
            b.dep.c_str(), b.thread.c_str(),
            static_cast<unsigned long long>(b.steps),
            static_cast<unsigned long long>(b.cycles));
      }
    } else {
      out += support::format("  blocking '%s' @ %s: UNBOUNDED (static) — %s\n",
                             b.dep.c_str(), b.thread.c_str(), b.note.c_str());
    }
  }
  for (const DeadPortReport& rep : dead_ports) {
    out += support::format(
        "  bram%d ports: %d/%d consumer, %d/%d producer live; ~%llu FF "
        "bit(s) removable\n",
        rep.bram_id, rep.live_consumer_ports, rep.planned_consumer_ports,
        rep.live_producer_ports, rep.planned_producer_ports,
        static_cast<unsigned long long>(rep.ff_bits_saved));
  }
  for (const memalloc::DepListHint& h : sizing_hints) {
    out += support::format(
        "  sizing hint: bram%d list %d -> occupancy hi %d, %zu dead "
        "entr%s\n",
        h.bram_id, h.capacity, h.occupancy_hi, h.dead_deps.size(),
        h.dead_deps.size() == 1 ? "y" : "ies");
  }
  return out;
}

std::string BoundResult::json() const {
  support::JsonWriter w;
  w.begin_object();
  w.key("organization").value(sim::to_string(organization));
  w.key("worklist_steps").value(worklist_steps);
  w.key("widened").value(widened);
  w.key("within_capacity").value(all_within_capacity());
  w.key("controllers").begin_array();
  for (const OccupancyBound& ob : occupancy) {
    w.begin_object();
    w.key("bram").value(ob.bram_id);
    w.key("cam_capacity").value(ob.capacity);
    w.key("occupancy_lo").value(ob.occupancy.lo);
    w.key("occupancy_hi").value(ob.occupancy.hi);
    w.key("slot_hi").value(ob.slot.hi);
    w.key("total_slots").value(ob.total_slots);
    w.key("deps").begin_array();
    for (const DepBound& db : ob.deps) {
      w.begin_object();
      w.key("dep").value(db.id);
      w.key("dead_produce").value(db.dead_produce);
      w.key("fully_dead").value(db.fully_dead);
      w.key("countdown_lo").value(db.countdown.lo);
      w.key("countdown_hi").value(db.countdown.hi);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("blocking").begin_array();
  for (const BlockingStaticBound& b : blocking) {
    w.begin_object();
    w.key("dep").value(b.dep);
    w.key("thread").value(b.thread);
    w.key("consumer").value(b.consumer);
    w.key("bounded").value(b.bounded);
    w.key("steps").value(b.steps);
    w.key("cycles").value(b.cycles);
    w.key("saturated").value(b.saturated);
    if (!b.note.empty()) w.key("note").value(b.note);
    w.end_object();
  }
  w.end_array();
  w.key("dead_ports").begin_array();
  for (const DeadPortReport& rep : dead_ports) {
    w.begin_object();
    w.key("bram").value(rep.bram_id);
    w.key("planned_consumer_ports").value(rep.planned_consumer_ports);
    w.key("live_consumer_ports").value(rep.live_consumer_ports);
    w.key("planned_producer_ports").value(rep.planned_producer_ports);
    w.key("live_producer_ports").value(rep.live_producer_ports);
    w.key("ff_bits_saved").value(rep.ff_bits_saved);
    w.key("ports").begin_array();
    for (const DeadPort& dp : rep.dead) {
      w.begin_object();
      w.key("thread").value(dp.thread);
      w.key("port").value(memalloc::to_string(dp.port));
      w.key("pseudo_port").value(dp.pseudo_port);
      w.key("prunable").value(dp.prunable);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("sizing_hints").begin_array();
  for (const memalloc::DepListHint& h : sizing_hints) {
    w.begin_object();
    w.key("bram").value(h.bram_id);
    w.key("capacity").value(h.capacity);
    w.key("occupancy_hi").value(h.occupancy_hi);
    w.key("dead_deps").begin_array();
    for (const std::string& d : h.dead_deps) w.value(d);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string BoundResult::explain_text() const {
  std::string out;
  for (const OccupancyBound& ob : occupancy) {
    for (const DepBound& db : ob.deps) {
      if (db.provenance.empty()) continue;
      out += support::format("bram%d dep '%s':\n", ob.bram_id,
                             db.id.c_str());
      for (const std::string& line : db.provenance) {
        out += "  " + line + "\n";
      }
    }
  }
  for (const BlockingStaticBound& b : blocking) {
    if (b.provenance.empty()) continue;
    out += support::format("blocking '%s' @ %s:\n", b.dep.c_str(),
                           b.thread.c_str());
    for (const std::string& line : b.provenance) {
      out += "  " + line + "\n";
    }
  }
  return out;
}

}  // namespace hicsync::bound
