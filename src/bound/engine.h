// hic-bound: generic monotone worklist solver over a thread CFG.
//
// Forward dataflow in the classic Kildall shape: per-node IN/OUT values
// over an abstract domain, iterated to fixpoint in reverse post-order
// (analysis::Cfg::reverse_post_order, the order that settles acyclic
// regions in one sweep). Nodes whose OUT keeps changing past
// kWidenThreshold updates are widened — with the interval domain that
// means loops (for/while back edges) converge after one extra visit
// instead of ascending forever.
//
// Domain concept (see counters.cpp for the canonical instantiation):
//   using Value = ...;                      // copyable
//   Value bottom() const;                   // join identity / unreachable
//   Value entry_value() const;              // state at the thread entry
//   bool  join(Value& into, const Value& from) const;   // true if grown
//   void  widen(Value& into, const Value& from) const;
//   Value transfer(const analysis::CfgNode& n, const Value& in) const;
//
// Every transfer must be monotone and every widening must bound ascending
// chains; under those two conditions solve() terminates with a sound
// post-fixpoint (docs/ANALYSIS.md walks through the argument and through
// writing a new client).
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/cfg.h"

namespace hicsync::bound {

template <typename Domain>
class WorklistSolver {
 public:
  struct Result {
    std::vector<typename Domain::Value> in;
    std::vector<typename Domain::Value> out;
    /// Node visits until fixpoint (profiled as bound.worklist_steps).
    std::uint64_t steps = 0;
    /// True when any node needed widening (a loop carried the counters).
    bool widened = false;
  };

  /// OUT updates per node before widening kicks in. Three lets the common
  /// straight-line and single-loop shapes settle exactly before any
  /// precision is given up.
  static constexpr int kWidenThreshold = 3;

  [[nodiscard]] static Result solve(const analysis::Cfg& cfg,
                                    const Domain& dom) {
    const std::size_t n = cfg.nodes().size();
    Result r;
    r.in.assign(n, dom.bottom());
    r.out.assign(n, dom.bottom());

    // Priority worklist keyed by RPO position: always settle the earliest
    // pending node, so acyclic stretches are single-pass.
    std::vector<int> rpo = cfg.reverse_post_order();
    std::vector<int> pos(n, static_cast<int>(n));
    for (std::size_t i = 0; i < rpo.size(); ++i) {
      pos[static_cast<std::size_t>(rpo[i])] = static_cast<int>(i);
    }
    std::vector<char> pending(n, 0);
    std::vector<int> updates(n, 0);

    auto push = [&](int id) { pending[static_cast<std::size_t>(id)] = 1; };
    push(cfg.entry());

    while (true) {
      // Lowest-RPO pending node; n is tiny per thread, linear scan wins.
      int node = -1;
      for (int cand : rpo) {
        if (pending[static_cast<std::size_t>(cand)]) {
          node = cand;
          break;
        }
      }
      if (node < 0) break;
      std::size_t ni = static_cast<std::size_t>(node);
      pending[ni] = 0;
      ++r.steps;

      typename Domain::Value in_v =
          node == cfg.entry() ? dom.entry_value() : dom.bottom();
      for (int pred : cfg.node(node).preds) {
        dom.join(in_v, r.out[static_cast<std::size_t>(pred)]);
      }
      r.in[ni] = in_v;

      typename Domain::Value out_v = dom.transfer(cfg.node(node), in_v);
      typename Domain::Value merged = r.out[ni];
      if (!dom.join(merged, out_v)) continue;
      if (++updates[ni] > kWidenThreshold) {
        // Widen the previous OUT against the grown one: any bound still
        // moving jumps to its extreme (result ⊇ merged, so still sound).
        dom.widen(r.out[ni], merged);
        r.widened = true;
      } else {
        r.out[ni] = merged;
      }
      for (int succ : cfg.node(node).succs) push(succ);
    }
    return r;
  }
};

}  // namespace hicsync::bound
