#include "bound/lattice.h"

#include "support/strings.h"

namespace hicsync::bound {

std::string Interval::str() const {
  if (is_bottom()) return "empty";
  if (hi == kInf) {
    return support::format("[%llu, inf)", static_cast<unsigned long long>(lo));
  }
  return support::format("[%llu, %llu]", static_cast<unsigned long long>(lo),
                         static_cast<unsigned long long>(hi));
}

std::string AffineCounter::str(const std::string& dep_id) const {
  return support::format(
      "countdown(%s) = %llu*rounds - drains, rounds in %s, drains/pass in "
      "%s, guard-invariant clamp -> %s",
      dep_id.c_str(), static_cast<unsigned long long>(scale),
      rounds.str().c_str(), drains.str().c_str(), countdown().str().c_str());
}

}  // namespace hicsync::bound
