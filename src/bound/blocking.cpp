#include "bound/blocking.h"

#include <algorithm>

#include "bound/lattice.h"
#include "support/strings.h"

namespace hicsync::bound {

namespace {

using verify::SyncOp;

/// Marks the nodes of one thread graph (successors from NodeModel, which
/// include the Exit→Entry restart edge) that lie on a cycle made of
/// usable nodes. Iterative Tarjan; a node is "on a cycle" when its SCC is
/// nontrivial or it has a usable self-loop.
std::vector<char> cycle_nodes(const verify::ThreadModel& tm,
                              const std::vector<char>& usable) {
  const std::size_t n = tm.nodes.size();
  std::vector<std::int32_t> index(n, -1);
  std::vector<std::int32_t> lowlink(n, -1);
  std::vector<char> on_stack(n, 0);
  std::vector<std::int32_t> comp(n, -1);
  std::vector<std::int32_t> stack;
  std::vector<std::int32_t> comp_size;
  std::int32_t counter = 0;

  struct Frame {
    std::int32_t v;
    std::size_t next = 0;
  };
  for (std::size_t v0 = 0; v0 < n; ++v0) {
    if (!usable[v0] || index[v0] >= 0) continue;
    std::vector<Frame> dfs;
    dfs.push_back({static_cast<std::int32_t>(v0)});
    index[v0] = lowlink[v0] = counter++;
    stack.push_back(static_cast<std::int32_t>(v0));
    on_stack[v0] = 1;
    while (!dfs.empty()) {
      Frame& f = dfs.back();
      const auto& succs = tm.nodes[static_cast<std::size_t>(f.v)].succs;
      bool descended = false;
      while (f.next < succs.size()) {
        std::size_t w = static_cast<std::size_t>(succs[f.next]);
        ++f.next;
        if (!usable[w]) continue;
        if (index[w] < 0) {
          index[w] = lowlink[w] = counter++;
          stack.push_back(static_cast<std::int32_t>(w));
          on_stack[w] = 1;
          dfs.push_back({static_cast<std::int32_t>(w)});
          descended = true;
          break;
        }
        if (on_stack[w]) {
          lowlink[static_cast<std::size_t>(f.v)] =
              std::min(lowlink[static_cast<std::size_t>(f.v)], index[w]);
        }
      }
      if (descended) continue;
      std::int32_t v = f.v;
      dfs.pop_back();
      if (!dfs.empty()) {
        std::size_t p = static_cast<std::size_t>(dfs.back().v);
        lowlink[p] =
            std::min(lowlink[p], lowlink[static_cast<std::size_t>(v)]);
      }
      if (lowlink[static_cast<std::size_t>(v)] ==
          index[static_cast<std::size_t>(v)]) {
        std::int32_t c = static_cast<std::int32_t>(comp_size.size());
        comp_size.push_back(0);
        while (true) {
          std::int32_t w = stack.back();
          stack.pop_back();
          on_stack[static_cast<std::size_t>(w)] = 0;
          comp[static_cast<std::size_t>(w)] = c;
          ++comp_size.back();
          if (w == v) break;
        }
      }
    }
  }

  std::vector<char> on_cycle(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    if (!usable[v] || comp[v] < 0) continue;
    if (comp_size[static_cast<std::size_t>(comp[v])] > 1) {
      on_cycle[v] = 1;
      continue;
    }
    for (int s : tm.nodes[v].succs) {
      if (static_cast<std::size_t>(s) == v && usable[v]) on_cycle[v] = 1;
    }
  }
  return on_cycle;
}

struct EndpointAnalysis {
  const verify::ProgramModel& model;
  int d0;       // frozen dependency
  int c;        // frozen consumer thread
  bool explain;
  BlockingStaticBound* out;

  // Dep-level usability (arbitrated) / controller usability (event-driven),
  // shrunk to a greatest fixpoint.
  std::vector<char> produce_usable;
  std::vector<char> consume_usable;
  std::vector<char> controller_usable;
  std::vector<char> live;
  std::vector<std::vector<char>> on_cycle;  // per thread, per node

  bool op_usable(const SyncOp& op) const {
    if (model.organization() == sim::OrgKind::Arbitrated) {
      return op.kind == SyncOp::Kind::Produce
                 ? produce_usable[static_cast<std::size_t>(op.dep)] != 0
                 : consume_usable[static_cast<std::size_t>(op.dep)] != 0;
    }
    return controller_usable[static_cast<std::size_t>(op.controller)] != 0;
  }

  void recompute_threads() {
    for (std::size_t t = 0; t < model.threads().size(); ++t) {
      const verify::ThreadModel& tm = model.threads()[t];
      if (static_cast<int>(t) == c) {
        live[t] = 0;
        std::fill(on_cycle[t].begin(), on_cycle[t].end(), 0);
        continue;
      }
      std::vector<char> usable(tm.nodes.size(), 1);
      for (std::size_t n = 0; n < tm.nodes.size(); ++n) {
        for (const SyncOp& op : tm.nodes[n].ops) {
          if (!op_usable(op)) usable[n] = 0;
        }
      }
      on_cycle[t] = cycle_nodes(tm, usable);
      live[t] = 0;
      for (char oc : on_cycle[t]) {
        if (oc) live[t] = 1;
      }
    }
  }

  /// Some consumer endpoint of dep e, other than the frozen thread, can
  /// cycle through its consume site (so the countdown of e can drain
  /// every round).
  bool drain_ok(int e) const {
    const verify::DepModel& dm = model.deps()[static_cast<std::size_t>(e)];
    for (const verify::DepModel::ConsumeSite& site : dm.consume_sites) {
      if (site.thread < 0 || site.thread == c || site.node < 0) continue;
      if (on_cycle[static_cast<std::size_t>(site.thread)]
                  [static_cast<std::size_t>(site.node)]) {
        return true;
      }
    }
    return false;
  }

  void run() {
    const std::size_t nd = model.deps().size();
    const std::size_t nc = model.controllers().size();
    produce_usable.assign(nd, 1);
    consume_usable.assign(nd, 1);
    controller_usable.assign(nc, 1);
    live.assign(model.threads().size(), 1);
    on_cycle.assign(model.threads().size(), {});

    const verify::DepModel& frozen =
        model.deps()[static_cast<std::size_t>(d0)];
    if (model.organization() == sim::OrgKind::Arbitrated) {
      // The guard stays disabled only while countdown(d0) == 0, which
      // rules out every op on d0 for the whole blocked stretch.
      produce_usable[static_cast<std::size_t>(d0)] = 0;
      consume_usable[static_cast<std::size_t>(d0)] = 0;
    } else if (frozen.controller >= 0) {
      // The schedule of c's controller is parked short of c's slot; no op
      // of that controller can happen without first enabling the guard.
      controller_usable[static_cast<std::size_t>(frozen.controller)] = 0;
    }

    int round = 0;
    bool changed = true;
    while (changed) {
      ++round;
      recompute_threads();
      changed = false;
      if (model.organization() == sim::OrgKind::Arbitrated) {
        for (std::size_t e = 0; e < nd; ++e) {
          const verify::DepModel& dm = model.deps()[e];
          if (produce_usable[e] && !drain_ok(static_cast<int>(e))) {
            produce_usable[e] = 0;
            changed = true;
            if (explain) {
              out->provenance.push_back(support::format(
                  "round %d: produce('%s') cannot recur — no consumer "
                  "other than the frozen thread can cycle through a "
                  "consume of it, so its countdown never drains",
                  round, dm.dep->id.c_str()));
            }
          }
          bool prod_live =
              dm.producer_thread >= 0 && dm.producer_thread != c &&
              live[static_cast<std::size_t>(dm.producer_thread)] != 0 &&
              produce_usable[e] != 0;
          if (consume_usable[e] && !prod_live) {
            consume_usable[e] = 0;
            changed = true;
            if (explain) {
              out->provenance.push_back(support::format(
                  "round %d: consume('%s') cannot recur — its producer "
                  "cannot produce it infinitely often under the freeze",
                  round, dm.dep->id.c_str()));
            }
          }
        }
      } else {
        for (std::size_t x = 0; x < nc; ++x) {
          if (!controller_usable[x]) continue;
          bool owners_live = true;
          for (int di : model.controllers()[x].deps) {
            const verify::DepModel& dm =
                model.deps()[static_cast<std::size_t>(di)];
            if (dm.producer_thread < 0 || dm.producer_thread == c ||
                !live[static_cast<std::size_t>(dm.producer_thread)]) {
              owners_live = false;
            }
            for (const verify::DepModel::ConsumeSite& site :
                 dm.consume_sites) {
              if (site.thread < 0 || site.thread == c ||
                  !live[static_cast<std::size_t>(site.thread)]) {
                owners_live = false;
              }
            }
          }
          if (!owners_live) {
            controller_usable[x] = 0;
            changed = true;
            if (explain) {
              out->provenance.push_back(support::format(
                  "round %d: bram%d schedule cannot complete a round — a "
                  "slot owner cannot move infinitely often under the "
                  "freeze",
                  round, model.controllers()[x].bram_id));
            }
          }
        }
      }
    }
  }
};

}  // namespace

std::vector<BlockingStaticBound> blocking_bounds(
    const verify::ProgramModel& model, bool explain) {
  std::vector<BlockingStaticBound> out;

  // Controller-state factor of the region-size bound, shared by every
  // endpoint: arbitrated Π(N_d + 1) countdown values, event-driven
  // Π total_slots slot values.
  std::uint64_t ctrl_states = 1;
  if (model.organization() == sim::OrgKind::Arbitrated) {
    for (const verify::DepModel& dm : model.deps()) {
      ctrl_states = sat_mul(
          ctrl_states,
          static_cast<std::uint64_t>(std::max(dm.dependency_number, 0)) + 1);
    }
  } else {
    for (const verify::ControllerModel& cm : model.controllers()) {
      ctrl_states = sat_mul(
          ctrl_states,
          static_cast<std::uint64_t>(std::max(cm.total_slots, 1)));
    }
  }

  for (std::size_t di = 0; di < model.deps().size(); ++di) {
    const verify::DepModel& dm = model.deps()[di];
    for (std::size_t k = 0; k < dm.consume_sites.size(); ++k) {
      const verify::DepModel::ConsumeSite& site = dm.consume_sites[k];
      BlockingStaticBound b;
      b.dep = dm.dep->id;
      b.thread =
          site.thread >= 0
              ? model.threads()[static_cast<std::size_t>(site.thread)].name
              : "?";
      b.consumer = static_cast<int>(k);
      if (site.thread < 0 || site.node < 0) {
        b.bounded = true;
        out.push_back(std::move(b));
        continue;
      }

      EndpointAnalysis ea{model, static_cast<int>(di), site.thread, explain,
                          &b,   {},                    {},          {},
                          {},   {}};
      ea.run();

      int live_thread = -1;
      for (std::size_t t = 0; t < ea.live.size(); ++t) {
        if (ea.live[t]) live_thread = static_cast<int>(t);
      }
      if (live_thread >= 0) {
        b.bounded = false;
        b.note = support::format(
            "thread '%s' can cycle forever without ever enabling the "
            "read's guard (no op of '%s' on its cycle)",
            model.threads()[static_cast<std::size_t>(live_thread)]
                .name.c_str(),
            b.dep.c_str());
      } else {
        b.bounded = true;
        // Region-size bound: states with this consumer parked at its read
        // are at most Π (other threads' CFG sizes) × controller states;
        // the checker's exact longest blocked path cannot exceed it.
        std::uint64_t steps = ctrl_states;
        for (std::size_t t = 0; t < model.threads().size(); ++t) {
          if (static_cast<int>(t) == site.thread) continue;
          steps = sat_mul(
              steps,
              static_cast<std::uint64_t>(
                  std::max<std::size_t>(model.threads()[t].nodes.size(), 1)));
        }
        b.steps = steps;
        int window =
            dm.controller >= 0 ? model.fairness_window(dm.controller) : 1;
        b.cycles = sat_mul(sat_add(b.steps, 1),
                           static_cast<std::uint64_t>(window) + 1);
        b.saturated = b.steps == kInf || b.cycles == kInf;
        if (explain) {
          b.provenance.push_back(support::format(
              "no thread can move infinitely often while '%s' waits; "
              "blocked-region bound: %llu controller state(s) x product of "
              "other threads' CFG sizes -> %s steps",
              b.thread.c_str(),
              static_cast<unsigned long long>(ctrl_states),
              b.saturated ? "saturated (2^64-1)"
                          : std::to_string(b.steps).c_str()));
        }
      }
      out.push_back(std::move(b));
    }
  }
  return out;
}

}  // namespace hicsync::bound
