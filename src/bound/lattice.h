// hic-bound: abstract domains for the dataflow engine.
//
// Two numeric domains over unsigned synchronization counters:
//  * Interval — [lo, hi] with a saturating infinity. The join semilattice
//    the worklist engine (engine.h) iterates over; widening jumps a bound
//    that keeps growing to 0 / +inf so loops converge in one extra visit.
//  * AffineCounter — the §3.1 countdown invariant in closed form:
//    countdown = N·rounds − drains with 0 ≤ countdown ≤ N. Client
//    analyses use it to derive (and, under --explain, show) per-entry
//    countdown intervals from per-pass produce/consume counts.
//
// All arithmetic saturates at kInf; nothing here can wrap.
#pragma once

#include <cstdint>
#include <string>

namespace hicsync::bound {

/// +inf for the interval upper bound (and the saturation point of every
/// product/sum the clients compute).
inline constexpr std::uint64_t kInf = ~0ull;

[[nodiscard]] constexpr std::uint64_t sat_add(std::uint64_t a,
                                              std::uint64_t b) {
  return (a == kInf || b == kInf || a > kInf - b) ? kInf : a + b;
}

[[nodiscard]] constexpr std::uint64_t sat_mul(std::uint64_t a,
                                              std::uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a == kInf || b == kInf || a > kInf / b) return kInf;
  return a * b;
}

/// Interval over unsigned counters: [lo, hi], hi == kInf meaning
/// unbounded above. Default-constructed is bottom (empty: lo > hi).
struct Interval {
  std::uint64_t lo = 1;
  std::uint64_t hi = 0;

  [[nodiscard]] static Interval bottom() { return {}; }
  [[nodiscard]] static Interval exact(std::uint64_t v) { return {v, v}; }
  [[nodiscard]] static Interval range(std::uint64_t lo, std::uint64_t hi) {
    return {lo, hi};
  }
  [[nodiscard]] static Interval top() { return {0, kInf}; }

  [[nodiscard]] bool is_bottom() const { return lo > hi; }
  [[nodiscard]] bool is_top() const { return lo == 0 && hi == kInf; }
  [[nodiscard]] bool contains(std::uint64_t v) const {
    return !is_bottom() && lo <= v && v <= hi;
  }
  /// Superset test: every value of `o` lies in this interval (the
  /// containment the differential-vs-hic-verify suite asserts).
  [[nodiscard]] bool contains(const Interval& o) const {
    if (o.is_bottom()) return true;
    return !is_bottom() && lo <= o.lo && o.hi <= hi;
  }
  [[nodiscard]] bool operator==(const Interval& o) const {
    return (is_bottom() && o.is_bottom()) || (lo == o.lo && hi == o.hi);
  }

  /// Least upper bound; returns true when this interval grew.
  bool join_with(const Interval& o) {
    if (o.is_bottom()) return false;
    if (is_bottom()) {
      *this = o;
      return true;
    }
    bool changed = false;
    if (o.lo < lo) { lo = o.lo; changed = true; }
    if (o.hi > hi) { hi = o.hi; changed = true; }
    return changed;
  }

  /// Standard interval widening against the next iterate `o`: any bound
  /// still moving jumps to its extreme, so ascending chains stabilize.
  void widen_with(const Interval& o) {
    if (o.is_bottom()) return;
    if (is_bottom()) {
      *this = o;
      return;
    }
    if (o.lo < lo) lo = 0;
    if (o.hi > hi) hi = kInf;
  }

  /// Saturating translate by +k (the transfer function of a sync op).
  [[nodiscard]] Interval plus(std::uint64_t k) const {
    if (is_bottom()) return bottom();
    return {sat_add(lo, k), sat_add(hi, k)};
  }
  [[nodiscard]] Interval plus(const Interval& o) const {
    if (is_bottom() || o.is_bottom()) return bottom();
    return {sat_add(lo, o.lo), sat_add(hi, o.hi)};
  }

  /// "[lo, hi]" / "[lo, inf)" / "empty".
  [[nodiscard]] std::string str() const;
};

/// The arbitrated controller's countdown counter in affine closed form:
/// after `rounds` completed produce rounds and `drains` consumer reads,
/// countdown = scale·rounds − drains, and the §3.1 guards pin it inside
/// [0, scale] (a produce is enabled only at 0, a consume only above 0).
struct AffineCounter {
  std::uint64_t scale = 1;  // the dependency number N
  Interval rounds = Interval::exact(0);
  Interval drains = Interval::exact(0);

  /// The countdown values consistent with the affine relation and the
  /// guard invariant: [0, 0] when no round can ever complete (the entry
  /// is dead), [0, scale] otherwise.
  [[nodiscard]] Interval countdown() const {
    if (rounds.is_bottom() || rounds.hi == 0) return Interval::exact(0);
    return Interval::range(0, scale);
  }
  /// Derivation trace for --explain.
  [[nodiscard]] std::string str(const std::string& dep_id) const;
};

}  // namespace hicsync::bound
