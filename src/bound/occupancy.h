// hic-bound client 1: static dependency-list occupancy bounds.
//
// Per controller, a sound interval on the number of dependency-list
// entries simultaneously open (countdown > 0) — the §3.1 CAM occupancy
// hic-verify measures exactly by enumeration, derived here in polynomial
// time from per-pass produce counts: an entry can be open only if some
// produce site of its dependency is reachable, so
//   occupancy ⊆ [0, #deps with a reachable produce].
// Compared against the capacity memalloc bakes in and distilled into a
// memalloc::DepListHint so the generators can drop provably dead entries
// (and their pseudo-ports) — the sizing feedback loop the ISSUE's
// motivation cites. Event-driven controllers get the analogous slot
// bound [0, total_slots-1].
#pragma once

#include <string>
#include <vector>

#include "bound/counters.h"
#include "bound/lattice.h"
#include "memalloc/sizing.h"
#include "verify/model.h"

namespace hicsync::bound {

/// Static bound for one dependency-list entry.
struct DepBound {
  int dep = -1;             // index into ProgramModel::deps()
  std::string id;           // dependency id
  /// No produce site is reachable: the entry can never open; consumers
  /// that do reach their read block forever.
  bool dead_produce = false;
  /// Additionally, no consume site is reachable either: the entry is
  /// removable (listed in the sizing hint's dead_deps).
  bool fully_dead = false;
  Interval produces_per_pass = Interval::exact(0);
  AffineCounter counter;    // countdown derivation (--explain)
  Interval countdown;       // [0,0] dead, [0,N] live
  /// One provenance line per derivation step (--explain).
  std::vector<std::string> provenance;
};

/// Static occupancy bound for one controller.
struct OccupancyBound {
  int bram_id = -1;
  int controller = -1;
  /// Dependency-list entries the generator would bake in.
  int capacity = 0;
  /// Sound interval on simultaneously open entries (arbitrated).
  Interval occupancy = Interval::exact(0);
  /// Sound interval on the schedule slot counter (event-driven).
  Interval slot = Interval::exact(0);
  int total_slots = 0;
  std::vector<DepBound> deps;
};

struct OccupancyResult {
  std::vector<OccupancyBound> controllers;
  std::vector<memalloc::DepListHint> hints;
};

/// Runs the occupancy client over the counter summaries.
[[nodiscard]] OccupancyResult occupancy_bounds(
    const verify::ProgramModel& model,
    const std::vector<ThreadCounters>& counters, bool explain);

}  // namespace hicsync::bound
