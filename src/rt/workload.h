// Deterministic workload execution for hic-rt.
//
// A "workload" is one run of a program on a SystemSim: reset the instance,
// clear and re-seed its extern bindings from a session-provided input
// seed, run to the requested pass count, and collect every register
// variable's final value. Both the sharded service (service.cpp) and the
// differential tests' single-instance baseline call exactly this function,
// which is what makes "pool results == fresh-instance results" a provable
// property rather than a convention: any divergence is a real
// recycling/sharding bug, not a harness artifact.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "hic/ast.h"
#include "hic/sema.h"
#include "sim/system.h"

namespace hicsync::rt {

/// Starting value of a session's input seed (the FNV-1a offset basis).
inline constexpr std::uint64_t kWorkloadSeedInit = 14695981039346656037ull;

/// Folds `count` payload words into `seed` (order-sensitive, FNV-style).
/// A session's produce commands accumulate into its seed with this; the
/// differential tests fold the same words the same way to reproduce a
/// session's inputs on a fresh simulator.
[[nodiscard]] std::uint64_t fold_seed(std::uint64_t seed,
                                      const std::uint64_t* words,
                                      std::size_t count);

/// Names of every opaque extern call in the program, deduplicated and
/// sorted (deterministic across traversal orders).
[[nodiscard]] std::vector<std::string> extern_calls(
    const hic::Program& program);

/// Registers a deterministic implementation for every extern call of the
/// program: a mix of the callee name, the workload `seed` and the argument
/// values. Same (program, seed) → same extern behavior everywhere, which
/// is how two simulator instances are made to compute identical results.
void seed_externs(sim::SystemSim& sim, const hic::Program& program,
                  std::uint64_t seed);

struct WorkloadResult {
  bool converged = false;   // every thread reached the pass target
  std::uint64_t cycles = 0; // simulated cycles consumed
  std::uint64_t rounds = 0; // completed produce→consume rounds
  /// Every register (non-memory-resident) variable's final value, as
  /// ("thread.var", value) in program-thread then declaration order.
  std::vector<std::pair<std::string, std::uint64_t>> registers;
};

/// Runs one workload on `sim` (which must have been built from `program` /
/// `sema`): reset → clear externs → seed_externs(seed) → run_until_passes.
[[nodiscard]] WorkloadResult run_workload(sim::SystemSim& sim,
                                          const hic::Program& program,
                                          const hic::Sema& sema, int passes,
                                          std::uint64_t max_cycles,
                                          std::uint64_t seed);

}  // namespace hicsync::rt
