#include "rt/telemetry.h"

#include <algorithm>
#include <fstream>

#include "support/strings.h"

namespace hicsync::rt {

namespace {

std::uint64_t us_between(TelemetryClock::time_point a,
                         TelemetryClock::time_point b) {
  if (b <= a) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(b - a).count());
}

/// Stage-latency bucket bounds (µs): resolves sub-millisecond queue hops
/// and still separates multi-second pathologies.
const std::vector<std::uint64_t> kStageBoundsUs = {
    1,    2,    5,    10,    20,    50,    100,   200,
    500,  1000, 2000, 5000,  10000, 20000, 50000, 100000,
    200000, 500000, 1000000, 5000000};

/// Run-cycle bucket bounds, matching the simulator's typical pass sizes.
const std::vector<std::uint64_t> kCycleBounds = {
    64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 65536, 262144};

}  // namespace

void SessionHistory::push(SpanBrief brief, std::size_t depth) {
  if (slots.empty()) slots.resize(depth == 0 ? 1 : depth);
  slots[head] = std::move(brief);
  head = (head + 1) % slots.size();
  if (size < slots.size()) ++size;
}

std::uint64_t Span::submit_us() const { return us_between(submit, enqueue); }
std::uint64_t Span::queue_us() const { return us_between(enqueue, dequeue); }
std::uint64_t Span::execute_us() const {
  return us_between(dequeue, exec_end);
}
std::uint64_t Span::complete_us() const {
  return us_between(exec_end, complete);
}
std::uint64_t Span::total_us() const { return us_between(submit, complete); }

// ---------------------------------------------------------------------------
// SlowRequestLog
// ---------------------------------------------------------------------------

SlowRequestLog::SlowRequestLog(std::string path) : path_(std::move(path)) {}

void SlowRequestLog::append(const std::string& json_line) {
  std::lock_guard<std::mutex> lock(mu_);
  ++entries_;
  if (path_.empty()) return;
  std::ofstream out(path_, std::ios::app);
  if (out) out << json_line << '\n';
}

std::uint64_t SlowRequestLog::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

// ---------------------------------------------------------------------------
// ShardTelemetry
// ---------------------------------------------------------------------------

const ShardTelemetry::Stage ShardTelemetry::kStages[5] = {
    {"submit_us", &Span::submit_us},     {"queue_us", &Span::queue_us},
    {"execute_us", &Span::execute_us},   {"complete_us", &Span::complete_us},
    {"total_us", &Span::total_us},
};

ShardTelemetry::ShardTelemetry(int shard, const TelemetryOptions& options,
                               TelemetryClock::time_point epoch)
    : shard_(shard), options_(options), epoch_(epoch) {
  if (options_.ring_capacity == 0) options_.ring_capacity = 1;
  // Size then clear: capacity stays reserved AND every page is touched
  // now, so the worker never takes ring-growth page faults mid-traffic.
  ring_.resize(options_.ring_capacity);
  ring_.clear();
  for (std::size_t i = 0; i < 5; ++i) {
    stage_hist_[i] = &registry_.histogram(
        std::string("telemetry.") + kStages[i].name, kStageBoundsUs);
  }
  cycles_hist_ = &registry_.histogram("telemetry.run_cycles", kCycleBounds);
}

bool ShardTelemetry::record(Span span,
                            const std::vector<QueuedCommand>& queue_snapshot,
                            std::string* slow_json) {
  // One pass over the stage values, in kStages order (submit, queue,
  // execute, complete, total) — each is a duration subtraction and this
  // function runs once per command.
  const std::uint64_t stage_us[5] = {span.submit_us(), span.queue_us(),
                                     span.execute_us(), span.complete_us(),
                                     span.total_us()};

  std::lock_guard<std::mutex> lock(mu_);
  ++recorded_;
  busy_us_ += stage_us[2];

  for (std::size_t i = 0; i < 5; ++i) {
    stage_hist_[i]->record(stage_us[i]);
  }
  if (span.cycles > 0) cycles_hist_->record(span.cycles);

  SpanBrief brief;
  brief.sequence = span.sequence;
  brief.kind = span.kind;
  brief.ok = span.ok;
  brief.total_us = stage_us[4];
  brief.tag = span.tag;

  // Promotion reads the history *before* this span is appended, so a
  // forensics record shows what the session did leading up to the stall.
  SessionHistory& history = history_[span.session];
  const bool slow = stage_us[4] >= options_.slow_threshold_us;
  if (slow) {
    ++slow_;
    slow_recent_.push_back(brief);
    while (slow_recent_.size() > options_.slow_recent) {
      slow_recent_.pop_front();
    }
    if (slow_json != nullptr) {
      render_slow_line(span, queue_snapshot, history, slow_json);
    }
  }
  history.push(std::move(brief),
               static_cast<std::size_t>(std::max(options_.history_depth, 1)));

  if (ring_.size() < options_.ring_capacity) {
    ring_.push_back(std::move(span));
  } else {
    ring_full_ = true;
    ++dropped_;
    ring_[ring_head_] = std::move(span);
    ring_head_ = (ring_head_ + 1) % options_.ring_capacity;
  }
  return slow;
}

void ShardTelemetry::session_closed(std::uint64_t session) {
  std::lock_guard<std::mutex> lock(mu_);
  history_.erase(session);
}

std::uint64_t ShardTelemetry::spans_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

std::uint64_t ShardTelemetry::spans_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::uint64_t ShardTelemetry::slow_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slow_;
}

std::uint64_t ShardTelemetry::busy_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  return busy_us_;
}

std::vector<Span> ShardTelemetry::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Span> out;
  out.reserve(ring_.size());
  if (!ring_full_) {
    out = ring_;
    return out;
  }
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(ring_head_ + i) % ring_.size()]);
  }
  return out;
}

namespace {

void write_brief(support::JsonWriter& w, const SpanBrief& b) {
  w.begin_object();
  w.key("sequence").value(b.sequence);
  w.key("kind").value(b.kind);
  w.key("ok").value(b.ok);
  w.key("total_us").value(b.total_us);
  if (!b.tag.empty()) w.key("tag").value(b.tag);
  w.end_object();
}

}  // namespace

void ShardTelemetry::render_slow_line(
    const Span& span, const std::vector<QueuedCommand>& queue_snapshot,
    const SessionHistory& history, std::string* out) const {
  support::JsonWriter w(0);
  w.begin_object();
  w.key("ts_us").value(us_between(epoch_, span.complete));
  w.key("shard").value(shard_);
  w.key("session").value(span.session);
  w.key("sequence").value(span.sequence);
  w.key("kind").value(span.kind);
  if (!span.tag.empty()) w.key("tag").value(span.tag);
  w.key("ok").value(span.ok);
  if (!span.ok) w.key("error").value(span.error);
  w.key("total_us").value(span.total_us());
  w.key("stages").begin_object();
  for (const Stage& stage : kStages) {
    if (stage.value == &Span::total_us) continue;
    w.key(stage.name).value((span.*stage.value)());
  }
  w.end_object();
  w.key("cycles").value(span.cycles);
  w.key("queue_depth_at_enqueue").value(span.queue_depth);
  w.key("queue_snapshot").begin_object();
  w.key("depth").value(static_cast<std::uint64_t>(queue_snapshot.size()));
  w.key("pending").begin_array();
  for (const QueuedCommand& q : queue_snapshot) {
    w.begin_object();
    w.key("session").value(q.session);
    w.key("kind").value(q.kind);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.key("history").begin_array();
  history.for_each([&w](const SpanBrief& b) { write_brief(w, b); });
  w.end_array();
  w.end_object();
  *out = w.str();
}

void ShardTelemetry::render_json(support::JsonWriter& w,
                                 std::uint64_t queue_depth) const {
  std::lock_guard<std::mutex> lock(mu_);
  w.begin_object();
  w.key("shard").value(shard_);
  w.key("queue_depth").value(queue_depth);
  w.key("busy_us").value(busy_us_);
  w.key("spans_recorded").value(recorded_);
  w.key("spans_dropped").value(dropped_);
  w.key("slow_count").value(slow_);
  w.key("stages").begin_object();
  for (const Stage& stage : kStages) {
    const trace::Histogram* h =
        registry_.find_histogram(std::string("telemetry.") + stage.name);
    w.key(stage.name).begin_object();
    w.key("count").value(h != nullptr ? h->count() : 0);
    w.key("min").value(h != nullptr ? h->min() : 0);
    w.key("mean").value(h != nullptr ? h->mean() : 0.0);
    w.key("max").value(h != nullptr ? h->max() : 0);
    w.key("p50").value(h != nullptr ? h->percentile(50) : 0);
    w.key("p95").value(h != nullptr ? h->percentile(95) : 0);
    w.key("p99").value(h != nullptr ? h->percentile(99) : 0);
    w.end_object();
  }
  w.end_object();
  const trace::Histogram* cycles =
      registry_.find_histogram("telemetry.run_cycles");
  w.key("run_cycles").begin_object();
  w.key("count").value(cycles != nullptr ? cycles->count() : 0);
  w.key("p50").value(cycles != nullptr ? cycles->percentile(50) : 0);
  w.key("p95").value(cycles != nullptr ? cycles->percentile(95) : 0);
  w.key("p99").value(cycles != nullptr ? cycles->percentile(99) : 0);
  w.end_object();
  w.key("slow_recent").begin_array();
  for (const SpanBrief& b : slow_recent_) write_brief(w, b);
  w.end_array();
  w.end_object();
}

void ShardTelemetry::render_text(std::string* out,
                                 std::uint64_t queue_depth) const {
  std::lock_guard<std::mutex> lock(mu_);
  *out += support::format(
      "  shard %d: %llu spans (%llu dropped), %llu slow, busy %llu us, "
      "queue %llu\n",
      shard_, static_cast<unsigned long long>(recorded_),
      static_cast<unsigned long long>(dropped_),
      static_cast<unsigned long long>(slow_),
      static_cast<unsigned long long>(busy_us_),
      static_cast<unsigned long long>(queue_depth));
  for (const Stage& stage : kStages) {
    const trace::Histogram* h =
        registry_.find_histogram(std::string("telemetry.") + stage.name);
    if (h == nullptr || h->count() == 0) continue;
    *out += support::format(
        "    %-11s count %llu, p50 %llu, p95 %llu, p99 %llu, "
        "max %llu us\n",
        stage.name, static_cast<unsigned long long>(h->count()),
        static_cast<unsigned long long>(h->percentile(50)),
        static_cast<unsigned long long>(h->percentile(95)),
        static_cast<unsigned long long>(h->percentile(99)),
        static_cast<unsigned long long>(h->max()));
  }
}

void ShardTelemetry::append_chrome_events(
    std::vector<std::string>* events) const {
  for (const Span& span : spans()) {
    std::uint64_t ts = us_between(epoch_, span.submit);
    std::uint64_t dur = std::max<std::uint64_t>(span.total_us(), 1);
    std::string args = support::format(
        "{\"session\":%llu,\"sequence\":%llu,\"queue_depth\":%llu,"
        "\"cycles\":%llu,\"ok\":%s",
        static_cast<unsigned long long>(span.session),
        static_cast<unsigned long long>(span.sequence),
        static_cast<unsigned long long>(span.queue_depth),
        static_cast<unsigned long long>(span.cycles),
        span.ok ? "true" : "false");
    if (!span.tag.empty()) {
      args += ",\"tag\":\"" + support::json_escape(span.tag) + "\"";
    }
    args += "}";
    events->push_back(support::format(
        "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%llu,\"dur\":%llu,"
        "\"pid\":1,\"tid\":%d,\"args\":%s}",
        span.kind, static_cast<unsigned long long>(ts),
        static_cast<unsigned long long>(dur), shard_ + 1, args.c_str()));
  }
}

std::string compose_chrome_trace(int shards,
                                 const std::vector<std::string>& events) {
  std::vector<std::string> lines;
  lines.push_back(
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
      "\"args\":{\"name\":\"hic-rt\"}}");
  for (int i = 0; i < shards; ++i) {
    lines.push_back(support::format(
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
        "\"args\":{\"name\":\"shard %d\"}}",
        i + 1, i));
  }
  lines.insert(lines.end(), events.begin(), events.end());

  std::string out = "{\"traceEvents\":[\n";
  for (std::size_t i = 0; i < lines.size(); ++i) {
    out += lines[i];
    if (i + 1 < lines.size()) out += ",";
    out += "\n";
  }
  out += "],\"displayTimeUnit\":\"ns\"}\n";
  return out;
}

}  // namespace hicsync::rt
