// Reference-counted buffer handles over a recycling pool.
//
// hic-rt commands carry word payloads (produce inputs, consume results)
// whose lifetime is decoupled from the submitting client: a buffer may be
// referenced by the session queue, the in-flight command, a completion
// callback and the caller's future simultaneously, across threads. The XRT
// execution model (SNIPPETS.md) solves this with reference-counted buffer
// objects handed out by the runtime; this is the same shape sized for the
// simulator pool. Blocks are owned by the pool and recycled through a
// free list, so steady-state traffic allocates nothing.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

namespace hicsync::rt {

class BufferPool;

/// A shared reference to one pool-owned block of 64-bit words. Copying
/// bumps the reference count; the last handle to go returns the block to
/// its pool's free list. A default-constructed handle is empty (false).
/// Handles must not outlive the pool.
class BufferHandle {
 public:
  BufferHandle() = default;
  BufferHandle(const BufferHandle& other);
  BufferHandle(BufferHandle&& other) noexcept;
  BufferHandle& operator=(const BufferHandle& other);
  BufferHandle& operator=(BufferHandle&& other) noexcept;
  ~BufferHandle();

  explicit operator bool() const { return block_ != nullptr; }

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const std::uint64_t* data() const;
  [[nodiscard]] std::uint64_t* data();
  std::uint64_t& operator[](std::size_t i) { return data()[i]; }
  std::uint64_t operator[](std::size_t i) const { return data()[i]; }

  /// Current reference count (for tests and stats; racy by nature).
  [[nodiscard]] int use_count() const;

  void reset();

 private:
  friend class BufferPool;
  struct Block;
  explicit BufferHandle(Block* block) : block_(block) {}

  Block* block_ = nullptr;
};

/// Owns every block it ever allocated; freed blocks are recycled by
/// capacity. Thread-safe: allocate/release may race from any thread.
class BufferPool {
 public:
  BufferPool();   // out of line: Block is incomplete here
  ~BufferPool();
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// A handle to a zero-filled buffer of `words` words (refcount 1).
  [[nodiscard]] BufferHandle allocate(std::size_t words);

  struct Stats {
    std::uint64_t allocated = 0;  // blocks ever created
    std::uint64_t reused = 0;     // allocations served from the free list
    std::uint64_t live = 0;       // handles outstanding (blocks in use)
  };
  [[nodiscard]] Stats stats() const;

 private:
  friend class BufferHandle;
  void release(BufferHandle::Block* block);

  mutable std::mutex mu_;
  std::deque<std::unique_ptr<BufferHandle::Block>> blocks_;
  std::vector<BufferHandle::Block*> free_;
  std::uint64_t allocated_ = 0;
  std::uint64_t reused_ = 0;
};

}  // namespace hicsync::rt
