// The hic program artifact ("hicbin") — the xclbin analog of the XRT
// execution model (SNIPPETS.md: execution-model.rst) for compiled hic
// programs.
//
// `hicc --emit-artifact=prog.hicbin` serializes the post-compile state a
// runtime needs to serve a program without re-running the back half of the
// compiler: the source (front-end rehydration input), the organization
// choice, the memory map and port plans (the allocator's and planner's
// decisions, stored verbatim), and per-controller area/timing metadata.
// A versioned, length- and digest-checked header makes corruption,
// truncation and version skew first-class load errors with stable `rt-*`
// codes rather than downstream misbehavior.
//
// Framing:
//
//   HICBIN <version> <payload-bytes> <fnv1a64-hex>\n
//   <payload JSON, exactly payload-bytes long>
//
// The payload is one JSON object (schema below, written by emit_artifact).
// Loading is ProgramStore's job (store.h): it re-runs only the front end
// (parse/infer/sema) on the embedded source, checks the recorded semantic
// digest against the rebuilt Sema, and resolves the stored map/plans
// against it — allocation, port planning, scheduling and RTL generation
// are *not* re-run; the artifact's decisions are authoritative.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hicsync::core {
class CompileResult;
}
namespace hicsync::hic {
class Sema;
}

namespace hicsync::rt {

inline constexpr const char* kArtifactMagic = "HICBIN";
inline constexpr int kArtifactVersion = 1;

/// A load failure with a stable machine-checkable code. Codes:
///   rt-bad-magic      not a hicbin (wrong magic or unparsable header)
///   rt-version-skew   produced by an incompatible artifact version
///   rt-truncated      payload shorter than the header declares
///   rt-corrupt        digest mismatch, malformed JSON or missing fields
///   rt-source-error   embedded source no longer passes the front end
///   rt-sema-mismatch  rebuilt semantics differ from the recorded digest
///   rt-resolve-error  a stored symbol/dependency is unknown to the Sema
///   rt-io-error       file could not be read/written
struct ArtifactError {
  std::string code;
  std::string message;

  [[nodiscard]] bool ok() const { return code.empty(); }
  [[nodiscard]] std::string str() const {
    return ok() ? std::string("ok") : "[" + code + "] " + message;
  }
};

// ---- Raw (name-based, unresolved) payload structures. --------------------

struct ArtifactPlacement {
  std::string thread;
  std::string var;
  std::uint32_t base_address = 0;
  std::uint32_t words = 0;
};

struct ArtifactBram {
  int id = -1;
  int width = 0;
  int depth = 0;
  int primitives = 1;
  std::vector<ArtifactPlacement> placements;
  std::vector<std::string> deps;  // dependency ids hosted by this BRAM
};

struct ArtifactPortClient {
  std::string thread;
  std::string port;  // "A" | "B" | "C" | "D"
  int pseudo_port = 0;
  std::vector<std::string> deps;
};

struct ArtifactPortPlan {
  int bram_id = -1;
  std::vector<ArtifactPortClient> clients;
};

/// Per-controller metadata (informational: lets `hic-rtd stats` and
/// reports describe the loaded design without re-running techmap/timing).
struct ArtifactController {
  std::string module;
  int consumers = 0;
  int producers = 0;
  int dependencies = 0;
  int luts = 0;
  int ffs = 0;
  int slices = 0;
  double fmax_mhz = 0.0;
};

struct Artifact {
  int version = kArtifactVersion;
  std::string source_name;
  std::string source;
  std::string organization;  // "arbitrated" | "event-driven"
  bool use_cam = true;
  bool chain = false;
  bool infer_dependencies = false;
  double target_clock_mhz = 125.0;
  std::string sema_digest;  // fnv1a64 hex of the canonical Sema rendering
  std::vector<ArtifactBram> brams;
  std::vector<std::string> registers;  // qualified "thread.var"
  std::vector<ArtifactPortPlan> plans;
  std::vector<ArtifactController> controllers;
};

/// FNV-1a 64 over `bytes` (the header digest and the sema digest both use
/// it; exposed so tests can forge/verify frames).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes);

/// Canonical digest of a Sema: thread names, symbol declarations (name,
/// width, element count, memory residency) and bound dependencies in
/// program order. Two sources with the same digest place and plan
/// identically, which is what artifact loading relies on.
[[nodiscard]] std::string sema_digest(const hic::Sema& sema);

/// Serializes a successful compilation (result.ok() must be true) plus its
/// source text into hicbin bytes.
[[nodiscard]] std::string emit_artifact(const core::CompileResult& result,
                                        std::string_view source);

/// Validates framing and decodes the payload. Returns false and fills
/// `error` (rt-bad-magic/rt-version-skew/rt-truncated/rt-corrupt) on any
/// defect; `out` is only touched on success.
[[nodiscard]] bool parse_artifact(std::string_view bytes, Artifact* out,
                                  ArtifactError* error);

}  // namespace hicsync::rt
