// hic-rt wire protocol: JSON lines over a local (AF_UNIX) socket.
//
// One request object per line, one response line per request, in order:
//
//   {"op":"ping"}
//   {"op":"describe"}
//   {"op":"stats"}
//   {"op":"telemetry"}                -> {"ok":true,"telemetry":{...}}
//   {"op":"open"}                                  -> {"ok":true,"session":N}
//   {"op":"produce","session":N,"words":["7",...]}
//   {"op":"run","session":N,"passes":2}
//   {"op":"consume","session":N,"names":["t1.x"]}
//   {"op":"close","session":N}
//
// Responses carry {"ok":bool} plus op-specific fields; failures carry
// {"ok":false,"error":"rt-*: detail"} with the service's stable error
// codes. 64-bit values (produce words, register values) travel as decimal
// strings — JSON numbers are doubles and would corrupt above 2^53.
//
// Any command op (produce/run/consume/close) may carry a "tag": a
// client-assigned trace-context string, attached to the command's
// telemetry span and echoed back in the response. `telemetry` returns
// Service::telemetry_json() ({"enabled":false} when telemetry is off).
//
// handle_request_line() is the whole protocol engine and is transport-
// independent: RemoteServer pumps socket lines through it, hic-rtd's
// in-process driver mode calls it directly, and the wire tests exercise it
// without ever opening a socket.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "rt/service.h"

namespace hicsync::rt {

/// Executes one protocol line against `service` and returns the response
/// line (no trailing newline). Synchronous: command ops wait for their
/// completion before answering. Malformed requests produce
/// {"ok":false,"error":"rt-bad-request: ..."}.
[[nodiscard]] std::string handle_request_line(Service& service,
                                              std::string_view line);

/// Serves a Service over an AF_UNIX stream socket, one thread per
/// connection. On platforms without UNIX sockets start() fails with
/// rt-socket-unsupported.
class RemoteServer {
 public:
  RemoteServer(Service& service, std::string socket_path);
  ~RemoteServer();

  RemoteServer(const RemoteServer&) = delete;
  RemoteServer& operator=(const RemoteServer&) = delete;

  /// Binds, listens and starts the accept loop. False + `error` on
  /// failure (socket in use, path too long, unsupported platform).
  bool start(std::string* error);
  /// Stops accepting, closes live connections, joins all threads and
  /// unlinks the socket path. Idempotent.
  void stop();

  [[nodiscard]] const std::string& socket_path() const { return path_; }
  [[nodiscard]] bool running() const { return running_.load(); }
  /// Connections accepted over the server's lifetime.
  [[nodiscard]] std::uint64_t connections() const {
    return connections_.load();
  }

 private:
  void accept_loop();
  void serve_connection(int fd);

  Service& service_;
  std::string path_;
  // Atomic: stop() clears it while accept_loop() is blocked in accept().
  std::atomic<int> listen_fd_{-1};
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> connections_{0};
  std::thread accept_thread_;
  std::mutex mu_;
  std::vector<std::thread> conn_threads_;  // guarded by mu_
  std::vector<int> conn_fds_;              // live connections, guarded by mu_
};

/// Client side of the protocol. Blocking; not thread-safe (one in-flight
/// request per client, like one XRT command queue).
class RemoteClient {
 public:
  RemoteClient() = default;
  ~RemoteClient();

  RemoteClient(const RemoteClient&) = delete;
  RemoteClient& operator=(const RemoteClient&) = delete;

  bool connect(const std::string& socket_path, std::string* error);
  void close();
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// Trace-context tag attached to every subsequent typed command request
  /// ("" = stop tagging). The server echoes it and stamps it on spans.
  void set_tag(std::string tag) { tag_ = std::move(tag); }
  [[nodiscard]] const std::string& tag() const { return tag_; }

  /// Sends one raw request line and reads one response line.
  bool call(const std::string& request, std::string* response,
            std::string* error);

  // ---- Typed convenience wrappers over call(). --------------------------

  bool ping(std::string* error);
  bool open_session(std::uint64_t* session, std::string* error);
  bool close_session(std::uint64_t session, std::string* error);
  bool produce(std::uint64_t session,
               const std::vector<std::uint64_t>& words, std::string* error);

  struct RunInfo {
    bool converged = false;
    std::uint64_t cycles = 0;
    std::uint64_t rounds = 0;
    int shard = -1;
  };
  bool run(std::uint64_t session, int passes, RunInfo* info,
           std::string* error);
  bool consume(std::uint64_t session, const std::vector<std::string>& names,
               std::vector<std::pair<std::string, std::uint64_t>>* registers,
               std::string* error);
  /// The service's stats_json() document.
  bool stats(std::string* json, std::string* error);
  /// The service's telemetry_json() document ({"enabled":false} when the
  /// server runs without telemetry).
  bool telemetry(std::string* json, std::string* error);
  /// The loaded program's describe() text.
  bool describe(std::string* text, std::string* error);

 private:
  int fd_ = -1;
  std::string inbuf_;  // bytes read past the last response line
  std::string tag_;    // trace context for typed command requests
};

}  // namespace hicsync::rt
