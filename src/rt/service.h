// rt::Service — the async session/command engine over a sharded simulator
// pool.
//
// The shape follows the XRT execution model (SNIPPETS.md): clients open
// sessions against a loaded program, submit produce/run/consume commands
// into per-session FIFO queues, and collect completions through futures or
// callbacks. Sessions are sharded across N worker threads (session id mod
// shards); each shard owns one recycled sim::SystemSim plus its own
// TraceBus/MetricsSink, so no simulator state is ever touched from two
// threads and the whole engine is clean under TSan by construction.
//
// Command semantics (deterministic by design — docs/RUNTIME.md):
//   produce  folds the payload words into the session's input seed
//            (sticky: later runs of this session see all prior produces);
//   run      reset-recycles the shard's simulator, seeds its externs from
//            the session seed (workload.h), runs to the pass target and
//            caches every register variable's final value on the session;
//   consume  reads cached register values from the last run.
// Because `run` goes through exactly the run_workload() the differential
// tests use for their single-instance baseline, a session's results are
// bit-identical to a fresh simulator fed the same produces — regardless of
// shard count, scheduling order or how many sessions share the shard.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "rt/buffer.h"
#include "rt/store.h"
#include "rt/telemetry.h"

namespace hicsync::rt {

struct ServiceOptions {
  /// Worker threads, each owning one simulator instance.
  int shards = 1;
  /// Pass target for `run` commands that do not specify one.
  int default_passes = 1;
  /// Cycle budget per run; exceeding it fails the command (rt-timeout).
  std::uint64_t max_cycles = 200000;
  /// Attach a per-shard trace::MetricsSink to the shard's simulator
  /// (port utilization, stall attribution; slower). Read the report with
  /// shard_trace_report() after drain().
  bool collect_sim_metrics = false;
  /// Request telemetry (rt/telemetry.h): per-command spans, stage
  /// histograms, slow-request forensics, Chrome-trace export. Disabled by
  /// default; disabled telemetry costs one branch per command.
  TelemetryOptions telemetry;
};

enum class CommandKind { Open, Close, Produce, Run, Consume };

[[nodiscard]] const char* to_string(CommandKind k);

/// Completion record of one command. `sequence` is the per-session
/// submission index (0-based, gap-free) — the stress tests assert no loss
/// or duplication by checking the delivered sequence sets.
struct CommandResult {
  bool ok = false;
  std::string error;  // stable "rt-*: detail" when !ok
  std::uint64_t session = 0;
  std::uint64_t sequence = 0;
  CommandKind kind = CommandKind::Run;
  int shard = -1;
  /// Client-assigned trace-context tag, echoed verbatim ("" = untagged).
  std::string tag;

  // Run (also echoed by Consume from the session cache):
  bool converged = false;
  std::uint64_t cycles = 0;
  std::uint64_t rounds = 0;
  /// Run: every register variable ("thread.var", value) in canonical
  /// order. Consume: the requested subset, in request order.
  std::vector<std::pair<std::string, std::uint64_t>> registers;
  /// Consume: the requested values as a pooled buffer (request order).
  BufferHandle values;
};

using Completion = std::function<void(const CommandResult&)>;

class Service {
 public:
  Service(std::shared_ptr<const LoadedProgram> program,
          ServiceOptions options);
  ~Service();  // shuts down (drains queues, joins workers)

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  [[nodiscard]] const LoadedProgram& program() const { return *program_; }
  [[nodiscard]] int shards() const;

  /// Opens a session and returns its id immediately; the Open command is
  /// enqueued on the session's shard and — queues being FIFO — is
  /// guaranteed to execute before any command submitted for the id after
  /// this returns.
  std::uint64_t open_session();
  /// `tag` on any submit is the client's trace context: carried on the
  /// command's telemetry span, echoed in CommandResult::tag and on the
  /// wire. Ignored (beyond the echo) when telemetry is disabled.
  std::future<CommandResult> close_session(std::uint64_t session,
                                           Completion done = {},
                                           std::string tag = {});

  std::future<CommandResult> produce(std::uint64_t session,
                                     BufferHandle inputs,
                                     Completion done = {},
                                     std::string tag = {});
  /// `passes <= 0` uses options.default_passes.
  std::future<CommandResult> run(std::uint64_t session, int passes = 0,
                                 Completion done = {}, std::string tag = {});
  /// Empty `names` = all register variables.
  std::future<CommandResult> consume(std::uint64_t session,
                                     std::vector<std::string> names,
                                     Completion done = {},
                                     std::string tag = {});

  /// Blocks until every submitted command has completed.
  void drain();
  /// Drains, stops the workers and joins them. Idempotent; commands
  /// submitted afterwards complete immediately with rt-stopped.
  void shutdown();

  /// Pool the produce/consume payloads come from.
  [[nodiscard]] BufferPool& buffers() { return buffers_; }

  struct ShardStats {
    int shard = -1;
    std::uint64_t commands = 0;
    std::uint64_t runs = 0;
    std::uint64_t failures = 0;
    std::uint64_t sim_cycles = 0;
    std::uint64_t max_queue_depth = 0;
    std::uint64_t sessions = 0;  // currently open on this shard
    /// Completion-latency percentiles (µs) of the shard's rt.latency_us
    /// histogram — zeros until the shard completes its first command.
    std::uint64_t latency_p50_us = 0;
    std::uint64_t latency_p95_us = 0;
    std::uint64_t latency_p99_us = 0;
  };
  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t sessions_opened = 0;
    std::uint64_t sessions_closed = 0;
    std::uint64_t runs = 0;
    std::uint64_t sim_cycles = 0;
    /// Service-level completion-latency percentiles (µs): every shard's
    /// rt.latency_us histogram folded together with Histogram::merge
    /// (identical bucket layouts, so the merge is exact).
    std::uint64_t latency_samples = 0;
    std::uint64_t latency_p50_us = 0;
    std::uint64_t latency_p95_us = 0;
    std::uint64_t latency_p99_us = 0;
    std::vector<ShardStats> shards;
  };
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::string stats_text() const;
  [[nodiscard]] std::string stats_json() const;

  /// The shard's MetricsSink report (options.collect_sim_metrics) plus the
  /// service-level latency histogram. Only meaningful while the service is
  /// idle — call after drain().
  [[nodiscard]] std::string shard_trace_report(int shard) const;

  // --- Telemetry surface (rt/telemetry.h). All readers lock each shard
  // briefly; safe to call concurrently with traffic (that is the point of
  // `hic-rtd watch`). With telemetry disabled json/text report
  // {"enabled":false} / a one-line notice and chrome export is empty.
  [[nodiscard]] bool telemetry_enabled() const {
    return options_.telemetry.enabled;
  }
  [[nodiscard]] const TelemetryOptions& telemetry_options() const {
    return options_.telemetry;
  }
  /// {"enabled","slow_threshold_us","slow_log_path","slow_log_entries",
  ///  "shards":[per-shard stage histograms w/ p50/p95/p99, slow_recent]}.
  [[nodiscard]] std::string telemetry_json() const;
  /// Human-readable rendering of the same (what `hic-rtd run` prints).
  [[nodiscard]] std::string telemetry_text() const;
  /// Chrome-trace document: one track per shard, one X event per retained
  /// span. Empty string when telemetry is disabled.
  [[nodiscard]] std::string telemetry_chrome_json() const;
  /// Total spans promoted to the slow-request log (0 when disabled).
  [[nodiscard]] std::uint64_t slow_log_entries() const;

 private:
  struct Work;
  struct Session;
  struct Shard;

  std::future<CommandResult> submit(std::unique_ptr<Work> work);
  void worker(Shard& shard);
  void execute(Shard& shard, Work& work, CommandResult* result);
  void complete(Shard& shard, std::unique_ptr<Work> work,
                CommandResult result);

  std::shared_ptr<const LoadedProgram> program_;
  ServiceOptions options_;
  BufferPool buffers_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Telemetry: epoch anchors span/trace timestamps; the slow log is shared
  // by every shard (its own mutex). Both null/zero when disabled.
  TelemetryClock::time_point telemetry_epoch_;
  std::unique_ptr<SlowRequestLog> slow_log_;

  std::atomic<std::uint64_t> next_session_{0};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> sessions_opened_{0};
  std::atomic<std::uint64_t> sessions_closed_{0};

  mutable std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  std::uint64_t pending_ = 0;  // guarded by drain_mu_
  bool stopped_ = false;       // guarded by drain_mu_
};

}  // namespace hicsync::rt
