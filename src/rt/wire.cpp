#include "rt/wire.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "support/json.h"
#include "support/strings.h"

#if defined(__unix__) || defined(__APPLE__)
#define HIC_RT_HAVE_UNIX_SOCKETS 1
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#else
#define HIC_RT_HAVE_UNIX_SOCKETS 0
#endif

namespace hicsync::rt {

namespace {

std::string error_line(const std::string& message) {
  support::JsonWriter w(0);
  w.begin_object();
  w.key("ok").value(false);
  w.key("error").value(message);
  w.end_object();
  return w.str();
}

std::string u64_str(std::uint64_t v) {
  return support::format("%llu", static_cast<unsigned long long>(v));
}

bool parse_u64(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

/// Session id from the request; false fills *resp with the error line.
bool get_session(const support::JsonValue& req, std::uint64_t* session,
                 std::string* resp) {
  const support::JsonValue* v = req.find("session");
  if (v == nullptr || !v->is_number() || v->number_value < 0) {
    *resp = error_line("rt-bad-request: missing or invalid 'session'");
    return false;
  }
  *session = static_cast<std::uint64_t>(v->number_value);
  return true;
}

/// Optional trace-context tag from the request ("" when absent); false
/// fills *resp with the error line.
bool get_tag(const support::JsonValue& req, std::string* tag,
             std::string* resp) {
  const support::JsonValue* v = req.find("tag");
  if (v == nullptr) return true;
  if (!v->is_string()) {
    *resp = error_line("rt-bad-request: 'tag' must be a string");
    return false;
  }
  *tag = v->string_value;
  return true;
}

std::string result_line(const CommandResult& r, bool with_registers) {
  support::JsonWriter w(0);
  w.begin_object();
  w.key("ok").value(r.ok);
  if (!r.ok) w.key("error").value(r.error);
  w.key("session").value(r.session);
  w.key("sequence").value(r.sequence);
  w.key("shard").value(r.shard);
  if (!r.tag.empty()) w.key("tag").value(r.tag);
  if (r.kind == CommandKind::Run) {
    w.key("converged").value(r.converged);
    w.key("cycles").value(r.cycles);
    w.key("rounds").value(r.rounds);
  }
  if (with_registers) {
    w.key("registers").begin_array();
    for (const auto& [name, value] : r.registers) {
      w.begin_object();
      w.key("name").value(name);
      w.key("value").value(u64_str(value));
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
  return w.str();
}

}  // namespace

std::string handle_request_line(Service& service, std::string_view line) {
  support::JsonValue req;
  std::string json_error;
  if (!parse_json(line, &req, &json_error)) {
    return error_line("rt-bad-request: malformed JSON: " + json_error);
  }
  if (!req.is_object()) {
    return error_line("rt-bad-request: request is not an object");
  }
  const support::JsonValue* op = req.find("op");
  if (op == nullptr || !op->is_string()) {
    return error_line("rt-bad-request: missing 'op'");
  }

  if (op->string_value == "ping") {
    return "{\"ok\":true}";
  }
  if (op->string_value == "describe") {
    support::JsonWriter w(0);
    w.begin_object();
    w.key("ok").value(true);
    w.key("program").value(service.program().name());
    w.key("organization").value(service.program().artifact().organization);
    w.key("shards").value(service.shards());
    w.key("describe").value(service.program().describe());
    w.end_object();
    return w.str();
  }
  if (op->string_value == "stats") {
    support::JsonWriter w(0);
    w.begin_object();
    w.key("ok").value(true);
    w.key("stats").raw(service.stats_json());
    w.end_object();
    return w.str();
  }
  if (op->string_value == "telemetry") {
    support::JsonWriter w(0);
    w.begin_object();
    w.key("ok").value(true);
    w.key("telemetry").raw(service.telemetry_json());
    w.end_object();
    return w.str();
  }
  if (op->string_value == "open") {
    std::uint64_t session = service.open_session();
    support::JsonWriter w(0);
    w.begin_object();
    w.key("ok").value(true);
    w.key("session").value(session);
    w.end_object();
    return w.str();
  }

  std::uint64_t session = 0;
  std::string resp;
  if (!get_session(req, &session, &resp)) return resp;
  std::string tag;
  if (!get_tag(req, &tag, &resp)) return resp;

  if (op->string_value == "close") {
    return result_line(
        service.close_session(session, {}, std::move(tag)).get(), false);
  }
  if (op->string_value == "produce") {
    const support::JsonValue* words = req.find("words");
    if (words == nullptr || !words->is_array()) {
      return error_line("rt-bad-request: 'produce' needs a 'words' array");
    }
    BufferHandle buf = service.buffers().allocate(words->elements.size());
    for (std::size_t i = 0; i < words->elements.size(); ++i) {
      const support::JsonValue& e = words->elements[i];
      std::uint64_t v = 0;
      if (e.is_number() && e.number_value >= 0) {
        v = static_cast<std::uint64_t>(e.number_value);
      } else if (!e.is_string() || !parse_u64(e.string_value, &v)) {
        return error_line(
            "rt-bad-request: 'words' entries must be decimal strings");
      }
      buf[i] = v;
    }
    return result_line(
        service.produce(session, std::move(buf), {}, std::move(tag)).get(),
        false);
  }
  if (op->string_value == "run") {
    int passes = 0;
    const support::JsonValue* p = req.find("passes");
    if (p != nullptr) {
      if (!p->is_number()) {
        return error_line("rt-bad-request: 'passes' must be a number");
      }
      passes = static_cast<int>(p->number_value);
    }
    return result_line(
        service.run(session, passes, {}, std::move(tag)).get(), true);
  }
  if (op->string_value == "consume") {
    std::vector<std::string> names;
    const support::JsonValue* n = req.find("names");
    if (n != nullptr) {
      if (!n->is_array()) {
        return error_line("rt-bad-request: 'names' must be an array");
      }
      for (const support::JsonValue& e : n->elements) {
        if (!e.is_string()) {
          return error_line("rt-bad-request: 'names' entries must be strings");
        }
        names.push_back(e.string_value);
      }
    }
    return result_line(
        service.consume(session, std::move(names), {}, std::move(tag)).get(),
        true);
  }
  return error_line("rt-bad-request: unknown op '" + op->string_value + "'");
}

// ---------------------------------------------------------------------------
// RemoteServer
// ---------------------------------------------------------------------------

RemoteServer::RemoteServer(Service& service, std::string socket_path)
    : service_(service), path_(std::move(socket_path)) {}

RemoteServer::~RemoteServer() { stop(); }

#if HIC_RT_HAVE_UNIX_SOCKETS

namespace {

/// Reads up to the next '\n' using `inbuf` as carry-over. False on EOF or
/// error with nothing buffered.
bool read_line(int fd, std::string* inbuf, std::string* line) {
  for (;;) {
    std::size_t nl = inbuf->find('\n');
    if (nl != std::string::npos) {
      *line = inbuf->substr(0, nl);
      inbuf->erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) return false;
    inbuf->append(chunk, static_cast<std::size_t>(n));
  }
}

bool write_all(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

bool RemoteServer::start(std::string* error) {
  if (running_.load()) return true;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path_.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) {
      *error = "rt-socket-error: socket path too long: " + path_;
    }
    return false;
  }
  std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) {
      *error = std::string("rt-socket-error: socket(): ") +
               std::strerror(errno);
    }
    return false;
  }
  ::unlink(path_.c_str());  // stale socket from a previous run
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    if (error != nullptr) {
      *error = std::string("rt-socket-error: bind/listen on ") + path_ +
               ": " + std::strerror(errno);
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void RemoteServer::accept_loop() {
  while (running_.load()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) break;
      continue;
    }
    connections_.fetch_add(1);
    std::lock_guard<std::mutex> lock(mu_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void RemoteServer::serve_connection(int fd) {
  std::string inbuf;
  std::string line;
  while (running_.load() && read_line(fd, &inbuf, &line)) {
    if (support::trim(line).empty()) continue;
    std::string resp = handle_request_line(service_, line);
    resp += '\n';
    if (!write_all(fd, resp)) break;
  }
  // Deregister before close so stop() can never shut down a recycled fd.
  {
    std::lock_guard<std::mutex> lock(mu_);
    conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                    conn_fds_.end());
  }
  ::close(fd);
}

void RemoteServer::stop() {
  if (!running_.exchange(false)) return;
  // Closing the listener unblocks accept().
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    // Kick every live connection out of its blocking read: without this a
    // client that is connected but idle would hang the join below until it
    // chose to disconnect. The owning thread still does the close().
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  ::unlink(path_.c_str());
}

// ---------------------------------------------------------------------------
// RemoteClient
// ---------------------------------------------------------------------------

RemoteClient::~RemoteClient() { close(); }

bool RemoteClient::connect(const std::string& socket_path,
                           std::string* error) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) {
      *error = "rt-socket-error: socket path too long: " + socket_path;
    }
    return false;
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (error != nullptr) {
      *error = std::string("rt-socket-error: socket(): ") +
               std::strerror(errno);
    }
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) {
      *error = std::string("rt-socket-error: connect to ") + socket_path +
               ": " + std::strerror(errno);
    }
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  return true;
}

void RemoteClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  inbuf_.clear();
}

bool RemoteClient::call(const std::string& request, std::string* response,
                        std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) *error = "rt-socket-error: not connected";
    return false;
  }
  std::string line = request;
  line += '\n';
  if (!write_all(fd_, line)) {
    if (error != nullptr) {
      *error = "rt-socket-error: write failed (server gone?)";
    }
    return false;
  }
  if (!read_line(fd_, &inbuf_, response)) {
    if (error != nullptr) {
      *error = "rt-socket-error: connection closed before response";
    }
    return false;
  }
  return true;
}

#else  // !HIC_RT_HAVE_UNIX_SOCKETS

bool RemoteServer::start(std::string* error) {
  if (error != nullptr) {
    *error = "rt-socket-unsupported: no AF_UNIX sockets on this platform";
  }
  return false;
}

void RemoteServer::accept_loop() {}
void RemoteServer::serve_connection(int) {}
void RemoteServer::stop() { running_.store(false); }

RemoteClient::~RemoteClient() { close(); }

bool RemoteClient::connect(const std::string&, std::string* error) {
  if (error != nullptr) {
    *error = "rt-socket-unsupported: no AF_UNIX sockets on this platform";
  }
  return false;
}

void RemoteClient::close() { fd_ = -1; }

bool RemoteClient::call(const std::string&, std::string*,
                        std::string* error) {
  if (error != nullptr) {
    *error = "rt-socket-unsupported: no AF_UNIX sockets on this platform";
  }
  return false;
}

#endif  // HIC_RT_HAVE_UNIX_SOCKETS

// ---- Typed wrappers (transport-independent). -----------------------------

namespace {

/// Parses a response line; false when transport or the service failed.
bool parse_response(const std::string& line, support::JsonValue* out,
                    std::string* error) {
  std::string json_error;
  if (!parse_json(line, out, &json_error)) {
    if (error != nullptr) {
      *error = "rt-bad-response: malformed JSON: " + json_error;
    }
    return false;
  }
  const support::JsonValue* ok = out->find("ok");
  if (ok == nullptr || !ok->is_bool()) {
    if (error != nullptr) *error = "rt-bad-response: missing 'ok'";
    return false;
  }
  if (!ok->bool_value) {
    const support::JsonValue* e = out->find("error");
    if (error != nullptr) {
      *error = e != nullptr && e->is_string() ? e->string_value
                                              : "unknown server error";
    }
    return false;
  }
  return true;
}

}  // namespace

bool RemoteClient::ping(std::string* error) {
  std::string resp;
  support::JsonValue v;
  return call("{\"op\":\"ping\"}", &resp, error) &&
         parse_response(resp, &v, error);
}

bool RemoteClient::open_session(std::uint64_t* session, std::string* error) {
  std::string resp;
  support::JsonValue v;
  if (!call("{\"op\":\"open\"}", &resp, error) ||
      !parse_response(resp, &v, error)) {
    return false;
  }
  const support::JsonValue* s = v.find("session");
  if (s == nullptr || !s->is_number()) {
    if (error != nullptr) *error = "rt-bad-response: missing 'session'";
    return false;
  }
  *session = static_cast<std::uint64_t>(s->number_value);
  return true;
}

namespace {

/// `,"tag":"..."` fragment for string-built requests ("" when untagged).
std::string tag_fragment(const std::string& tag) {
  if (tag.empty()) return "";
  return ",\"tag\":\"" + support::json_escape(tag) + "\"";
}

}  // namespace

bool RemoteClient::close_session(std::uint64_t session, std::string* error) {
  std::string resp;
  support::JsonValue v;
  return call(support::format("{\"op\":\"close\",\"session\":%llu%s}",
                              static_cast<unsigned long long>(session),
                              tag_fragment(tag_).c_str()),
              &resp, error) &&
         parse_response(resp, &v, error);
}

bool RemoteClient::produce(std::uint64_t session,
                           const std::vector<std::uint64_t>& words,
                           std::string* error) {
  support::JsonWriter w(0);
  w.begin_object();
  w.key("op").value("produce");
  w.key("session").value(session);
  if (!tag_.empty()) w.key("tag").value(tag_);
  w.key("words").begin_array();
  for (std::uint64_t word : words) w.value(u64_str(word));
  w.end_array();
  w.end_object();
  std::string resp;
  support::JsonValue v;
  return call(w.str(), &resp, error) && parse_response(resp, &v, error);
}

bool RemoteClient::run(std::uint64_t session, int passes, RunInfo* info,
                       std::string* error) {
  std::string resp;
  support::JsonValue v;
  if (!call(support::format(
                "{\"op\":\"run\",\"session\":%llu,\"passes\":%d%s}",
                static_cast<unsigned long long>(session), passes,
                tag_fragment(tag_).c_str()),
            &resp, error) ||
      !parse_response(resp, &v, error)) {
    return false;
  }
  if (info != nullptr) {
    const support::JsonValue* c = v.find("converged");
    const support::JsonValue* cy = v.find("cycles");
    const support::JsonValue* ro = v.find("rounds");
    const support::JsonValue* sh = v.find("shard");
    info->converged = c != nullptr && c->is_bool() && c->bool_value;
    info->cycles = cy != nullptr && cy->is_number()
                       ? static_cast<std::uint64_t>(cy->number_value)
                       : 0;
    info->rounds = ro != nullptr && ro->is_number()
                       ? static_cast<std::uint64_t>(ro->number_value)
                       : 0;
    info->shard = sh != nullptr && sh->is_number()
                      ? static_cast<int>(sh->number_value)
                      : -1;
  }
  return true;
}

bool RemoteClient::consume(
    std::uint64_t session, const std::vector<std::string>& names,
    std::vector<std::pair<std::string, std::uint64_t>>* registers,
    std::string* error) {
  support::JsonWriter w(0);
  w.begin_object();
  w.key("op").value("consume");
  w.key("session").value(session);
  if (!tag_.empty()) w.key("tag").value(tag_);
  w.key("names").begin_array();
  for (const std::string& n : names) w.value(n);
  w.end_array();
  w.end_object();
  std::string resp;
  support::JsonValue v;
  if (!call(w.str(), &resp, error) || !parse_response(resp, &v, error)) {
    return false;
  }
  if (registers != nullptr) {
    registers->clear();
    const support::JsonValue* regs = v.find("registers");
    if (regs == nullptr || !regs->is_array()) {
      if (error != nullptr) *error = "rt-bad-response: missing 'registers'";
      return false;
    }
    for (const support::JsonValue& e : regs->elements) {
      const support::JsonValue* name = e.find("name");
      const support::JsonValue* value = e.find("value");
      std::uint64_t parsed = 0;
      if (name == nullptr || !name->is_string() || value == nullptr ||
          !value->is_string() || !parse_u64(value->string_value, &parsed)) {
        if (error != nullptr) {
          *error = "rt-bad-response: malformed register entry";
        }
        return false;
      }
      registers->emplace_back(name->string_value, parsed);
    }
  }
  return true;
}

namespace {

/// Re-renders a parsed subtree compactly (one line, no indent).
void render_compact(const support::JsonValue& node, support::JsonWriter& w) {
  switch (node.kind) {
    case support::JsonValue::Kind::Null: w.value_null(); break;
    case support::JsonValue::Kind::Bool: w.value(node.bool_value); break;
    case support::JsonValue::Kind::Number: w.value(node.number_value); break;
    case support::JsonValue::Kind::String: w.value(node.string_value); break;
    case support::JsonValue::Kind::Array:
      w.begin_array();
      for (const auto& e : node.elements) render_compact(e, w);
      w.end_array();
      break;
    case support::JsonValue::Kind::Object:
      w.begin_object();
      for (const auto& [k, val] : node.members) {
        w.key(k);
        render_compact(val, w);
      }
      w.end_object();
      break;
  }
}

/// Shared body of stats()/telemetry(): call `op`, extract `field` and
/// re-render it compactly into *json.
bool fetch_subtree(RemoteClient& client, const char* op, const char* field,
                   std::string* json, std::string* error) {
  std::string resp;
  support::JsonValue v;
  if (!client.call(support::format("{\"op\":\"%s\"}", op), &resp, error) ||
      !parse_response(resp, &v, error)) {
    return false;
  }
  const support::JsonValue* s = v.find(field);
  if (s == nullptr) {
    if (error != nullptr) {
      *error = support::format("rt-bad-response: missing '%s'", field);
    }
    return false;
  }
  support::JsonWriter w(0);
  render_compact(*s, w);
  *json = w.str();
  return true;
}

}  // namespace

bool RemoteClient::stats(std::string* json, std::string* error) {
  return fetch_subtree(*this, "stats", "stats", json, error);
}

bool RemoteClient::telemetry(std::string* json, std::string* error) {
  return fetch_subtree(*this, "telemetry", "telemetry", json, error);
}

bool RemoteClient::describe(std::string* text, std::string* error) {
  std::string resp;
  support::JsonValue v;
  if (!call("{\"op\":\"describe\"}", &resp, error) ||
      !parse_response(resp, &v, error)) {
    return false;
  }
  const support::JsonValue* d = v.find("describe");
  if (d == nullptr || !d->is_string()) {
    if (error != nullptr) *error = "rt-bad-response: missing 'describe'";
    return false;
  }
  *text = d->string_value;
  return true;
}

}  // namespace hicsync::rt
