#include "rt/artifact.h"

#include <cstdio>

#include "core/compiler.h"
#include "hic/sema.h"
#include "memalloc/sizing.h"
#include "support/json.h"
#include "support/strings.h"

namespace hicsync::rt {

namespace {

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

const char* org_name(sim::OrgKind k) {
  return k == sim::OrgKind::Arbitrated ? "arbitrated" : "event-driven";
}

}  // namespace

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 14695981039346656037ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string sema_digest(const hic::Sema& sema) {
  // Canonical rendering: every declared symbol (qualified name, width,
  // element count, residency class) in declaration order, then every bound
  // dependency with its consumer list in program order. This pins exactly
  // the facts the stored memory map and port plans refer to.
  std::string canon;
  for (const hic::Symbol* sym : sema.all_symbols()) {
    canon += support::format(
        "sym %s w%d n%llu %s\n", sym->qualified_name().c_str(),
        sym->type()->bit_width(),
        static_cast<unsigned long long>(sym->element_count()),
        memalloc::is_memory_resident(*sym) ? "mem" : "reg");
  }
  for (const hic::Dependency& dep : sema.dependencies()) {
    canon += support::format("dep %s %s %s ->", dep.id.c_str(),
                             dep.producer_thread.c_str(),
                             dep.shared_var->qualified_name().c_str());
    for (const hic::DepConsumer& c : dep.consumers) {
      canon += " " + c.thread + "." + c.dest->name();
    }
    canon += '\n';
  }
  return hex64(fnv1a64(canon));
}

std::string emit_artifact(const core::CompileResult& result,
                          std::string_view source) {
  const core::CompileOptions& opt = result.options();
  support::JsonWriter w(0);
  w.begin_object();
  w.key("schema").value("hicbin-v1");
  w.key("source_name").value(opt.source_name);
  w.key("source").value(source);
  w.key("organization").value(org_name(opt.organization));
  w.key("use_cam").value(opt.use_cam);
  w.key("chain").value(opt.schedule.chain_states);
  w.key("infer_dependencies").value(opt.infer_dependencies);
  w.key("target_clock_mhz").value(opt.target_clock_mhz);
  w.key("sema_digest").value(sema_digest(result.sema()));

  w.key("memory_map").begin_object();
  w.key("brams").begin_array();
  for (const memalloc::BramInstance& b : result.memory_map().brams()) {
    w.begin_object();
    w.key("id").value(b.id);
    w.key("width").value(b.shape.width);
    w.key("depth").value(b.shape.depth);
    w.key("primitives").value(b.primitives);
    w.key("placements").begin_array();
    for (const memalloc::Placement& p : b.placements) {
      w.begin_object();
      w.key("thread").value(p.symbol->thread());
      w.key("var").value(p.symbol->name());
      w.key("base").value(static_cast<std::int64_t>(p.base_address));
      w.key("words").value(static_cast<std::int64_t>(p.words));
      w.end_object();
    }
    w.end_array();
    w.key("deps").begin_array();
    for (const hic::Dependency* dep : b.dependencies) {
      w.value(dep->id);
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("registers").begin_array();
  for (const hic::Symbol* r : result.memory_map().registers()) {
    w.value(r->qualified_name());
  }
  w.end_array();
  w.end_object();  // memory_map

  w.key("port_plans").begin_array();
  for (const memalloc::BramPortPlan& plan : result.port_plans()) {
    w.begin_object();
    w.key("bram").value(plan.bram_id);
    w.key("clients").begin_array();
    for (const memalloc::PortClient& c : plan.clients) {
      w.begin_object();
      w.key("thread").value(c.thread);
      w.key("port").value(memalloc::to_string(c.port));
      w.key("pseudo_port").value(c.pseudo_port);
      w.key("deps").begin_array();
      for (const hic::Dependency* dep : c.deps) {
        w.value(dep->id);
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.key("controllers").begin_array();
  for (const core::BramReport& r : result.bram_reports()) {
    w.begin_object();
    w.key("module").value(r.module_name);
    w.key("consumers").value(r.consumers);
    w.key("producers").value(r.producers);
    w.key("dependencies").value(r.dependencies);
    w.key("luts").value(r.area.luts);
    w.key("ffs").value(r.area.ffs);
    w.key("slices").value(r.area.slices);
    w.key("fmax_mhz").value(r.timing.fmax_mhz);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  const std::string& payload = w.str();
  std::string out = support::format(
      "%s %d %llu %s\n", kArtifactMagic, kArtifactVersion,
      static_cast<unsigned long long>(payload.size()),
      hex64(fnv1a64(payload)).c_str());
  out += payload;
  return out;
}

namespace {

// ---- Checked JSON field extraction. `where` names the context for the
// rt-corrupt message; every helper returns false with `error` filled.

bool fail(ArtifactError* error, const std::string& code,
          const std::string& message) {
  if (error != nullptr) {
    error->code = code;
    error->message = message;
  }
  return false;
}

bool corrupt(ArtifactError* error, const std::string& message) {
  return fail(error, "rt-corrupt", message);
}

const support::JsonValue* need(const support::JsonValue& obj,
                               const char* key, const char* where,
                               ArtifactError* error) {
  const support::JsonValue* v = obj.find(key);
  if (v == nullptr) {
    corrupt(error, support::format("missing field '%s' in %s", key, where));
  }
  return v;
}

bool get_string(const support::JsonValue& obj, const char* key,
                const char* where, std::string* out, ArtifactError* error) {
  const support::JsonValue* v = need(obj, key, where, error);
  if (v == nullptr) return false;
  if (!v->is_string()) {
    return corrupt(error,
                   support::format("field '%s' in %s is not a string", key,
                                   where));
  }
  *out = v->string_value;
  return true;
}

bool get_bool(const support::JsonValue& obj, const char* key,
              const char* where, bool* out, ArtifactError* error) {
  const support::JsonValue* v = need(obj, key, where, error);
  if (v == nullptr) return false;
  if (!v->is_bool()) {
    return corrupt(error, support::format("field '%s' in %s is not a bool",
                                          key, where));
  }
  *out = v->bool_value;
  return true;
}

bool get_number(const support::JsonValue& obj, const char* key,
                const char* where, double* out, ArtifactError* error) {
  const support::JsonValue* v = need(obj, key, where, error);
  if (v == nullptr) return false;
  if (!v->is_number()) {
    return corrupt(error, support::format("field '%s' in %s is not a number",
                                          key, where));
  }
  *out = v->number_value;
  return true;
}

bool get_int(const support::JsonValue& obj, const char* key,
             const char* where, int* out, ArtifactError* error) {
  double d = 0.0;
  if (!get_number(obj, key, where, &d, error)) return false;
  *out = static_cast<int>(d);
  return true;
}

const support::JsonValue* need_array(const support::JsonValue& obj,
                                     const char* key, const char* where,
                                     ArtifactError* error) {
  const support::JsonValue* v = need(obj, key, where, error);
  if (v == nullptr) return nullptr;
  if (!v->is_array()) {
    corrupt(error, support::format("field '%s' in %s is not an array", key,
                                   where));
    return nullptr;
  }
  return v;
}

bool get_string_array(const support::JsonValue& obj, const char* key,
                      const char* where, std::vector<std::string>* out,
                      ArtifactError* error) {
  const support::JsonValue* v = need_array(obj, key, where, error);
  if (v == nullptr) return false;
  for (const support::JsonValue& e : v->elements) {
    if (!e.is_string()) {
      return corrupt(error,
                     support::format("element of '%s' in %s is not a string",
                                     key, where));
    }
    out->push_back(e.string_value);
  }
  return true;
}

}  // namespace

bool parse_artifact(std::string_view bytes, Artifact* out,
                    ArtifactError* error) {
  // ---- Frame: "HICBIN <version> <bytes> <digest>\n".
  std::size_t nl = bytes.find('\n');
  if (nl == std::string_view::npos) {
    return fail(error, "rt-bad-magic", "no header line (not a hicbin file)");
  }
  std::string header(bytes.substr(0, nl));
  std::vector<std::string> fields = support::split(header, ' ');
  if (fields.size() != 4 || fields[0] != kArtifactMagic) {
    return fail(error, "rt-bad-magic",
                "bad magic: expected 'HICBIN <version> <bytes> <digest>'");
  }
  int version = 0;
  unsigned long long declared = 0;
  if (std::sscanf(fields[1].c_str(), "%d", &version) != 1 ||
      std::sscanf(fields[2].c_str(), "%llu", &declared) != 1) {
    return fail(error, "rt-bad-magic", "unparsable header fields");
  }
  if (version != kArtifactVersion) {
    return fail(error, "rt-version-skew",
                support::format("artifact version %d, runtime expects %d",
                                version, kArtifactVersion));
  }
  std::string_view payload = bytes.substr(nl + 1);
  if (payload.size() < declared) {
    return fail(
        error, "rt-truncated",
        support::format("payload is %llu bytes, header declares %llu",
                        static_cast<unsigned long long>(payload.size()),
                        declared));
  }
  if (payload.size() > declared) {
    return corrupt(error, support::format(
                              "%llu trailing bytes after declared payload",
                              static_cast<unsigned long long>(payload.size() -
                                                              declared)));
  }
  if (hex64(fnv1a64(payload)) != fields[3]) {
    return corrupt(error, "payload digest mismatch (artifact is corrupt)");
  }

  // ---- Payload.
  support::JsonValue root;
  std::string json_error;
  if (!parse_json(payload, &root, &json_error)) {
    return corrupt(error, "malformed payload JSON: " + json_error);
  }
  if (!root.is_object()) {
    return corrupt(error, "payload is not a JSON object");
  }

  Artifact art;
  art.version = version;
  std::string schema;
  if (!get_string(root, "schema", "payload", &schema, error)) return false;
  if (schema != "hicbin-v1") {
    return corrupt(error, "unknown payload schema '" + schema + "'");
  }
  if (!get_string(root, "source_name", "payload", &art.source_name, error) ||
      !get_string(root, "source", "payload", &art.source, error) ||
      !get_string(root, "organization", "payload", &art.organization,
                  error) ||
      !get_bool(root, "use_cam", "payload", &art.use_cam, error) ||
      !get_bool(root, "chain", "payload", &art.chain, error) ||
      !get_bool(root, "infer_dependencies", "payload",
                &art.infer_dependencies, error) ||
      !get_number(root, "target_clock_mhz", "payload", &art.target_clock_mhz,
                  error) ||
      !get_string(root, "sema_digest", "payload", &art.sema_digest, error)) {
    return false;
  }
  if (art.organization != "arbitrated" && art.organization != "event-driven") {
    return corrupt(error,
                   "unknown organization '" + art.organization + "'");
  }

  const support::JsonValue* map = need(root, "memory_map", "payload", error);
  if (map == nullptr) return false;
  if (!map->is_object()) {
    return corrupt(error, "'memory_map' is not an object");
  }
  const support::JsonValue* brams =
      need_array(*map, "brams", "memory_map", error);
  if (brams == nullptr) return false;
  for (const support::JsonValue& bj : brams->elements) {
    if (!bj.is_object()) {
      return corrupt(error, "bram entry is not an object");
    }
    ArtifactBram b;
    if (!get_int(bj, "id", "bram", &b.id, error) ||
        !get_int(bj, "width", "bram", &b.width, error) ||
        !get_int(bj, "depth", "bram", &b.depth, error) ||
        !get_int(bj, "primitives", "bram", &b.primitives, error) ||
        !get_string_array(bj, "deps", "bram", &b.deps, error)) {
      return false;
    }
    const support::JsonValue* placements =
        need_array(bj, "placements", "bram", error);
    if (placements == nullptr) return false;
    for (const support::JsonValue& pj : placements->elements) {
      if (!pj.is_object()) {
        return corrupt(error, "placement entry is not an object");
      }
      ArtifactPlacement p;
      int base = 0;
      int words = 0;
      if (!get_string(pj, "thread", "placement", &p.thread, error) ||
          !get_string(pj, "var", "placement", &p.var, error) ||
          !get_int(pj, "base", "placement", &base, error) ||
          !get_int(pj, "words", "placement", &words, error)) {
        return false;
      }
      p.base_address = static_cast<std::uint32_t>(base);
      p.words = static_cast<std::uint32_t>(words);
      b.placements.push_back(std::move(p));
    }
    art.brams.push_back(std::move(b));
  }
  const support::JsonValue* registers =
      map->find("registers");
  if (registers == nullptr || !registers->is_array()) {
    return corrupt(error, "'memory_map.registers' missing or not an array");
  }
  for (const support::JsonValue& r : registers->elements) {
    if (!r.is_string()) {
      return corrupt(error, "register entry is not a string");
    }
    art.registers.push_back(r.string_value);
  }

  const support::JsonValue* plans =
      need_array(root, "port_plans", "payload", error);
  if (plans == nullptr) return false;
  for (const support::JsonValue& pj : plans->elements) {
    if (!pj.is_object()) {
      return corrupt(error, "port plan entry is not an object");
    }
    ArtifactPortPlan plan;
    if (!get_int(pj, "bram", "port_plan", &plan.bram_id, error)) return false;
    const support::JsonValue* clients =
        need_array(pj, "clients", "port_plan", error);
    if (clients == nullptr) return false;
    for (const support::JsonValue& cj : clients->elements) {
      if (!cj.is_object()) {
        return corrupt(error, "port client entry is not an object");
      }
      ArtifactPortClient c;
      if (!get_string(cj, "thread", "port_client", &c.thread, error) ||
          !get_string(cj, "port", "port_client", &c.port, error) ||
          !get_int(cj, "pseudo_port", "port_client", &c.pseudo_port,
                   error) ||
          !get_string_array(cj, "deps", "port_client", &c.deps, error)) {
        return false;
      }
      if (c.port != "A" && c.port != "B" && c.port != "C" && c.port != "D") {
        return corrupt(error, "unknown logical port '" + c.port + "'");
      }
      plan.clients.push_back(std::move(c));
    }
    art.plans.push_back(std::move(plan));
  }

  const support::JsonValue* controllers =
      need_array(root, "controllers", "payload", error);
  if (controllers == nullptr) return false;
  for (const support::JsonValue& cj : controllers->elements) {
    if (!cj.is_object()) {
      return corrupt(error, "controller entry is not an object");
    }
    ArtifactController c;
    if (!get_string(cj, "module", "controller", &c.module, error) ||
        !get_int(cj, "consumers", "controller", &c.consumers, error) ||
        !get_int(cj, "producers", "controller", &c.producers, error) ||
        !get_int(cj, "dependencies", "controller", &c.dependencies, error) ||
        !get_int(cj, "luts", "controller", &c.luts, error) ||
        !get_int(cj, "ffs", "controller", &c.ffs, error) ||
        !get_int(cj, "slices", "controller", &c.slices, error) ||
        !get_number(cj, "fmax_mhz", "controller", &c.fmax_mhz, error)) {
      return false;
    }
    art.controllers.push_back(std::move(c));
  }

  *out = std::move(art);
  if (error != nullptr) *error = ArtifactError{};
  return true;
}

}  // namespace hicsync::rt
