// hic-rt request telemetry: per-command spans, stage-latency histograms,
// slow-request forensics and Chrome-trace export.
//
// Every command the service executes leaves a Span — steady-clock
// timestamps at each lifecycle edge (submit → enqueue → dequeue →
// execute → complete), the shard queue depth when it was enqueued, the
// simulator cycles it consumed, and the client-assigned trace-context tag
// from the wire protocol. Spans are captured on the shard worker thread
// into a per-shard bounded ring (oldest evicted first) under the shard's
// own telemetry mutex — never the shard queue lock the submit path
// contends on, so span capture cannot stretch a submitter's enqueue; with
// telemetry disabled the whole layer is a single branch per command, like
// an unattached trace bus.
//
// Three consumers:
//   * stage histograms in a trace::MetricsRegistry (submit/queue/execute/
//     complete/total microseconds, run cycles) with p50/p95/p99 — what the
//     `telemetry` wire op and `hic-rtd watch` report;
//   * the slow-request log: spans at or over the configured threshold are
//     promoted to a JSONL forensics record carrying the span, the
//     session's last-N span history and a snapshot of the shard's queue —
//     enough to answer "what was this shard doing when the request
//     stalled" after the fact;
//   * Chrome-trace export: one track per shard, one X event per span
//     (trace::ChromeTraceSink conventions), so a whole run renders as a
//     timeline in chrome://tracing or Perfetto.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/json.h"
#include "trace/metrics.h"

namespace hicsync::rt {

struct TelemetryOptions {
  /// Master switch. Off: no timestamps are taken, no spans recorded.
  bool enabled = false;
  /// Spans retained per shard; the ring evicts oldest-first beyond this.
  /// The default keeps the ring cache-resident: streaming ~200-byte spans
  /// through a multi-thousand-slot ring measurably taxes the sim's
  /// working set on small-cache hosts (~3% throughput at 4096 slots vs
  /// <1% here), so depth beyond recent-forensics needs is not free.
  std::size_t ring_capacity = 256;
  /// Spans whose submit→complete latency reaches this many microseconds
  /// are promoted to the slow-request log.
  std::uint64_t slow_threshold_us = 100000;
  /// JSONL file the promoted forensics records append to. Empty: records
  /// are counted and kept in the in-memory recent list only.
  std::string slow_log_path;
  /// Per-session span history carried into a forensics record.
  int history_depth = 8;
  /// In-memory recent slow-span summaries kept per shard (for the
  /// `telemetry` op's slow_recent list).
  std::size_t slow_recent = 16;
};

using TelemetryClock = std::chrono::steady_clock;

/// One command's lifecycle. `kind`/`error` use the service's stable
/// vocabulary; timestamps are steady-clock instants taken on the
/// submitting thread (submit/enqueue) and the shard worker (the rest).
struct Span {
  std::uint64_t session = 0;
  std::uint64_t sequence = 0;
  int shard = -1;
  const char* kind = "?";
  bool ok = true;
  std::string error;  // stable "rt-*: detail" when !ok
  std::string tag;    // client-assigned trace context ("" = untagged)
  std::uint64_t queue_depth = 0;  // shard queue depth at enqueue
  std::uint64_t cycles = 0;       // simulator cycles consumed (Run)

  TelemetryClock::time_point submit;    // client called the service
  TelemetryClock::time_point enqueue;   // pushed onto the shard queue
  TelemetryClock::time_point dequeue;   // worker popped it (execute begins)
  TelemetryClock::time_point exec_end;  // execute() returned
  TelemetryClock::time_point complete;  // promise/callback delivered

  [[nodiscard]] std::uint64_t submit_us() const;    // submit → enqueue
  [[nodiscard]] std::uint64_t queue_us() const;     // enqueue → dequeue
  [[nodiscard]] std::uint64_t execute_us() const;   // dequeue → exec_end
  [[nodiscard]] std::uint64_t complete_us() const;  // exec_end → complete
  [[nodiscard]] std::uint64_t total_us() const;     // submit → complete
};

/// One entry of a shard-queue snapshot in a forensics record.
struct QueuedCommand {
  std::uint64_t session = 0;
  const char* kind = "?";
};

/// Compressed span the per-session history ring keeps.
struct SpanBrief {
  std::uint64_t sequence = 0;
  const char* kind = "?";
  bool ok = true;
  std::uint64_t total_us = 0;
  std::string tag;
};

/// Fixed-capacity circular span history for one session. A plain vector
/// sized once on first use — per-command pushes never allocate or shift,
/// unlike a deque whose chunk churn showed up in the overhead bench.
struct SessionHistory {
  std::vector<SpanBrief> slots;
  std::size_t head = 0;  // next write slot
  std::size_t size = 0;  // live entries (<= slots.size())

  void push(SpanBrief brief, std::size_t depth);
  /// Invokes fn(brief) oldest-first.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < size; ++i) {
      fn(slots[(head + slots.size() - size + i) % slots.size()]);
    }
  }
};

/// Thread-safe JSONL appender shared by every shard's slow-path promotion.
/// An empty path counts entries without touching the filesystem.
class SlowRequestLog {
 public:
  explicit SlowRequestLog(std::string path);

  void append(const std::string& json_line);
  [[nodiscard]] std::uint64_t entries() const;
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  mutable std::mutex mu_;
  std::uint64_t entries_ = 0;  // guarded by mu_
};

/// Per-shard telemetry state, synchronized by its own mutex. Only the
/// shard's worker writes (record / session_closed) and readers poll
/// rarely, so the worker's acquisition is effectively uncontended — and,
/// crucially, span capture never holds the shard queue lock that the
/// submit path blocks on.
class ShardTelemetry {
 public:
  ShardTelemetry(int shard, const TelemetryOptions& options,
                 TelemetryClock::time_point epoch);

  /// Records the span: ring push (evicting oldest past capacity), stage
  /// histograms, session history. Returns true when the span crossed the
  /// slow threshold, in which case *slow_json is the complete forensics
  /// JSONL line (span + session history + `queue_snapshot`) for the
  /// caller to append outside the shard lock.
  bool record(Span span, const std::vector<QueuedCommand>& queue_snapshot,
              std::string* slow_json);

  /// Drops the session's span history (the session closed).
  void session_closed(std::uint64_t session);

  [[nodiscard]] std::uint64_t spans_recorded() const;
  [[nodiscard]] std::uint64_t spans_dropped() const;
  [[nodiscard]] std::uint64_t slow_count() const;
  /// Retained spans, oldest first (at most ring_capacity).
  [[nodiscard]] std::vector<Span> spans() const;
  /// Unsynchronized view of the stage histograms — valid only when the
  /// service is quiesced (after drain()/shutdown); live readers use
  /// render_json()/render_text() instead.
  [[nodiscard]] const trace::MetricsRegistry& registry() const {
    return registry_;
  }

  /// Writes this shard's telemetry object ({"shard":..,"stages":{..},..})
  /// as the next value of `w`. `queue_depth` is sampled by the caller.
  void render_json(support::JsonWriter& w, std::uint64_t queue_depth) const;

  /// Appends the human-readable shard summary (the `hic-rtd` stats view):
  /// a header line plus one line per populated stage histogram.
  void render_text(std::string* out, std::uint64_t queue_depth) const;

  /// Appends one serialized Chrome-trace X event per retained span
  /// (ts/dur in microseconds relative to the service epoch; pid 1,
  /// tid shard+1 — the caller emits the matching metadata events).
  void append_chrome_events(std::vector<std::string>* events) const;

  /// Worker busy time accumulated across executed commands, µs.
  [[nodiscard]] std::uint64_t busy_us() const;

 private:
  struct Stage {
    const char* name;
    std::uint64_t (Span::*value)() const;
  };
  static const Stage kStages[5];

  void render_slow_line(const Span& span,
                        const std::vector<QueuedCommand>& queue_snapshot,
                        const SessionHistory& history,
                        std::string* out) const;

  int shard_ = -1;
  TelemetryOptions options_;
  TelemetryClock::time_point epoch_;

  /// Guards everything below. Held only by the owning worker's record()
  /// and by occasional poll reads — never by the submit path.
  mutable std::mutex mu_;

  // Histograms are created once at construction and recorded through
  // cached pointers — record() must not pay a name lookup per command.
  trace::Histogram* stage_hist_[5] = {};
  trace::Histogram* cycles_hist_ = nullptr;

  std::vector<Span> ring_;  // circular, ring_head_ = next write slot
  std::size_t ring_head_ = 0;
  bool ring_full_ = false;

  trace::MetricsRegistry registry_;
  // Hashed, not ordered: looked up once per command, and a busy service
  // holds hundreds of live sessions per shard.
  std::unordered_map<std::uint64_t, SessionHistory> history_;
  std::deque<SpanBrief> slow_recent_;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t slow_ = 0;
  std::uint64_t busy_us_ = 0;
};

/// Composes the full Chrome-trace document from per-shard event lists:
/// process/thread metadata (process "hic-rt", one named track per shard)
/// followed by the span events, in the ChromeTraceSink envelope.
[[nodiscard]] std::string compose_chrome_trace(
    int shards, const std::vector<std::string>& events);

}  // namespace hicsync::rt
