#include "rt/service.h"

#include <chrono>
#include <deque>
#include <map>
#include <thread>

#include "rt/workload.h"
#include "support/json.h"
#include "support/strings.h"
#include "trace/metrics.h"

namespace hicsync::rt {

const char* to_string(CommandKind k) {
  switch (k) {
    case CommandKind::Open: return "open";
    case CommandKind::Close: return "close";
    case CommandKind::Produce: return "produce";
    case CommandKind::Run: return "run";
    case CommandKind::Consume: return "consume";
  }
  return "?";
}

struct Service::Work {
  CommandKind kind = CommandKind::Run;
  std::uint64_t session = 0;
  std::uint64_t sequence = 0;
  BufferHandle payload;              // Produce inputs
  std::vector<std::string> names;    // Consume register names
  int passes = 0;                    // Run
  std::string tag;                   // client trace context
  std::promise<CommandResult> promise;
  Completion done;
  std::chrono::steady_clock::time_point enqueued;

  // Telemetry span edges (rt/telemetry.h); taken only when enabled. The
  // exec-end edge needs no timestamp of its own: complete() runs directly
  // after execute() and its entry clock sample serves as both the latency
  // endpoint and the span's exec_end.
  TelemetryClock::time_point t_submit;
  TelemetryClock::time_point t_dequeue;
  std::uint64_t queue_depth = 0;  // shard queue depth at enqueue
};

struct Service::Session {
  std::uint64_t id = 0;
  std::uint64_t seed = kWorkloadSeedInit;
  std::uint64_t produced_words = 0;
  bool has_run = false;
  std::vector<std::pair<std::string, std::uint64_t>> last_registers;
};

struct Service::Shard {
  int index = -1;
  std::thread thread;

  // Queue + counters, guarded by mu. Everything below `sessions` is
  // touched only on the shard's worker thread (stats readers see the
  // counters through mu; the sink through drain()'s happens-before).
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::unique_ptr<Work>> queue;
  bool stop = false;
  std::map<std::uint64_t, std::uint64_t> next_sequence;
  std::uint64_t commands = 0;
  std::uint64_t runs = 0;
  std::uint64_t failures = 0;
  std::uint64_t sim_cycles = 0;
  std::uint64_t max_queue_depth = 0;
  std::uint64_t open_sessions = 0;
  trace::MetricsRegistry metrics;  // service-level series, guarded by mu
  // Internally synchronized (its own mutex, uncontended on the worker):
  // span capture never holds `mu`, so it cannot stretch a submitter's
  // enqueue. The pointer is set at construction and never changes
  // (null = disabled).
  std::unique_ptr<ShardTelemetry> telemetry;

  // Worker-thread-only state.
  std::unique_ptr<sim::SystemSim> sim;
  trace::TraceBus bus;
  std::unique_ptr<trace::MetricsSink> sink;
  std::map<std::uint64_t, Session> sessions;
};

namespace {

const std::vector<std::uint64_t> kLatencyBoundsUs = {
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000, 50000};

}  // namespace

Service::Service(std::shared_ptr<const LoadedProgram> program,
                 ServiceOptions options)
    : program_(std::move(program)), options_(options) {
  if (options_.shards < 1) options_.shards = 1;
  if (options_.telemetry.enabled) {
    telemetry_epoch_ = TelemetryClock::now();
    slow_log_ =
        std::make_unique<SlowRequestLog>(options_.telemetry.slow_log_path);
  }
  for (int i = 0; i < options_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;
    if (options_.telemetry.enabled) {
      shard->telemetry = std::make_unique<ShardTelemetry>(
          i, options_.telemetry, telemetry_epoch_);
    }
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    s->thread = std::thread([this, s] { worker(*s); });
  }
}

Service::~Service() { shutdown(); }

int Service::shards() const { return static_cast<int>(shards_.size()); }

std::uint64_t Service::open_session() {
  std::uint64_t id = next_session_.fetch_add(1, std::memory_order_relaxed);
  auto work = std::make_unique<Work>();
  work->kind = CommandKind::Open;
  work->session = id;
  submit(std::move(work));  // future intentionally dropped; queue is FIFO
  sessions_opened_.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::future<CommandResult> Service::close_session(std::uint64_t session,
                                                  Completion done,
                                                  std::string tag) {
  auto work = std::make_unique<Work>();
  work->kind = CommandKind::Close;
  work->session = session;
  work->done = std::move(done);
  work->tag = std::move(tag);
  return submit(std::move(work));
}

std::future<CommandResult> Service::produce(std::uint64_t session,
                                            BufferHandle inputs,
                                            Completion done,
                                            std::string tag) {
  auto work = std::make_unique<Work>();
  work->kind = CommandKind::Produce;
  work->session = session;
  work->payload = std::move(inputs);
  work->done = std::move(done);
  work->tag = std::move(tag);
  return submit(std::move(work));
}

std::future<CommandResult> Service::run(std::uint64_t session, int passes,
                                        Completion done, std::string tag) {
  auto work = std::make_unique<Work>();
  work->kind = CommandKind::Run;
  work->session = session;
  work->passes = passes;
  work->done = std::move(done);
  work->tag = std::move(tag);
  return submit(std::move(work));
}

std::future<CommandResult> Service::consume(std::uint64_t session,
                                            std::vector<std::string> names,
                                            Completion done,
                                            std::string tag) {
  auto work = std::make_unique<Work>();
  work->kind = CommandKind::Consume;
  work->session = session;
  work->names = std::move(names);
  work->done = std::move(done);
  work->tag = std::move(tag);
  return submit(std::move(work));
}

std::future<CommandResult> Service::submit(std::unique_ptr<Work> work) {
  Shard& shard =
      *shards_[work->session % static_cast<std::uint64_t>(shards_.size())];
  std::future<CommandResult> future = work->promise.get_future();
  if (options_.telemetry.enabled) work->t_submit = TelemetryClock::now();
  work->enqueued = std::chrono::steady_clock::now();

  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    if (stopped_) {
      CommandResult r;
      r.ok = false;
      r.error = "rt-stopped: service is shut down";
      r.session = work->session;
      r.kind = work->kind;
      work->promise.set_value(r);
      if (work->done) work->done(r);
      return future;
    }
    ++pending_;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> lock(shard.mu);
    work->sequence = shard.next_sequence[work->session]++;
    work->queue_depth = static_cast<std::uint64_t>(shard.queue.size());
    shard.queue.push_back(std::move(work));
    shard.max_queue_depth =
        std::max(shard.max_queue_depth,
                 static_cast<std::uint64_t>(shard.queue.size()));
  }
  shard.cv.notify_one();
  return future;
}

void Service::worker(Shard& shard) {
  for (;;) {
    std::unique_ptr<Work> work;
    {
      std::unique_lock<std::mutex> lock(shard.mu);
      shard.cv.wait(lock,
                    [&shard] { return shard.stop || !shard.queue.empty(); });
      // Graceful shutdown: drain everything already queued before exiting.
      if (shard.queue.empty()) return;
      work = std::move(shard.queue.front());
      shard.queue.pop_front();
    }
    if (shard.telemetry != nullptr) work->t_dequeue = TelemetryClock::now();
    CommandResult result;
    execute(shard, *work, &result);
    complete(shard, std::move(work), std::move(result));
  }
}

void Service::execute(Shard& shard, Work& work, CommandResult* result) {
  result->ok = true;
  result->session = work.session;
  result->sequence = work.sequence;
  result->kind = work.kind;
  result->shard = shard.index;
  result->tag = work.tag;

  auto fail = [&](std::string message) {
    result->ok = false;
    result->error = std::move(message);
  };

  auto find_session = [&]() -> Session* {
    auto it = shard.sessions.find(work.session);
    if (it == shard.sessions.end()) {
      fail(support::format("rt-no-session: session %llu is not open",
                           static_cast<unsigned long long>(work.session)));
      return nullptr;
    }
    return &it->second;
  };

  switch (work.kind) {
    case CommandKind::Open: {
      Session s;
      s.id = work.session;
      shard.sessions[work.session] = std::move(s);
      break;
    }
    case CommandKind::Close: {
      if (shard.sessions.erase(work.session) == 0) {
        fail(support::format("rt-no-session: session %llu is not open",
                             static_cast<unsigned long long>(work.session)));
      } else {
        sessions_closed_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }
    case CommandKind::Produce: {
      Session* s = find_session();
      if (s == nullptr) break;
      s->seed = fold_seed(s->seed, work.payload.data(), work.payload.size());
      s->produced_words += work.payload.size();
      break;
    }
    case CommandKind::Run: {
      Session* s = find_session();
      if (s == nullptr) break;
      if (shard.sim == nullptr) {
        // Lazy: the simulator is built on the worker thread that will own
        // it, so its whole lifetime stays on one thread.
        shard.sim = program_->make_simulator();
        if (options_.collect_sim_metrics) {
          shard.sink = std::make_unique<trace::MetricsSink>();
          shard.bus.attach(shard.sink.get());
          shard.sim->set_trace(&shard.bus);
        }
      }
      int passes = work.passes > 0 ? work.passes : options_.default_passes;
      WorkloadResult r =
          run_workload(*shard.sim, program_->program(), program_->sema(),
                       passes, options_.max_cycles, s->seed);
      result->converged = r.converged;
      result->cycles = r.cycles;
      result->rounds = r.rounds;
      result->registers = r.registers;
      s->has_run = true;
      s->last_registers = std::move(r.registers);
      if (!result->converged) {
        fail(support::format(
            "rt-timeout: run did not reach %d pass%s in %llu cycles", passes,
            passes == 1 ? "" : "es",
            static_cast<unsigned long long>(options_.max_cycles)));
      }
      break;
    }
    case CommandKind::Consume: {
      Session* s = find_session();
      if (s == nullptr) break;
      if (!s->has_run) {
        fail("rt-no-run: session has no completed run to consume from");
        break;
      }
      if (work.names.empty()) {
        result->registers = s->last_registers;
      } else {
        for (const std::string& name : work.names) {
          bool found = false;
          for (const auto& [reg, value] : s->last_registers) {
            if (reg == name) {
              result->registers.emplace_back(reg, value);
              found = true;
              break;
            }
          }
          if (!found) {
            fail("rt-unknown-register: no register variable '" + name + "'");
            break;
          }
        }
      }
      if (result->ok && !result->registers.empty()) {
        result->values = buffers_.allocate(result->registers.size());
        for (std::size_t i = 0; i < result->registers.size(); ++i) {
          result->values[i] = result->registers[i].second;
        }
      }
      break;
    }
  }
}

void Service::complete(Shard& shard, std::unique_ptr<Work> work,
                       CommandResult result) {
  auto now = std::chrono::steady_clock::now();
  auto latency_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now -
                                                            work->enqueued)
          .count());
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    ++shard.commands;
    if (!result.ok) ++shard.failures;
    if (result.kind == CommandKind::Run && result.ok) {
      ++shard.runs;
      shard.sim_cycles += result.cycles;
    }
    shard.open_sessions = shard.sessions.size();
    shard.metrics.counter("rt.commands").add();
    shard.metrics.histogram("rt.latency_us", kLatencyBoundsUs)
        .record(latency_us);
  }
  completed_.fetch_add(1, std::memory_order_relaxed);
  if (!result.ok) failed_.fetch_add(1, std::memory_order_relaxed);

  // Promise first, then callback, then the drain accounting — so drain()
  // returning guarantees every future is ready and every callback ran.
  work->promise.set_value(result);
  if (work->done) work->done(result);

  // Span capture happens after delivery — the complete edge covers
  // promise + callback hand-off — and entirely off shard.mu: telemetry
  // has its own (worker-uncontended) mutex, so recording a span can
  // never stretch a submitter's enqueue. Only a slow span's queue
  // snapshot touches shard.mu, and slow spans are the exception.
  if (shard.telemetry != nullptr) {
    Span span;
    span.session = work->session;
    span.sequence = work->sequence;
    span.shard = shard.index;
    span.kind = to_string(work->kind);
    span.ok = result.ok;
    if (!result.ok) span.error = result.error;
    span.tag = std::move(work->tag);
    span.queue_depth = work->queue_depth;
    span.cycles = result.cycles;
    span.submit = work->t_submit;
    span.enqueue = work->enqueued;
    span.dequeue = work->t_dequeue;
    span.exec_end = now;  // complete()'s entry sample, right after execute()
    span.complete = TelemetryClock::now();
    std::vector<QueuedCommand> snapshot;
    if (span.total_us() >= options_.telemetry.slow_threshold_us) {
      std::lock_guard<std::mutex> lock(shard.mu);
      snapshot.reserve(shard.queue.size());
      for (const auto& pending : shard.queue) {
        snapshot.push_back({pending->session, to_string(pending->kind)});
      }
    }
    std::string slow_json;
    shard.telemetry->record(std::move(span), snapshot, &slow_json);
    if (result.kind == CommandKind::Close && result.ok) {
      shard.telemetry->session_closed(result.session);
    }
    // SlowRequestLog has its own mutex shared by all shards.
    if (!slow_json.empty()) slow_log_->append(slow_json);
  }

  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    --pending_;
  }
  drain_cv_.notify_all();
}

void Service::drain() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [this] { return pending_ == 0; });
}

void Service::shutdown() {
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  drain();
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->stop = true;
    }
    shard->cv.notify_all();
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
}

Service::Stats Service::stats() const {
  Stats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.sessions_opened = sessions_opened_.load(std::memory_order_relaxed);
  s.sessions_closed = sessions_closed_.load(std::memory_order_relaxed);
  trace::Histogram merged(kLatencyBoundsUs);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    ShardStats ss;
    ss.shard = shard->index;
    ss.commands = shard->commands;
    ss.runs = shard->runs;
    ss.failures = shard->failures;
    ss.sim_cycles = shard->sim_cycles;
    ss.max_queue_depth = shard->max_queue_depth;
    ss.sessions = shard->open_sessions;
    if (const trace::Histogram* h =
            shard->metrics.find_histogram("rt.latency_us")) {
      ss.latency_p50_us = h->percentile(50);
      ss.latency_p95_us = h->percentile(95);
      ss.latency_p99_us = h->percentile(99);
      merged.merge(*h);
    }
    s.runs += ss.runs;
    s.sim_cycles += ss.sim_cycles;
    s.shards.push_back(ss);
  }
  s.latency_samples = merged.count();
  if (merged.count() > 0) {
    s.latency_p50_us = merged.percentile(50);
    s.latency_p95_us = merged.percentile(95);
    s.latency_p99_us = merged.percentile(99);
  }
  return s;
}

std::string Service::stats_text() const {
  Stats s = stats();
  std::string out = support::format(
      "rt-service: %s over %d shard%s\n"
      "  commands: %llu submitted, %llu completed, %llu failed\n"
      "  sessions: %llu opened, %llu closed\n"
      "  runs: %llu (%llu simulated cycles)\n",
      program_->name().c_str(), shards(), shards() == 1 ? "" : "s",
      static_cast<unsigned long long>(s.submitted),
      static_cast<unsigned long long>(s.completed),
      static_cast<unsigned long long>(s.failed),
      static_cast<unsigned long long>(s.sessions_opened),
      static_cast<unsigned long long>(s.sessions_closed),
      static_cast<unsigned long long>(s.runs),
      static_cast<unsigned long long>(s.sim_cycles));
  out += support::format(
      "  latency (all shards): p50/p95/p99 %llu/%llu/%llu us over %llu "
      "sample(s)\n",
      static_cast<unsigned long long>(s.latency_p50_us),
      static_cast<unsigned long long>(s.latency_p95_us),
      static_cast<unsigned long long>(s.latency_p99_us),
      static_cast<unsigned long long>(s.latency_samples));
  for (const ShardStats& ss : s.shards) {
    out += support::format(
        "  shard %d: %llu commands (%llu runs, %llu failures), "
        "%llu cycles, max queue %llu, %llu open sessions, "
        "latency p50/p95/p99 %llu/%llu/%llu us\n",
        ss.shard, static_cast<unsigned long long>(ss.commands),
        static_cast<unsigned long long>(ss.runs),
        static_cast<unsigned long long>(ss.failures),
        static_cast<unsigned long long>(ss.sim_cycles),
        static_cast<unsigned long long>(ss.max_queue_depth),
        static_cast<unsigned long long>(ss.sessions),
        static_cast<unsigned long long>(ss.latency_p50_us),
        static_cast<unsigned long long>(ss.latency_p95_us),
        static_cast<unsigned long long>(ss.latency_p99_us));
  }
  BufferPool::Stats bs = buffers_.stats();
  out += support::format(
      "  buffers: %llu allocated, %llu reused, %llu live\n",
      static_cast<unsigned long long>(bs.allocated),
      static_cast<unsigned long long>(bs.reused),
      static_cast<unsigned long long>(bs.live));
  return out;
}

std::string Service::stats_json() const {
  Stats s = stats();
  support::JsonWriter w(0);
  w.begin_object();
  w.key("program").value(program_->name());
  w.key("shards").value(shards());
  w.key("submitted").value(s.submitted);
  w.key("completed").value(s.completed);
  w.key("failed").value(s.failed);
  w.key("sessions_opened").value(s.sessions_opened);
  w.key("sessions_closed").value(s.sessions_closed);
  w.key("runs").value(s.runs);
  w.key("sim_cycles").value(s.sim_cycles);
  w.key("latency_us").begin_object();
  w.key("samples").value(s.latency_samples);
  w.key("p50").value(s.latency_p50_us);
  w.key("p95").value(s.latency_p95_us);
  w.key("p99").value(s.latency_p99_us);
  w.end_object();
  w.key("shard_stats").begin_array();
  for (const ShardStats& ss : s.shards) {
    w.begin_object();
    w.key("shard").value(ss.shard);
    w.key("commands").value(ss.commands);
    w.key("runs").value(ss.runs);
    w.key("failures").value(ss.failures);
    w.key("sim_cycles").value(ss.sim_cycles);
    w.key("max_queue_depth").value(ss.max_queue_depth);
    w.key("sessions").value(ss.sessions);
    w.key("latency_us").begin_object();
    w.key("p50").value(ss.latency_p50_us);
    w.key("p95").value(ss.latency_p95_us);
    w.key("p99").value(ss.latency_p99_us);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  BufferPool::Stats bs = buffers_.stats();
  w.key("buffers").begin_object();
  w.key("allocated").value(bs.allocated);
  w.key("reused").value(bs.reused);
  w.key("live").value(bs.live);
  w.end_object();
  w.end_object();
  return w.str();
}

std::string Service::shard_trace_report(int shard) const {
  if (shard < 0 || shard >= shards()) return "";
  Shard& s = *shards_[static_cast<std::size_t>(shard)];
  std::string out;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    out = s.metrics.text();
  }
  if (s.sink != nullptr) {
    out += s.sink->report_text();
  }
  return out;
}

std::string Service::telemetry_json() const {
  support::JsonWriter w(0);
  w.begin_object();
  w.key("enabled").value(options_.telemetry.enabled);
  if (!options_.telemetry.enabled) {
    w.end_object();
    return w.str();
  }
  w.key("slow_threshold_us").value(options_.telemetry.slow_threshold_us);
  w.key("slow_log_path").value(options_.telemetry.slow_log_path);
  w.key("slow_log_entries").value(slow_log_->entries());
  w.key("shards").begin_array();
  for (const auto& shard : shards_) {
    std::uint64_t queue_depth;
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      queue_depth = static_cast<std::uint64_t>(shard->queue.size());
    }
    shard->telemetry->render_json(w, queue_depth);
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string Service::telemetry_text() const {
  if (!options_.telemetry.enabled) {
    return "rt-telemetry: disabled\n";
  }
  std::string out = support::format(
      "rt-telemetry: %d shard%s, slow threshold %llu us, %llu slow "
      "request%s%s%s\n",
      shards(), shards() == 1 ? "" : "s",
      static_cast<unsigned long long>(options_.telemetry.slow_threshold_us),
      static_cast<unsigned long long>(slow_log_->entries()),
      slow_log_->entries() == 1 ? "" : "s",
      options_.telemetry.slow_log_path.empty() ? "" : ", log: ",
      options_.telemetry.slow_log_path.c_str());
  for (const auto& shard : shards_) {
    std::uint64_t queue_depth;
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      queue_depth = static_cast<std::uint64_t>(shard->queue.size());
    }
    shard->telemetry->render_text(&out, queue_depth);
  }
  return out;
}

std::string Service::telemetry_chrome_json() const {
  if (!options_.telemetry.enabled) return "";
  std::vector<std::string> events;
  for (const auto& shard : shards_) {
    shard->telemetry->append_chrome_events(&events);
  }
  return compose_chrome_trace(shards(), events);
}

std::uint64_t Service::slow_log_entries() const {
  return slow_log_ == nullptr ? 0 : slow_log_->entries();
}

}  // namespace hicsync::rt
