// Program loading for hic-rt.
//
// ProgramStore turns hicbin bytes (artifact.h) into live, simulatable
// LoadedPrograms without re-running the compiler's decision-bearing
// phases. Loading re-runs only the cheap front end (parse → optional
// dependency inference → sema) on the embedded source — the hicbin analog
// of reading an ELF symbol table — then cross-checks the rebuilt semantics
// against the recorded digest and resolves the artifact's memory map and
// port plans against the fresh Sema by name. Allocation, port planning,
// scheduling and RTL generation are not repeated: the artifact's decisions
// are authoritative (docs/RUNTIME.md).
//
// LoadedProgram is self-contained and immutable once built; the store
// hands out shared_ptr<const LoadedProgram> so sessions, shards and stats
// readers can hold a program across hot-swaps of the store.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "hic/ast.h"
#include "hic/sema.h"
#include "memalloc/allocator.h"
#include "memalloc/portplan.h"
#include "rt/artifact.h"
#include "sim/system.h"
#include "support/diagnostics.h"

namespace hicsync::rt {

/// A rehydrated program: the artifact's metadata plus live front-end
/// structures and the restored memory map / port plans, ready to build
/// simulators from. Not movable — Sema and the map hold pointers into the
/// Program — so it always lives on the heap behind a shared_ptr.
class LoadedProgram {
 public:
  LoadedProgram(const LoadedProgram&) = delete;
  LoadedProgram& operator=(const LoadedProgram&) = delete;

  /// Key the program registers under: the artifact's source_name.
  [[nodiscard]] const std::string& name() const {
    return artifact_.source_name;
  }
  [[nodiscard]] const Artifact& artifact() const { return artifact_; }
  [[nodiscard]] const hic::Program& program() const { return program_; }
  [[nodiscard]] const hic::Sema& sema() const { return *sema_; }
  [[nodiscard]] const memalloc::MemoryMap& memory_map() const { return map_; }
  [[nodiscard]] const std::vector<memalloc::BramPortPlan>& port_plans()
      const {
    return plans_;
  }
  [[nodiscard]] sim::OrgKind organization() const { return organization_; }

  /// A fresh cycle-accurate simulator over this program (the shard workers
  /// call this once per shard, then reset()-recycle between runs). This
  /// LoadedProgram must outlive the simulator.
  [[nodiscard]] std::unique_ptr<sim::SystemSim> make_simulator(
      sim::SystemOptions options) const;
  [[nodiscard]] std::unique_ptr<sim::SystemSim> make_simulator() const;

  /// Human-readable one-program summary (hic-rtd stats).
  [[nodiscard]] std::string describe() const;

 private:
  friend class ProgramStore;
  friend std::shared_ptr<const LoadedProgram> load_program(
      const Artifact& artifact, ArtifactError* error);
  LoadedProgram() = default;

  Artifact artifact_;
  support::DiagnosticEngine diags_;
  hic::Program program_;
  std::unique_ptr<hic::Sema> sema_;
  memalloc::MemoryMap map_;
  std::vector<memalloc::BramPortPlan> plans_;
  sim::OrgKind organization_ = sim::OrgKind::Arbitrated;
};

/// Thread-safe registry of loaded programs, keyed by artifact source_name.
/// Loading the same name again replaces the entry (existing holders keep
/// their shared_ptr).
class ProgramStore {
 public:
  /// Parses, validates and rehydrates hicbin bytes. On failure returns
  /// nullptr with `error` carrying a stable rt-* code (see artifact.h).
  std::shared_ptr<const LoadedProgram> load_bytes(std::string_view bytes,
                                                  ArtifactError* error);
  /// load_bytes over a file's contents (rt-io-error if unreadable).
  std::shared_ptr<const LoadedProgram> load_file(const std::string& path,
                                                 ArtifactError* error);

  [[nodiscard]] std::shared_ptr<const LoadedProgram> get(
      const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const LoadedProgram>> programs_;
};

/// The rehydration step on its own (no registry): front end + digest check
/// + name resolution + map/plan restore. Exposed for tests and for
/// in-process embedders that manage lifetime themselves.
std::shared_ptr<const LoadedProgram> load_program(const Artifact& artifact,
                                                  ArtifactError* error);

}  // namespace hicsync::rt
