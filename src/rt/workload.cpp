#include "rt/workload.h"

#include <algorithm>
#include <set>

#include "memalloc/sizing.h"
#include "rt/artifact.h"

namespace hicsync::rt {

namespace {

void collect_calls(const std::vector<hic::StmtPtr>& body,
                   std::set<std::string>* out);

void collect_calls(const hic::Expr* e, std::set<std::string>* out) {
  if (e == nullptr) return;
  if (e->kind == hic::ExprKind::Call) out->insert(e->name);
  for (const hic::ExprPtr& op : e->operands) collect_calls(op.get(), out);
}

void collect_calls(const hic::Stmt& s, std::set<std::string>* out) {
  collect_calls(s.target.get(), out);
  collect_calls(s.value.get(), out);
  collect_calls(s.cond.get(), out);
  collect_calls(s.then_body, out);
  collect_calls(s.else_body, out);
  collect_calls(s.body, out);
  for (const hic::CaseArm& arm : s.arms) collect_calls(arm.body, out);
  if (s.init) collect_calls(*s.init, out);
  if (s.step) collect_calls(*s.step, out);
}

void collect_calls(const std::vector<hic::StmtPtr>& body,
                   std::set<std::string>* out) {
  for (const hic::StmtPtr& s : body) {
    if (s) collect_calls(*s, out);
  }
}

}  // namespace

std::uint64_t fold_seed(std::uint64_t seed, const std::uint64_t* words,
                        std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    seed ^= words[i] + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
    seed *= 1099511628211ull;
  }
  return seed;
}

std::vector<std::string> extern_calls(const hic::Program& program) {
  std::set<std::string> names;
  for (const hic::ThreadDecl& t : program.threads) {
    collect_calls(t.body, &names);
  }
  return std::vector<std::string>(names.begin(), names.end());
}

void seed_externs(sim::SystemSim& sim, const hic::Program& program,
                  std::uint64_t seed) {
  for (const std::string& name : extern_calls(program)) {
    std::uint64_t base = fnv1a64(name) ^ (seed * 0x9e3779b97f4a7c15ull);
    sim.externs().register_fn(
        name, [base](const std::vector<std::uint64_t>& args) {
          std::uint64_t h = base;
          for (std::uint64_t a : args) {
            h ^= a + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
            h *= 1099511628211ull;
          }
          return h;
        });
  }
}

WorkloadResult run_workload(sim::SystemSim& sim, const hic::Program& program,
                            const hic::Sema& sema, int passes,
                            std::uint64_t max_cycles, std::uint64_t seed) {
  sim.reset();
  sim.externs().clear();
  seed_externs(sim, program, seed);

  WorkloadResult result;
  result.converged = sim.run_until_passes(passes, max_cycles);
  result.cycles = sim.cycle();
  result.rounds = sim.rounds().size();

  // Program-thread then declaration order, so two runs' register lists
  // compare element-wise.
  for (const hic::ThreadDecl& t : program.threads) {
    const hic::SymbolTable* table = sema.thread_table(t.name);
    if (table == nullptr) continue;
    for (const hic::Symbol* sym : table->symbols()) {
      if (memalloc::is_memory_resident(*sym)) continue;
      result.registers.emplace_back(sym->qualified_name(),
                                    sim.register_value(t.name, sym->name()));
    }
  }
  return result;
}

}  // namespace hicsync::rt
