#include "rt/buffer.h"

#include <algorithm>

namespace hicsync::rt {

struct BufferHandle::Block {
  BufferPool* pool = nullptr;
  std::vector<std::uint64_t> words;
  std::atomic<int> refs{0};
};

BufferHandle::BufferHandle(const BufferHandle& other) : block_(other.block_) {
  if (block_ != nullptr) {
    block_->refs.fetch_add(1, std::memory_order_relaxed);
  }
}

BufferHandle::BufferHandle(BufferHandle&& other) noexcept
    : block_(other.block_) {
  other.block_ = nullptr;
}

BufferHandle& BufferHandle::operator=(const BufferHandle& other) {
  if (this == &other) return *this;
  BufferHandle tmp(other);
  std::swap(block_, tmp.block_);
  return *this;
}

BufferHandle& BufferHandle::operator=(BufferHandle&& other) noexcept {
  if (this == &other) return *this;
  reset();
  block_ = other.block_;
  other.block_ = nullptr;
  return *this;
}

BufferHandle::~BufferHandle() { reset(); }

void BufferHandle::reset() {
  if (block_ == nullptr) return;
  Block* b = block_;
  block_ = nullptr;
  if (b->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    b->pool->release(b);
  }
}

std::size_t BufferHandle::size() const {
  return block_ == nullptr ? 0 : block_->words.size();
}

const std::uint64_t* BufferHandle::data() const {
  return block_ == nullptr ? nullptr : block_->words.data();
}

std::uint64_t* BufferHandle::data() {
  return block_ == nullptr ? nullptr : block_->words.data();
}

int BufferHandle::use_count() const {
  return block_ == nullptr ? 0
                           : block_->refs.load(std::memory_order_relaxed);
}

BufferPool::BufferPool() = default;
BufferPool::~BufferPool() = default;

BufferHandle BufferPool::allocate(std::size_t words) {
  std::lock_guard<std::mutex> lock(mu_);
  BufferHandle::Block* block = nullptr;
  // Recycle the first free block that fits; shrink-to-fit is deliberately
  // avoided so capacity stays warm under steady traffic.
  for (std::size_t i = 0; i < free_.size(); ++i) {
    if (free_[i]->words.capacity() >= words) {
      block = free_[i];
      free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i));
      ++reused_;
      break;
    }
  }
  if (block == nullptr && !free_.empty()) {
    block = free_.back();
    free_.pop_back();
    ++reused_;
  }
  if (block == nullptr) {
    blocks_.push_back(std::make_unique<BufferHandle::Block>());
    block = blocks_.back().get();
    block->pool = this;
    ++allocated_;
  }
  block->words.assign(words, 0);
  block->refs.store(1, std::memory_order_relaxed);
  return BufferHandle(block);
}

void BufferPool::release(BufferHandle::Block* block) {
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(block);
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.allocated = allocated_;
  s.reused = reused_;
  s.live = blocks_.size() - free_.size();
  return s;
}

}  // namespace hicsync::rt
