#include "rt/store.h"

#include <fstream>
#include <sstream>

#include "hic/infer.h"
#include "hic/parser.h"
#include "support/strings.h"

namespace hicsync::rt {

namespace {

bool fail(ArtifactError* error, const std::string& code,
          const std::string& message) {
  if (error != nullptr) {
    error->code = code;
    error->message = message;
  }
  return false;
}

/// First error line of the engine, for embedding in an ArtifactError.
std::string first_error(const support::DiagnosticEngine& diags) {
  for (const support::Diagnostic* d : diags.sorted_diagnostics()) {
    if (d->severity == support::Severity::Error) return d->str();
  }
  return "unknown front-end error";
}

const hic::Dependency* find_dep(const hic::Sema& sema,
                                const std::string& id) {
  for (const hic::Dependency& dep : sema.dependencies()) {
    if (dep.id == id) return &dep;
  }
  return nullptr;
}

}  // namespace

std::unique_ptr<sim::SystemSim> LoadedProgram::make_simulator(
    sim::SystemOptions options) const {
  return std::make_unique<sim::SystemSim>(program_, *sema_, map_, plans_,
                                          options);
}

std::unique_ptr<sim::SystemSim> LoadedProgram::make_simulator() const {
  sim::SystemOptions options;
  options.organization = organization_;
  options.restart_threads = true;
  return make_simulator(options);
}

std::string LoadedProgram::describe() const {
  std::string out = support::format(
      "%s: %s organization, %d thread%s, %d dependenc%s, %d bram%s\n",
      name().c_str(), artifact_.organization.c_str(),
      static_cast<int>(program_.threads.size()),
      program_.threads.size() == 1 ? "" : "s",
      static_cast<int>(sema_->dependencies().size()),
      sema_->dependencies().size() == 1 ? "y" : "ies",
      static_cast<int>(map_.brams().size()),
      map_.brams().size() == 1 ? "" : "s");
  for (const ArtifactController& c : artifact_.controllers) {
    out += support::format(
        "  %s: %d consumer%s, %d producer%s, %d slices, %.1f MHz\n",
        c.module.c_str(), c.consumers, c.consumers == 1 ? "" : "s",
        c.producers, c.producers == 1 ? "" : "s", c.slices, c.fmax_mhz);
  }
  return out;
}

std::shared_ptr<const LoadedProgram> load_program(const Artifact& artifact,
                                                  ArtifactError* error) {
  // shared_ptr<LoadedProgram> during construction, const on return.
  std::shared_ptr<LoadedProgram> lp(new LoadedProgram());
  lp->artifact_ = artifact;
  lp->organization_ = artifact.organization == "event-driven"
                          ? sim::OrgKind::EventDriven
                          : sim::OrgKind::Arbitrated;
  lp->diags_.set_source_name(artifact.source_name);

  // Front end only: parse → (infer) → sema. The embedded source was
  // compiling when the artifact was emitted, so failures here mean the
  // toolchain's language rules moved underneath the artifact.
  try {
    lp->program_ = hic::parse_source(artifact.source, lp->diags_);
  } catch (const support::CompileError& e) {
    fail(error, "rt-source-error",
         std::string("embedded source no longer parses: ") + e.what());
    return nullptr;
  }
  if (lp->diags_.has_errors()) {
    fail(error, "rt-source-error",
         "embedded source no longer parses: " + first_error(lp->diags_));
    return nullptr;
  }
  if (artifact.infer_dependencies) {
    hic::infer_dependencies(lp->program_, lp->diags_);
    if (lp->diags_.has_errors()) {
      fail(error, "rt-source-error",
           "dependency inference failed: " + first_error(lp->diags_));
      return nullptr;
    }
  }
  lp->sema_ = std::make_unique<hic::Sema>(lp->program_, lp->diags_);
  if (!lp->sema_->run()) {
    fail(error, "rt-source-error",
         "embedded source no longer analyzes: " + first_error(lp->diags_));
    return nullptr;
  }

  // The artifact's map and plans are only meaningful against semantics
  // identical to the ones they were derived from.
  std::string digest = sema_digest(*lp->sema_);
  if (digest != artifact.sema_digest) {
    fail(error, "rt-sema-mismatch",
         support::format(
             "rebuilt semantic digest %s does not match recorded %s",
             digest.c_str(), artifact.sema_digest.c_str()));
    return nullptr;
  }

  // Resolve the stored names against the fresh Sema and restore the map.
  std::vector<memalloc::BramInstance> brams;
  for (const ArtifactBram& ab : artifact.brams) {
    memalloc::BramInstance b;
    b.id = ab.id;
    b.shape = memalloc::BramShape{ab.width, ab.depth};
    b.primitives = ab.primitives;
    for (const ArtifactPlacement& ap : ab.placements) {
      hic::Symbol* sym = lp->sema_->lookup(ap.thread, ap.var);
      if (sym == nullptr) {
        fail(error, "rt-resolve-error",
             support::format("placed variable %s.%s is unknown",
                             ap.thread.c_str(), ap.var.c_str()));
        return nullptr;
      }
      memalloc::Placement p;
      p.symbol = sym;
      p.base_address = ap.base_address;
      p.words = ap.words;
      b.placements.push_back(p);
    }
    for (const std::string& dep_id : ab.deps) {
      const hic::Dependency* dep = find_dep(*lp->sema_, dep_id);
      if (dep == nullptr) {
        fail(error, "rt-resolve-error",
             support::format("dependency '%s' of bram%d is unknown",
                             dep_id.c_str(), ab.id));
        return nullptr;
      }
      b.dependencies.push_back(dep);
    }
    brams.push_back(std::move(b));
  }
  std::vector<hic::Symbol*> registers;
  for (const std::string& qualified : artifact.registers) {
    std::size_t dot = qualified.find('.');
    hic::Symbol* sym =
        dot == std::string::npos
            ? nullptr
            : lp->sema_->lookup(qualified.substr(0, dot),
                                qualified.substr(dot + 1));
    if (sym == nullptr) {
      fail(error, "rt-resolve-error",
           "register variable " + qualified + " is unknown");
      return nullptr;
    }
    registers.push_back(sym);
  }
  lp->map_ = memalloc::MemoryMap::restore(std::move(brams),
                                          std::move(registers));

  for (const ArtifactPortPlan& app : artifact.plans) {
    memalloc::BramPortPlan plan;
    plan.bram_id = app.bram_id;
    for (const ArtifactPortClient& ac : app.clients) {
      memalloc::PortClient c;
      c.thread = ac.thread;
      c.port = ac.port == "A"   ? memalloc::LogicalPort::A
               : ac.port == "B" ? memalloc::LogicalPort::B
               : ac.port == "C" ? memalloc::LogicalPort::C
                                : memalloc::LogicalPort::D;
      c.pseudo_port = ac.pseudo_port;
      for (const std::string& dep_id : ac.deps) {
        const hic::Dependency* dep = find_dep(*lp->sema_, dep_id);
        if (dep == nullptr) {
          fail(error, "rt-resolve-error",
               support::format("dependency '%s' of a bram%d port client "
                               "is unknown",
                               dep_id.c_str(), app.bram_id));
          return nullptr;
        }
        c.deps.push_back(dep);
      }
      plan.clients.push_back(std::move(c));
    }
    lp->plans_.push_back(std::move(plan));
  }

  if (error != nullptr) *error = ArtifactError{};
  return lp;
}

std::shared_ptr<const LoadedProgram> ProgramStore::load_bytes(
    std::string_view bytes, ArtifactError* error) {
  Artifact artifact;
  if (!parse_artifact(bytes, &artifact, error)) return nullptr;
  std::shared_ptr<const LoadedProgram> lp = load_program(artifact, error);
  if (lp == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  programs_[lp->name()] = lp;
  return lp;
}

std::shared_ptr<const LoadedProgram> ProgramStore::load_file(
    const std::string& path, ArtifactError* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    fail(error, "rt-io-error", "cannot read artifact file " + path);
    return nullptr;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return load_bytes(ss.str(), error);
}

std::shared_ptr<const LoadedProgram> ProgramStore::get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = programs_.find(name);
  return it == programs_.end() ? nullptr : it->second;
}

std::vector<std::string> ProgramStore::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(programs_.size());
  for (const auto& [name, lp] : programs_) out.push_back(name);
  return out;
}

std::size_t ProgramStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return programs_.size();
}

}  // namespace hicsync::rt
