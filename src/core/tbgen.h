// Testbench generation for compiled designs.
//
// Drives one canonical produce→consume exchange per dependency through the
// generated controller (via the C++ netlist evaluator) while recording a
// stimulus/response trace, then emits a self-checking Verilog testbench.
// Together with CompileResult::verilog() this gives an externally
// verifiable bundle: any HDL simulator replays the exact transaction the
// C++ toolchain executed.
#pragma once

#include <string>

#include "core/compiler.h"

namespace hicsync::core {

/// Returns {dut + testbench} Verilog for the controller of `bram_id`.
/// Throws std::runtime_error if the id is unknown or the exchange stalls
/// (which would indicate a generator bug).
[[nodiscard]] std::string generate_controller_testbench(
    const CompileResult& result, int bram_id = 0);

}  // namespace hicsync::core
