// Top-level compiler driver: hic source → analysis → synthesis → memory
// allocation → memory-organization generation → Verilog + area/timing
// reports, in one call. This is the library's primary public entry point;
// §3's design flow end to end, with the §4 design-space choice (arbitrated
// vs event-driven, per constraints) exposed as an option.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/lint/lint.h"
#include "bound/bound.h"
#include "fpga/techmap.h"
#include "fpga/timing.h"
#include "hic/sema.h"
#include "memalloc/allocator.h"
#include "memalloc/portplan.h"
#include "nlint/nlint.h"
#include "perf/profile.h"
#include "rtl/netlist.h"
#include "sim/system.h"
#include "support/diagnostics.h"
#include "synth/scheduler.h"
#include "verify/checker.h"

namespace hicsync::core {

struct CompileOptions {
  sim::OrgKind organization = sim::OrgKind::Arbitrated;
  synth::SchedulePolicy schedule;           // default: one statement/state
  memalloc::AllocatorOptions allocator;
  bool use_cam = true;                      // arbitrated dependency list
  double target_clock_mhz = 125.0;          // the paper's target
  /// Infer producer/consumer relationships for cross-thread reads that
  /// carry no pragmas (the use-def alternative §2 mentions).
  bool infer_dependencies = false;
  /// Static synchronization-hazard analysis (hic-lint). When enabled, the
  /// PostSema checks run between semantic analysis and synthesis and the
  /// PreGenerate checks run after port planning, before RTL generation;
  /// `lint.only` stops the flow there (no controllers are generated).
  analysis::lint::LintOptions lint;
  /// hic-verify: explicit-state model checking of the synchronization
  /// behavior (deadlock-freedom, consume-before-produce, blocking bounds,
  /// CAM occupancy; docs/VERIFICATION.md). When enabled, runs after port
  /// planning for the selected organization; refutations surface as
  /// diagnostics (hicc exits 5) without flipping ok().
  verify::VerifyOptions verify;
  /// hic-bound: abstract-interpretation dataflow bounds (occupancy vs CAM
  /// capacity, worst-case blocking, dead ports; docs/ANALYSIS.md). Runs
  /// after port planning — before the lint-only early exit, so
  /// `--bound --lint-only` composes — and its shrinking sizing hints feed
  /// the memory-organization generators when `bound.apply_sizing` is set.
  /// Findings surface as bound-* diagnostics (hicc exits 6) without
  /// flipping ok().
  bound::BoundOptions bound;
  /// hic-nlint: netlist-level structural checks over the generated
  /// controllers (comb loops, driver conflicts, width consistency, one-hot
  /// mutual-exclusion proofs for every recorded claim, reset coverage, and
  /// the census cross-check against each BramReport; docs/ANALYSIS.md).
  /// Runs after generation as a profiled phase; findings surface as
  /// nlint-* diagnostics (hicc exits 7) without flipping ok(). Composes
  /// with `lint.only`: when both are set, verification is still skipped
  /// but the controllers are generated so the netlist checks can run.
  nlint::NlintOptions nlint;
  /// Name stamped onto diagnostics (and json output); typically the path
  /// the driver read the source from.
  std::string source_name;
  /// hic-perf pass profiler (not owned; must outlive compile()). When
  /// set, every pass is bracketed with a ScopedPhase and AST/netlist node
  /// counts plus pass wall times accumulate into it; when null — the
  /// default — instrumentation costs one branch per pass
  /// (`hicc --profile`, see docs/OBSERVABILITY.md).
  perf::PassTimer* profiler = nullptr;
};

/// Area/timing report for one generated memory-organization controller.
struct BramReport {
  int bram_id = -1;
  std::string module_name;
  int consumers = 0;
  int producers = 0;
  int dependencies = 0;
  /// Event slots the controller sequences (event-driven organization; 0
  /// for arbitrated). Cross-checked against the netlist by hic-nlint.
  int slots = 0;
  /// Dead entries / pseudo-ports removed by a hic-bound sizing hint
  /// before generation (0 unless bound.apply_sizing pruned something).
  int pruned_deps = 0;
  int pruned_ports = 0;
  fpga::MapResult area;
  fpga::TimingResult timing;
};

/// Owns everything produced by a compilation. Not movable: later stages
/// hold references into earlier ones.
class CompileResult {
 public:
  CompileResult() = default;
  CompileResult(const CompileResult&) = delete;
  CompileResult& operator=(const CompileResult&) = delete;

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] const support::DiagnosticEngine& diags() const {
    return diags_;
  }
  [[nodiscard]] const hic::Program& program() const { return program_; }
  [[nodiscard]] const hic::Sema& sema() const { return *sema_; }
  [[nodiscard]] const std::vector<synth::ThreadFsm>& fsms() const {
    return fsms_;
  }
  [[nodiscard]] const synth::ThreadFsm* fsm(const std::string& thread) const;
  [[nodiscard]] const memalloc::MemoryMap& memory_map() const { return map_; }
  [[nodiscard]] const std::vector<memalloc::BramPortPlan>& port_plans()
      const {
    return plans_;
  }
  [[nodiscard]] const rtl::Design& design() const { return design_; }
  [[nodiscard]] const std::vector<BramReport>& bram_reports() const {
    return bram_reports_;
  }
  [[nodiscard]] const std::vector<std::string>& deadlock_warnings() const {
    return deadlock_warnings_;
  }
  /// Lint findings reported at (resolved) error/warning severity. Lint
  /// errors do not flip ok(): the design still generates, but drivers
  /// should fail CI on them (hicc exits 4).
  [[nodiscard]] std::size_t lint_error_count() const { return lint_errors_; }
  [[nodiscard]] std::size_t lint_warning_count() const {
    return lint_warnings_;
  }
  /// hic-verify results (empty unless options.verify.enabled; one entry
  /// for the compiled organization). Like lint, refutations do not flip
  /// ok(); drivers should fail on them (hicc exits 5).
  [[nodiscard]] const std::vector<verify::VerifyResult>& verify_results()
      const {
    return verify_results_;
  }
  [[nodiscard]] std::size_t verify_error_count() const {
    return verify_errors_;
  }
  /// hic-bound results (empty unless options.bound.enabled; one entry for
  /// the compiled organization). Like lint and verify, exceeded bounds do
  /// not flip ok(); drivers should fail on them (hicc exits 6).
  [[nodiscard]] const std::vector<bound::BoundResult>& bound_results() const {
    return bound_results_;
  }
  [[nodiscard]] std::size_t bound_error_count() const {
    return bound_errors_;
  }
  /// hic-nlint result (empty unless options.nlint.enabled; covers every
  /// generated controller module). Like the other analyses, netlist
  /// findings do not flip ok(); drivers should fail on them (hicc exits
  /// 7).
  [[nodiscard]] const nlint::NlintResult& nlint_result() const {
    return nlint_result_;
  }
  [[nodiscard]] std::size_t nlint_error_count() const {
    return nlint_errors_;
  }
  [[nodiscard]] const CompileOptions& options() const { return options_; }

  /// Generated RTL of every controller, as Verilog-2001 text.
  [[nodiscard]] std::string verilog() const;

  /// Totals across all generated controllers.
  [[nodiscard]] fpga::MapResult total_overhead() const;
  /// Lowest Fmax across controllers (the system clock bound).
  [[nodiscard]] double min_fmax_mhz() const;
  /// True if every controller meets the target clock.
  [[nodiscard]] bool meets_target() const;

  /// Creates a cycle-accurate system simulator over this compilation.
  /// The result must outlive the simulator.
  [[nodiscard]] std::unique_ptr<sim::SystemSim> make_simulator(
      sim::SystemOptions sim_options) const;
  [[nodiscard]] std::unique_ptr<sim::SystemSim> make_simulator() const;

  friend class Compiler;

 private:
  bool ok_ = false;
  CompileOptions options_;
  support::DiagnosticEngine diags_;
  hic::Program program_;
  std::unique_ptr<hic::Sema> sema_;
  std::vector<synth::ThreadFsm> fsms_;
  memalloc::MemoryMap map_;
  std::vector<memalloc::BramPortPlan> plans_;
  rtl::Design design_;
  std::vector<BramReport> bram_reports_;
  std::vector<std::string> deadlock_warnings_;
  std::size_t lint_errors_ = 0;
  std::size_t lint_warnings_ = 0;
  std::vector<verify::VerifyResult> verify_results_;
  std::size_t verify_errors_ = 0;
  std::vector<bound::BoundResult> bound_results_;
  std::size_t bound_errors_ = 0;
  nlint::NlintResult nlint_result_;
  std::size_t nlint_errors_ = 0;
};

class Compiler {
 public:
  explicit Compiler(CompileOptions options = {}) : options_(options) {}

  /// Runs the full flow. Returns a result whose ok() reflects front-end
  /// and analysis success; on failure the later stages are left empty and
  /// diags() explains why.
  [[nodiscard]] std::unique_ptr<CompileResult> compile(
      std::string_view source) const;

 private:
  CompileOptions options_;
};

/// Human-readable compilation report (threads, dependencies, memory map,
/// per-controller area and timing against the target clock).
[[nodiscard]] std::string render_report(const CompileResult& result);

}  // namespace hicsync::core
