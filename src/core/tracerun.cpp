#include "core/tracerun.h"

#include <memory>

#include "cover/db.h"
#include "cover/registry.h"
#include "cover/report.h"
#include "cover/sink.h"
#include "diffview/bundle.h"
#include "support/strings.h"
#include "trace/bus.h"
#include "trace/chrome.h"
#include "trace/metrics.h"
#include "trace/vcd.h"

namespace hicsync::core {

TraceRunResult run_traced(const CompileResult& result,
                          const TraceRunOptions& options) {
  TraceRunResult out;

  trace::TraceBus bus;
  std::unique_ptr<trace::MetricsSink> metrics;
  std::unique_ptr<trace::VcdSink> vcd;
  std::unique_ptr<trace::ChromeTraceSink> chrome;
  std::unique_ptr<diffview::BundleCaptureSink> bundle;
  // A bundle embeds a metrics snapshot, so capture implies the sink.
  if (options.sinks.metrics || options.sinks.bundle) {
    metrics = std::make_unique<trace::MetricsSink>();
    bus.attach(metrics.get());
  }
  if (options.sinks.bundle) {
    bundle = std::make_unique<diffview::BundleCaptureSink>();
    bus.attach(bundle.get());
  }
  if (options.sinks.vcd) {
    vcd = std::make_unique<trace::VcdSink>();
    bus.attach(vcd.get());
  }
  if (options.sinks.chrome) {
    chrome = std::make_unique<trace::ChromeTraceSink>();
    bus.attach(chrome.get());
  }
  cover::CoverageModel cover_model;
  cover::ModelInputs cover_inputs;
  std::unique_ptr<cover::CoverageSink> cover_sink;
  if (options.cover) {
    cover_inputs = cover::inputs_from(result.options().organization,
                                      result.fsms(), result.memory_map(),
                                      result.port_plans());
    cover::declare_model(cover::CoverRegistry::builtin(), cover_inputs,
                         cover_model);
    cover_sink = std::make_unique<cover::CoverageSink>(cover_model,
                                                       cover_inputs);
    bus.attach(cover_sink.get());
  }

  auto simulator = result.make_simulator();
  simulator->set_trace(&bus);
  out.converged = simulator->run_until_passes(options.passes,
                                              options.max_cycles);
  out.cycles = simulator->cycle();
  bus.finish(out.cycles);

  if (options.sinks.metrics) {
    out.metrics_text = metrics->report_text();
    out.metrics_json = metrics->report_json();
  }
  if (vcd != nullptr) out.vcd = vcd->str();
  if (chrome != nullptr) out.chrome_json = chrome->str();
  if (cover_sink != nullptr) {
    out.cover_text = cover::emit_report_md(cover_model);
    out.cover_record = cover::to_record(
        cover_model, options.cover_run_id,
        cover::org_prefix(result.options().organization));
  }
  if (bundle != nullptr) {
    diffview::Manifest manifest;
    manifest.run_id = options.bundle_run_id;
    manifest.program = options.bundle_program;
    manifest.source_digest = options.bundle_source_digest;
    manifest.organization = sim::to_string(result.options().organization);
    manifest.use_cam = result.options().use_cam;
    manifest.chain = result.options().schedule.chain_states;
    manifest.infer = result.options().infer_dependencies;
    manifest.passes = options.passes;
    manifest.max_cycles = options.max_cycles;
    manifest.cycles = out.cycles;
    manifest.converged = out.converged;
    for (const BramReport& report : result.bram_reports()) {
      diffview::AreaRow row;
      row.bram_id = report.bram_id;
      row.module_name = report.module_name;
      row.luts = report.area.luts;
      row.ffs = report.area.ffs;
      row.slices = report.area.slices;
      row.fmax_mhz = report.timing.fmax_mhz;
      manifest.areas.push_back(std::move(row));
    }
    out.bundle_manifest_json = manifest.to_json();
    out.bundle_events_jsonl = bundle->events_jsonl();
    out.bundle_metrics_json = metrics->report_json();
  }

  out.stall_report = simulator->stall_report();

  for (const sim::DepRound& round : simulator->rounds()) {
    out.rounds_text += support::format(
        "  %s: produce@%llu, %zu consumer read(s), completion latency "
        "%llu\n",
        round.dep_id.c_str(),
        static_cast<unsigned long long>(round.produce_grant_cycle),
        round.consume_cycles.size(),
        static_cast<unsigned long long>(round.completion_latency()));
  }
  return out;
}

}  // namespace hicsync::core
