#include "core/tbgen.h"

#include <stdexcept>

#include "memorg/deplist.h"
#include "rtl/testbench.h"
#include "rtl/verilog.h"

namespace hicsync::core {

namespace {

std::string idx(const char* base, int i) {
  return std::string(base) + std::to_string(i);
}

/// Steps until `signal` is 1 (pre-edge); throws after `max` cycles.
void wait_for(rtl::TestbenchRecorder& rec, const std::string& signal,
              int max) {
  for (int i = 0; i < max; ++i) {
    rec.sim().settle();
    if (rec.sim().get(signal) != 0) return;
    rec.step();
  }
  throw std::runtime_error("testbench generation: '" + signal +
                           "' never asserted");
}

}  // namespace

std::string generate_controller_testbench(const CompileResult& result,
                                          int bram_id) {
  const memalloc::BramInstance* bram = nullptr;
  for (const auto& b : result.memory_map().brams()) {
    if (b.id == bram_id) bram = &b;
  }
  const memalloc::BramPortPlan* plan = nullptr;
  for (const auto& p : result.port_plans()) {
    if (p.bram_id == bram_id) plan = &p;
  }
  const rtl::Module* module =
      result.design().find("memorg_bram" + std::to_string(bram_id));
  if (bram == nullptr || plan == nullptr || module == nullptr) {
    throw std::runtime_error("testbench generation: unknown bram id " +
                             std::to_string(bram_id));
  }
  auto entries = memorg::build_dep_entries(*bram, *plan);
  const bool event_driven =
      result.options().organization == sim::OrgKind::EventDriven;

  rtl::TestbenchRecorder rec(*module);
  rec.reset();

  std::uint64_t value = 0xC0DE;
  for (const memorg::DepEntry& e : entries) {
    // Produce.
    if (event_driven) {
      // Wait for the producer's slot, then fire.
      int slot = -1;
      {
        // Slot index: entries in order, producer slot first.
        int s = 0;
        for (const memorg::DepEntry& e2 : entries) {
          if (&e2 == &e) {
            slot = s;
            break;
          }
          s += 1 + static_cast<int>(e2.consumer_ports.size());
        }
      }
      while (static_cast<int>(rec.sim().get("slot")) != slot) rec.step();
      rec.set_input(idx("p_req", e.producer_port), 1);
      rec.set_input(idx("p_addr", e.producer_port), e.base_address);
      rec.set_input(idx("p_wdata", e.producer_port), value);
      wait_for(rec, idx("p_grant", e.producer_port), 8);
      rec.step();
      rec.set_input(idx("p_req", e.producer_port), 0);
    } else {
      rec.set_input(idx("d_req", e.producer_port), 1);
      rec.set_input(idx("d_addr", e.producer_port), e.base_address);
      rec.set_input(idx("d_wdata", e.producer_port), value);
      wait_for(rec, idx("d_grant", e.producer_port), 8);
      rec.step();
      rec.set_input(idx("d_req", e.producer_port), 0);
    }
    // Consume, in the static order.
    for (int port : e.consumer_ports) {
      rec.set_input(idx("c_req", port), 1);
      rec.set_input(idx("c_addr", port), e.base_address);
      if (event_driven) {
        // The slot fires on the request; data valid two cycles later.
        rec.step();
        rec.set_input(idx("c_req", port), 0);
        wait_for(rec, idx("c_valid", port), 8);
      } else {
        wait_for(rec, idx("c_grant", port), 8);
        rec.step();
        rec.set_input(idx("c_req", port), 0);
        wait_for(rec, idx("c_valid", port), 8);
      }
      rec.step();
    }
    ++value;
  }
  // A few trailing idle cycles so the tail expectations are recorded.
  rec.step();
  rec.step();

  std::string out = rtl::emit_module(*module);
  out += "\n";
  out += rec.emit("tb_" + module->name());
  return out;
}

}  // namespace hicsync::core
