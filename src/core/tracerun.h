// Traced simulation driver: compiles-and-runs is the caller's job; this
// takes a finished CompileResult, attaches the requested hic-trace sinks,
// runs the cycle-accurate simulation and hands back every rendered
// artifact. hicc's `--trace=` flag is a thin wrapper over this, and tests
// use it to get metrics/VCD/chrome output without re-implementing the
// sink plumbing.
#pragma once

#include <cstdint>
#include <string>

#include "core/compiler.h"
#include "trace/options.h"

namespace hicsync::core {

struct TraceRunOptions {
  trace::TraceOptions sinks;
  int passes = 1;
  std::uint64_t max_cycles = 100000;
  /// Attach a cover::CoverageSink: declare the full covergroup model for
  /// the compiled program, record hits, and render the coverage report
  /// plus one appendable JSONL DB record (`hicc --cover`).
  bool cover = false;
  /// Stamped into the coverage DB record (e.g. "fig1@arbitrated").
  std::string cover_run_id;
  /// Stamped into the bundle manifest when sinks.bundle is set
  /// (run id like the cover one; program = source name; digest of the
  /// source text, diffview::digest_hex).
  std::string bundle_run_id;
  std::string bundle_program;
  std::string bundle_source_digest;
};

/// Everything a traced run produces. Artifact strings are only filled for
/// the sinks enabled in TraceRunOptions::sinks.
struct TraceRunResult {
  bool converged = false;
  std::uint64_t cycles = 0;
  std::string metrics_text;   // sinks.metrics
  std::string metrics_json;   // sinks.metrics
  std::string vcd;            // sinks.vcd
  std::string chrome_json;    // sinks.chrome
  /// Per-thread diagnostics; most useful when !converged (who is stuck
  /// waiting on what), but always filled.
  std::string stall_report;
  /// The same produce→consume round summary `hicc --simulate` prints.
  std::string rounds_text;
  /// Markdown coverage report of this single run (options.cover).
  std::string cover_text;
  /// One JSONL coverage-DB record, no trailing newline (options.cover).
  std::string cover_record;
  /// Run-bundle pieces (sinks.bundle): the manifest, the captured event
  /// stream, and a metrics snapshot taken even when sinks.metrics was off.
  /// Write with diffview::write_bundle (cover_record doubles as the
  /// bundle's cover.jsonl when options.cover is also set).
  std::string bundle_manifest_json;
  std::string bundle_events_jsonl;
  std::string bundle_metrics_json;
};

/// Runs `result`'s program for `passes` passes with the requested trace
/// sinks attached. `result.ok()` must be true.
[[nodiscard]] TraceRunResult run_traced(const CompileResult& result,
                                        const TraceRunOptions& options);

}  // namespace hicsync::core
