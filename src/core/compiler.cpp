#include "core/compiler.h"

#include <algorithm>
#include <map>

#include "analysis/depgraph.h"
#include "hic/infer.h"
#include "hic/parser.h"
#include "memalloc/sizing.h"
#include "memorg/arbitrated.h"
#include "memorg/eventdriven.h"
#include "rtl/verilog.h"
#include "support/strings.h"

namespace hicsync::core {

namespace {

std::uint64_t count_statements(const std::vector<hic::StmtPtr>& body);

std::uint64_t count_statements(const hic::Stmt& s) {
  std::uint64_t n = 1;
  n += count_statements(s.then_body);
  n += count_statements(s.else_body);
  n += count_statements(s.body);
  for (const hic::CaseArm& arm : s.arms) n += count_statements(arm.body);
  if (s.init) n += count_statements(*s.init);
  if (s.step) n += count_statements(*s.step);
  return n;
}

std::uint64_t count_statements(const std::vector<hic::StmtPtr>& body) {
  std::uint64_t n = 0;
  for (const hic::StmtPtr& s : body) {
    if (s) n += count_statements(*s);
  }
  return n;
}

}  // namespace

const synth::ThreadFsm* CompileResult::fsm(const std::string& thread) const {
  for (const auto& f : fsms_) {
    if (f.thread_name() == thread) return &f;
  }
  return nullptr;
}

std::string CompileResult::verilog() const {
  return rtl::emit_design(design_);
}

fpga::MapResult CompileResult::total_overhead() const {
  fpga::MapResult total;
  for (const BramReport& r : bram_reports_) {
    total.luts += r.area.luts;
    total.carry_luts += r.area.carry_luts;
    total.ffs += r.area.ffs;
    total.slices += r.area.slices;
    total.bram_blocks += r.area.bram_blocks;
    total.logic_levels = std::max(total.logic_levels, r.area.logic_levels);
    total.max_carry_bits =
        std::max(total.max_carry_bits, r.area.max_carry_bits);
  }
  return total;
}

double CompileResult::min_fmax_mhz() const {
  double fmax = 0.0;
  bool first = true;
  for (const BramReport& r : bram_reports_) {
    if (first || r.timing.fmax_mhz < fmax) fmax = r.timing.fmax_mhz;
    first = false;
  }
  return fmax;
}

bool CompileResult::meets_target() const {
  for (const BramReport& r : bram_reports_) {
    if (!r.timing.meets(options_.target_clock_mhz)) return false;
  }
  return true;
}

std::unique_ptr<sim::SystemSim> CompileResult::make_simulator(
    sim::SystemOptions sim_options) const {
  return std::make_unique<sim::SystemSim>(program_, *sema_, map_, plans_,
                                          sim_options);
}

std::unique_ptr<sim::SystemSim> CompileResult::make_simulator() const {
  sim::SystemOptions opts;
  opts.organization = options_.organization;
  opts.restart_threads = true;
  return make_simulator(opts);
}

std::unique_ptr<CompileResult> Compiler::compile(
    std::string_view source) const {
  auto result = std::make_unique<CompileResult>();
  CompileResult& r = *result;
  r.options_ = options_;
  r.diags_.set_source_name(options_.source_name);

  // hic-perf: each pass is bracketed below; with no profiler attached the
  // brackets cost one branch each (bench_compile asserts this).
  perf::PassTimer* prof = options_.profiler;

  // Front end. Lexing happens inside the parser, so "parse" covers both.
  {
    perf::ScopedPhase phase(prof, "parse");
    r.program_ = hic::parse_source(source, r.diags_);
  }
  if (prof != nullptr) {
    prof->set_count("ast.threads", r.program_.threads.size());
    std::uint64_t stmts = 0;
    for (const hic::ThreadDecl& t : r.program_.threads) {
      stmts += count_statements(t.body);
    }
    prof->set_count("ast.statements", stmts);
  }
  if (r.diags_.has_errors()) return result;
  if (options_.infer_dependencies) {
    perf::ScopedPhase phase(prof, "infer");
    hic::infer_dependencies(r.program_, r.diags_);
    if (r.diags_.has_errors()) return result;
  }
  {
    perf::ScopedPhase phase(prof, "sema");
    r.sema_ = std::make_unique<hic::Sema>(r.program_, r.diags_);
    if (!r.sema_->run()) return result;
  }
  if (prof != nullptr) {
    prof->set_count("ast.dependencies", r.sema_->dependencies().size());
  }

  // Static deadlock detection (§1: "deadlocks are identified statically").
  {
    perf::ScopedPhase phase(prof, "deadlock");
    auto depgraph = analysis::ThreadDepGraph::build(r.program_,
                                                    r.sema_->dependencies());
    r.deadlock_warnings_ = depgraph.deadlock_reports();
  }

  // hic-lint, stage 1: AST/CFG/dependence-level hazard checks.
  namespace lint = analysis::lint;
  std::unique_ptr<lint::LintContext> lint_ctx;
  lint::LintDriver lint_driver(options_.lint, r.diags_);
  if (options_.lint.enabled) {
    perf::ScopedPhase phase(prof, "lint");
    lint_ctx = std::make_unique<lint::LintContext>(r.program_, *r.sema_);
    lint::LintDriver::Summary s =
        lint_driver.run(lint::Stage::PostSema, *lint_ctx);
    r.lint_errors_ += static_cast<std::size_t>(s.errors);
    r.lint_warnings_ += static_cast<std::size_t>(s.warnings);
  }

  // Behavioural synthesis + scheduling.
  {
    perf::ScopedPhase phase(prof, "synth");
    for (const hic::ThreadDecl& t : r.program_.threads) {
      synth::ThreadFsm fsm = synth::ThreadFsm::synthesize(t, *r.sema_);
      synth::schedule(fsm, options_.schedule);
      r.fsms_.push_back(std::move(fsm));
    }
  }
  if (prof != nullptr) {
    std::uint64_t states = 0;
    for (const synth::ThreadFsm& f : r.fsms_) states += f.states().size();
    prof->set_count("synth.fsm_states", states);
  }

  // Memory allocation and port planning.
  {
    perf::ScopedPhase phase(prof, "memalloc");
    r.map_ = memalloc::Allocator(options_.allocator).allocate(*r.sema_);
    r.plans_ = memalloc::PortPlanner::plan(*r.sema_, r.map_, r.fsms_);
  }

  // hic-lint, stage 2: port-pressure and capacity findings, surfaced here
  // instead of as failures inside the generators.
  if (options_.lint.enabled) {
    perf::ScopedPhase phase(prof, "lint");
    lint_ctx->attach_memory(&r.map_, &r.plans_);
    lint::LintDriver::Summary s =
        lint_driver.run(lint::Stage::PreGenerate, *lint_ctx);
    r.lint_errors_ += static_cast<std::size_t>(s.errors);
    r.lint_warnings_ += static_cast<std::size_t>(s.warnings);
  }

  // hic-bound: abstract-interpretation bounds on occupancy, blocking, and
  // dead ports (docs/ANALYSIS.md). Runs before the lint-only early exit so
  // `--bound --lint-only` composes (the clients need no RTL, only the
  // memory map and port plans). Exceeded bounds surface as bound-* check
  // IDs; like lint and verify they do not flip ok().
  if (options_.bound.enabled) {
    perf::ScopedPhase phase(prof, "bound");
    bound::BoundResult br =
        bound::run_bound(r.program_, *r.sema_, r.map_, r.plans_,
                         options_.organization, options_.bound);
    r.bound_errors_ += bound::report_findings(br, *r.sema_, r.diags_);
    if (prof != nullptr) {
      prof->set_count("bound.controllers", br.occupancy.size());
      prof->set_count("bound.endpoints", br.blocking.size());
      prof->set_count("bound.worklist_steps", br.worklist_steps);
    }
    r.bound_results_.push_back(std::move(br));
  }

  // The lint-only early exit. With --nlint the flow continues: the netlist
  // checks need generated controllers, so generation (and nlint) still run
  // while verification stays skipped below.
  const bool lint_only = options_.lint.enabled && options_.lint.only;
  if (lint_only && !options_.nlint.enabled) {
    r.ok_ = true;
    return result;
  }

  // hic-verify: explicit-state model checking of the synchronization
  // behavior under the selected organization (docs/VERIFICATION.md).
  // Refutations surface as diagnostics with verify-* check IDs; like lint
  // findings they do not flip ok() — the design still generates.
  if (options_.verify.enabled && !lint_only) {
    perf::ScopedPhase phase(prof, "verify");
    verify::VerifyResult vr =
        verify::run_verify(r.program_, *r.sema_, r.map_, r.plans_,
                           options_.organization, options_.verify);
    r.verify_errors_ += verify::report_findings(vr, *r.sema_, r.diags_);
    if (prof != nullptr) {
      prof->set_count("verify.states", vr.states);
      prof->set_count("verify.transitions", vr.transitions);
    }
    r.verify_results_.push_back(std::move(vr));
  }

  // Generate one controller per BRAM and map it.
  fpga::TechMapper mapper;
  for (const memalloc::BramInstance& bram : r.map_.brams()) {
    const memalloc::BramPortPlan* plan = nullptr;
    for (const auto& p : r.plans_) {
      if (p.bram_id == bram.id) plan = &p;
    }
    if (plan == nullptr) continue;

    // hic-bound sizing feedback: drop provably dead dependency-list
    // entries (and pseudo-ports left with no deps) before generating.
    const memalloc::BramInstance* gen_bram = &bram;
    const memalloc::BramPortPlan* gen_plan = plan;
    memalloc::PrunedBram pruned;
    if (options_.bound.apply_sizing && !r.bound_results_.empty()) {
      for (const memalloc::DepListHint& hint :
           r.bound_results_.back().sizing_hints) {
        if (hint.bram_id != bram.id || hint.dead_deps.empty()) continue;
        pruned = memalloc::apply_dep_list_hint(bram, *plan, hint);
        gen_bram = &pruned.bram;
        gen_plan = &pruned.plan;
      }
    }

    BramReport report;
    report.bram_id = bram.id;
    report.consumers = gen_plan->consumer_pseudo_ports();
    report.producers = gen_plan->producer_pseudo_ports();
    report.dependencies = static_cast<int>(gen_bram->dependencies.size());
    report.pruned_deps = pruned.removed_deps;
    report.pruned_ports =
        pruned.removed_consumer_ports + pruned.removed_producer_ports;
    report.module_name = "memorg_bram" + std::to_string(bram.id);
    rtl::Module* m = nullptr;
    {
      perf::ScopedPhase phase(prof, "memorg");
      if (options_.organization == sim::OrgKind::Arbitrated) {
        memorg::ArbitratedConfig cfg =
            memorg::arbitrated_config_from(*gen_bram, *gen_plan);
        cfg.use_cam = options_.use_cam;
        m = &memorg::generate_arbitrated(r.design_, cfg, report.module_name);
      } else {
        memorg::EventDrivenConfig cfg =
            memorg::eventdriven_config_from(*gen_bram, *gen_plan);
        report.slots = std::max(1, memorg::total_slots(cfg));
        m = &memorg::generate_eventdriven(r.design_, cfg, report.module_name);
      }
    }
    {
      perf::ScopedPhase phase(prof, "techmap");
      report.area = mapper.map(*m);
    }
    {
      perf::ScopedPhase phase(prof, "timing");
      report.timing = fpga::estimate_timing(report.area,
                                            /*launches_from_bram=*/false);
    }
    r.bram_reports_.push_back(std::move(report));
  }
  if (prof != nullptr) {
    std::uint64_t nets = 0;
    for (const auto& module : r.design_.modules()) nets += module->nets().size();
    prof->set_count("netlist.modules", r.design_.modules().size());
    prof->set_count("netlist.nets", nets);
    fpga::MapResult total = r.total_overhead();
    prof->set_count("netlist.luts", static_cast<std::uint64_t>(total.luts));
    prof->set_count("netlist.ffs", static_cast<std::uint64_t>(total.ffs));
  }

  // hic-nlint: structural checks over the controllers just generated, with
  // each module's census expectations taken from its own BramReport (so
  // the netlist is held to the same numbers the area model and any
  // DepListHint pruning reported). Findings surface as nlint-* check IDs;
  // like lint/verify/bound they do not flip ok() (hicc exits 7).
  if (options_.nlint.enabled) {
    perf::ScopedPhase phase(prof, "nlint");
    std::map<std::string, nlint::Expectations> expectations;
    for (const BramReport& br : r.bram_reports_) {
      nlint::Expectations e;
      e.org = options_.organization == sim::OrgKind::Arbitrated
                  ? nlint::Expectations::Org::Arbitrated
                  : nlint::Expectations::Org::EventDriven;
      e.ffs = br.area.ffs;
      e.dependencies = br.dependencies;
      e.slots = br.slots;
      e.consumers = br.consumers;
      e.producers = br.producers;
      expectations.emplace(br.module_name, e);
    }
    nlint::NlintResult nr =
        nlint::run_design(r.design_, options_.nlint, {}, expectations);
    r.nlint_errors_ += nlint::report_findings(nr, r.diags_);
    if (prof != nullptr) {
      int claims = 0;
      std::uint64_t facts = 0;
      for (const nlint::ModuleSummary& ms : nr.modules) {
        claims += ms.claims_total;
        facts += ms.facts_derived;
      }
      prof->set_count("nlint.modules", nr.modules.size());
      prof->set_count("nlint.claims", static_cast<std::uint64_t>(claims));
      prof->set_count("nlint.facts", facts);
    }
    r.nlint_result_ = std::move(nr);
  }

  r.ok_ = true;
  return result;
}

std::string render_report(const CompileResult& r) {
  std::string out;
  out += "=== hicsync compilation report ===\n";
  out += support::format("organization: %s\n",
                         sim::to_string(r.options().organization));
  if (!r.ok()) {
    out += "FAILED:\n" + r.diags().str();
    return out;
  }

  out += support::format("threads: %zu\n", r.program().threads.size());
  for (const auto& fsm : r.fsms()) {
    out += support::format(
        "  %-12s %zu states, %zu blocking, %zu producing\n",
        fsm.thread_name().c_str(), fsm.states().size(),
        fsm.blocking_states().size(), fsm.producing_states().size());
  }

  out += support::format("dependencies: %zu\n",
                         r.sema().dependencies().size());
  for (const auto& dep : r.sema().dependencies()) {
    out += "  " + dep.id + ": " + dep.shared_var->qualified_name() + " -> ";
    for (std::size_t i = 0; i < dep.consumers.size(); ++i) {
      if (i != 0) out += ", ";
      out += dep.consumers[i].thread;
    }
    out += support::format(" (dependency number %d)\n",
                           dep.dependency_number());
  }

  for (const std::string& w : r.deadlock_warnings()) {
    out += "WARNING: " + w + "\n";
  }

  out += "memory map:\n" + support::indent(r.memory_map().str(), 2) + "\n";

  out += "controllers:\n";
  for (const BramReport& br : r.bram_reports()) {
    out += support::format(
        "  %s  P/C=%d/%d  LUT %d  FF %d  slices %d  BRAM %d  "
        "Fmax %.1f MHz (%s %.0f MHz target)\n",
        br.module_name.c_str(), br.producers, br.consumers, br.area.luts,
        br.area.ffs, br.area.slices, br.area.bram_blocks,
        br.timing.fmax_mhz,
        br.timing.meets(r.options().target_clock_mhz) ? "meets" : "misses",
        r.options().target_clock_mhz);
  }
  fpga::MapResult total = r.total_overhead();
  out += support::format(
      "total controller overhead: LUT %d  FF %d  slices %d\n", total.luts,
      total.ffs, total.slices);
  return out;
}

}  // namespace hicsync::core
