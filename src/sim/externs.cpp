#include "sim/externs.h"

namespace hicsync::sim {
namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

std::uint64_t ExternFuncs::eval(const std::string& name,
                                const std::vector<std::uint64_t>& args) const {
  auto it = fns_.find(name);
  if (it != fns_.end()) return it->second(args);
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : name) h = mix(h, static_cast<std::uint64_t>(c));
  for (std::uint64_t a : args) h = mix(h, a);
  return h;
}

}  // namespace hicsync::sim
