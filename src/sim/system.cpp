#include "sim/system.h"

#include <algorithm>
#include <stdexcept>

#include "memalloc/sizing.h"
#include "memorg/probe.h"
#include "support/bits.h"
#include "support/strings.h"

namespace hicsync::sim {

const char* to_string(OrgKind k) {
  switch (k) {
    case OrgKind::Arbitrated: return "arbitrated";
    case OrgKind::EventDriven: return "event-driven";
  }
  return "unknown";
}

std::uint64_t DepRound::completion_latency() const {
  std::uint64_t last = produce_grant_cycle;
  for (const auto& [thread, cycle] : consume_cycles) {
    last = std::max(last, cycle);
  }
  return last - produce_grant_cycle;
}

namespace {

std::uint64_t mask_width(std::uint64_t v, int width) {
  if (width <= 0 || width >= 64) return v;
  return v & ((1ULL << width) - 1);
}

}  // namespace

// ---------------------------------------------------------------------------
// Controller: one generated memory organization + its host-side bookkeeping.
// ---------------------------------------------------------------------------

struct SystemSim::Controller {
  int bram_id = -1;
  OrgKind kind = OrgKind::Arbitrated;
  const memalloc::BramPortPlan* plan = nullptr;
  std::vector<memorg::DepEntry> entries;
  std::unique_ptr<rtl::ModuleSim> sim;

  // Port A host-side sharing: one owner per cycle, rotating for fairness.
  std::vector<std::string> a_waiters;
  std::string a_owner;
  std::size_t a_rotate = 0;

  // hic-trace probe over the generated netlist (grants, slot).
  std::unique_ptr<memorg::ControllerProbe> probe;

  // Event-driven slot table: slot index of each (dep, endpoint).
  struct SlotRef {
    std::string dep_id;
    bool is_producer = false;
    int pseudo_port = 0;
  };
  std::vector<SlotRef> slot_table;

  [[nodiscard]] int pseudo_port(const std::string& thread,
                                memalloc::LogicalPort port) const {
    const memalloc::PortClient* c = plan->client_for(thread, port);
    return c != nullptr ? c->pseudo_port : -1;
  }

  /// Slot index of a dependency endpoint (event-driven only); -1 if absent.
  [[nodiscard]] int slot_of(const std::string& dep_id, bool producer,
                            int pseudo_port_index) const {
    for (std::size_t s = 0; s < slot_table.size(); ++s) {
      const SlotRef& r = slot_table[s];
      if (r.dep_id == dep_id && r.is_producer == producer &&
          r.pseudo_port == pseudo_port_index) {
        return static_cast<int>(s);
      }
    }
    return -1;
  }

  void begin_cycle() {
    // Clear all request-style inputs; threads re-assert each cycle.
    if (kind == OrgKind::Arbitrated) {
      for (const auto& c : plan->clients) {
        if (c.port == memalloc::LogicalPort::C) {
          sim->set_input("c_req" + std::to_string(c.pseudo_port), 0);
        } else if (c.port == memalloc::LogicalPort::D) {
          sim->set_input("d_req" + std::to_string(c.pseudo_port), 0);
        }
      }
    } else {
      for (const auto& c : plan->clients) {
        if (c.port == memalloc::LogicalPort::C) {
          sim->set_input("c_req" + std::to_string(c.pseudo_port), 0);
        } else if (c.port == memalloc::LogicalPort::D) {
          sim->set_input("p_req" + std::to_string(c.pseudo_port), 0);
        }
      }
    }
    sim->set_input("a_en", 0);
    sim->set_input("a_we", 0);
    // Resolve port A ownership among last cycle's waiters.
    if (!a_waiters.empty()) {
      std::sort(a_waiters.begin(), a_waiters.end());
      a_owner = a_waiters[a_rotate % a_waiters.size()];
      ++a_rotate;
    } else {
      a_owner.clear();
    }
    a_waiters.clear();
  }

  /// Thread asks to use port A this cycle; true if it owns it.
  bool claim_port_a(const std::string& thread) {
    if (a_owner.empty()) a_owner = thread;  // first claimant wins
    if (a_owner == thread) return true;
    if (std::find(a_waiters.begin(), a_waiters.end(), thread) ==
        a_waiters.end()) {
      a_waiters.push_back(thread);
    }
    return false;
  }

  void release_port_a(const std::string& thread) {
    if (a_owner == thread) a_owner.clear();
  }
};

// ---------------------------------------------------------------------------
// ThreadExec: interprets one synthesized FSM.
// ---------------------------------------------------------------------------

struct SystemSim::ThreadExec {
  std::string name;
  synth::ThreadFsm fsm;
  std::map<const hic::Symbol*, std::uint64_t> regs;
  std::function<bool(std::uint64_t)> gate;
  int passes = 0;

  enum class Mode { Gated, Plan, Fetch, Compute, Write, Advance, Halted };
  Mode mode = Mode::Gated;
  int state = -1;

  // One memory operation in flight.
  struct MemOp {
    enum class Stage {
      Idle,
      PortA,          // waiting to own / issue on port A
      PortA_Data,     // port A read issued, data next cycle
      Request,        // arbitrated C/D request outstanding
      WaitValid,      // waiting for read data valid
      EvWaitSlot,     // event-driven: waiting for our slot
      Done,
    };
    Stage stage = Stage::Idle;
    Controller* ctrl = nullptr;
    bool is_write = false;
    synth::AccessRole role = synth::AccessRole::Plain;
    const hic::Dependency* dep = nullptr;
    std::uint64_t addr = 0;
    std::uint64_t wdata = 0;
    std::uint64_t result = 0;
    int pseudo_port = -1;
    int target_slot = -1;   // event-driven
    std::size_t round = static_cast<std::size_t>(-1);  // DepRound index
    std::uint64_t wait_cycles = 0;  // consecutive stalled cycles
  };

  // Execution plan of the current state: one entry per statement (the
  // scheduler may have chained several into the state).
  struct StmtPlan {
    const hic::Stmt* stmt = nullptr;   // Assign; nullptr for a branch cond
    const hic::Expr* cond = nullptr;   // Branch only
    struct Operand {
      const hic::Expr* expr = nullptr;
      MemOp op;
      bool fetched = false;
    };
    std::vector<Operand> operands;
    MemOp write;
    std::uint64_t computed = 0;
    bool computed_valid = false;
  };
  std::vector<StmtPlan> plan;
  std::size_t plan_index = 0;
  std::size_t operand_index = 0;
  std::uint64_t branch_value = 0;
  bool trace_blocked = false;  // a ThreadBlock event is open

  /// The memory operation currently in flight, if any.
  [[nodiscard]] const MemOp* current_op() const {
    if (plan_index >= plan.size()) return nullptr;
    const StmtPlan& p = plan[plan_index];
    if (mode == Mode::Fetch && operand_index < p.operands.size()) {
      return &p.operands[operand_index].op;
    }
    if (mode == Mode::Write) return &p.write;
    return nullptr;
  }
};

// ---------------------------------------------------------------------------

SystemSim::SystemSim(const hic::Program& program, const hic::Sema& sema,
                     const memalloc::MemoryMap& map,
                     const std::vector<memalloc::BramPortPlan>& plans,
                     SystemOptions options)
    : program_(program), sema_(sema), map_(map), options_(options) {
  // Generate one controller per BRAM.
  for (const memalloc::BramInstance& bram : map.brams()) {
    const memalloc::BramPortPlan* plan = nullptr;
    for (const auto& p : plans) {
      if (p.bram_id == bram.id) plan = &p;
    }
    if (plan == nullptr) {
      throw std::runtime_error("SystemSim: no port plan for bram " +
                               std::to_string(bram.id));
    }
    auto ctrl = std::make_unique<Controller>();
    ctrl->bram_id = bram.id;
    ctrl->kind = options.organization;
    ctrl->plan = plan;
    ctrl->entries = memorg::build_dep_entries(bram, *plan);
    std::string name = "memorg_bram" + std::to_string(bram.id);
    if (options.organization == OrgKind::Arbitrated) {
      memorg::ArbitratedConfig cfg = memorg::arbitrated_config_from(bram, *plan);
      rtl::Module& m = memorg::generate_arbitrated(design_, cfg, name);
      ctrl->sim = std::make_unique<rtl::ModuleSim>(m);
    } else {
      memorg::EventDrivenConfig cfg =
          memorg::eventdriven_config_from(bram, *plan);
      rtl::Module& m = memorg::generate_eventdriven(design_, cfg, name);
      ctrl->sim = std::make_unique<rtl::ModuleSim>(m);
      // Mirror the generator's slot enumeration.
      for (const memorg::DepEntry& e : ctrl->entries) {
        ctrl->slot_table.push_back(
            Controller::SlotRef{e.id, true, e.producer_port});
        for (int cp : e.consumer_ports) {
          ctrl->slot_table.push_back(Controller::SlotRef{e.id, false, cp});
        }
      }
    }
    memorg::ProbeConfig probe_cfg;
    probe_cfg.controller = bram.id;
    probe_cfg.event_driven = options.organization == OrgKind::EventDriven;
    probe_cfg.num_consumers = plan->consumer_pseudo_ports();
    probe_cfg.num_producers = plan->producer_pseudo_ports();
    ctrl->probe = std::make_unique<memorg::ControllerProbe>(probe_cfg);
    ctrl->sim->reset();
    controllers_.push_back(std::move(ctrl));
  }

  // Synthesize and stage every thread.
  for (const hic::ThreadDecl& t : program.threads) {
    auto exec = std::make_unique<ThreadExec>();
    exec->name = t.name;
    exec->fsm = synth::ThreadFsm::synthesize(t, sema);
    const bool restart = options_.restart_threads;
    exec->gate = [restart, raw = exec.get()](std::uint64_t) {
      return restart || raw->passes == 0;
    };
    if (const auto* table = sema.thread_table(t.name)) {
      for (hic::Symbol* s : table->symbols()) {
        if (!memalloc::is_memory_resident(*s)) exec->regs[s] = 0;
      }
    }
    threads_.push_back(std::move(exec));
  }
}

SystemSim::~SystemSim() = default;

void SystemSim::reset() {
  cycle_ = 0;
  rounds_.clear();
  open_round_.clear();
  for (auto& ctrl : controllers_) {
    ctrl->sim->clear_state();
    ctrl->sim->reset();
    ctrl->a_waiters.clear();
    ctrl->a_owner.clear();
    ctrl->a_rotate = 0;
    ctrl->probe->reset();
  }
  for (auto& tp : threads_) {
    ThreadExec& t = *tp;
    t.passes = 0;
    t.mode = ThreadExec::Mode::Gated;
    t.state = -1;
    t.plan.clear();
    t.plan_index = 0;
    t.operand_index = 0;
    t.branch_value = 0;
    t.trace_blocked = false;
    for (auto& [sym, value] : t.regs) value = 0;
  }
}

SystemSim::ThreadExec* SystemSim::find_thread(const std::string& name) const {
  for (const auto& t : threads_) {
    if (t->name == name) return t.get();
  }
  return nullptr;
}

void SystemSim::set_gate(const std::string& thread,
                         std::function<bool(std::uint64_t)> gate) {
  ThreadExec* t = find_thread(thread);
  if (t == nullptr) {
    throw std::runtime_error("SystemSim: unknown thread '" + thread + "'");
  }
  t->gate = std::move(gate);
}

int SystemSim::passes(const std::string& thread) const {
  ThreadExec* t = find_thread(thread);
  return t != nullptr ? t->passes : 0;
}

std::uint64_t SystemSim::register_value(const std::string& thread,
                                        const std::string& var) const {
  ThreadExec* t = find_thread(thread);
  if (t == nullptr) {
    throw std::runtime_error("SystemSim: unknown thread '" + thread + "'");
  }
  hic::Symbol* sym = sema_.lookup(thread, var);
  if (sym == nullptr) {
    throw std::runtime_error("SystemSim: unknown variable '" + var + "'");
  }
  auto it = t->regs.find(sym);
  if (it == t->regs.end()) {
    throw std::runtime_error("SystemSim: '" + var + "' is memory-resident; "
                             "inspect it through the controller");
  }
  return it->second;
}

bool SystemSim::is_blocked(const std::string& thread) const {
  ThreadExec* t = find_thread(thread);
  if (t == nullptr) return false;
  return t->mode == ThreadExec::Mode::Fetch ||
         t->mode == ThreadExec::Mode::Write;
}

namespace {

const char* mode_name(SystemSim::ThreadExec::Mode m) {
  using Mode = SystemSim::ThreadExec::Mode;
  switch (m) {
    case Mode::Gated: return "gated";
    case Mode::Plan: return "plan";
    case Mode::Fetch: return "fetch";
    case Mode::Compute: return "compute";
    case Mode::Write: return "write";
    case Mode::Advance: return "advance";
    case Mode::Halted: return "halted";
  }
  return "?";
}

const char* stage_name(SystemSim::ThreadExec::MemOp::Stage s) {
  using Stage = SystemSim::ThreadExec::MemOp::Stage;
  switch (s) {
    case Stage::Idle: return "idle";
    case Stage::PortA: return "waiting for port A";
    case Stage::PortA_Data: return "port A read data";
    case Stage::Request: return "waiting for grant";
    case Stage::WaitValid: return "waiting for read data";
    case Stage::EvWaitSlot: return "waiting for schedule slot";
    case Stage::Done: return "done";
  }
  return "?";
}

}  // namespace

std::vector<ThreadDiagnostic> SystemSim::thread_diagnostics() const {
  std::vector<ThreadDiagnostic> out;
  for (const auto& tp : threads_) {
    const ThreadExec& t = *tp;
    ThreadDiagnostic d;
    d.thread = t.name;
    d.passes = t.passes;
    d.mode = mode_name(t.mode);
    d.fsm_state = t.state;
    d.blocked = t.mode == ThreadExec::Mode::Fetch ||
                t.mode == ThreadExec::Mode::Write;
    if (const ThreadExec::MemOp* mo = t.current_op();
        mo != nullptr && mo->stage != ThreadExec::MemOp::Stage::Idle &&
        mo->stage != ThreadExec::MemOp::Stage::Done) {
      const char* role = mo->role == synth::AccessRole::ConsumerRead
                             ? "consumer read"
                             : (mo->role == synth::AccessRole::ProducerWrite
                                    ? "producer write"
                                    : (mo->is_write ? "write" : "read"));
      std::string port =
          mo->role == synth::AccessRole::ConsumerRead
              ? "C" + std::to_string(mo->pseudo_port)
              : (mo->role == synth::AccessRole::ProducerWrite
                     ? "D" + std::to_string(mo->pseudo_port)
                     : "A");
      d.waiting_on = support::format(
          "%s%s on bram%d port %s, %s, %llu cycle(s) waiting", role,
          mo->dep != nullptr ? (" of dep '" + mo->dep->id + "'").c_str()
                             : "",
          mo->ctrl != nullptr ? mo->ctrl->bram_id : -1, port.c_str(),
          stage_name(mo->stage),
          static_cast<unsigned long long>(mo->wait_cycles));
    }
    out.push_back(std::move(d));
  }
  return out;
}

std::string SystemSim::stall_report() const {
  std::string out = support::format(
      "simulation state at cycle %llu (%s organization):\n",
      static_cast<unsigned long long>(cycle_),
      to_string(options_.organization));
  for (const ThreadDiagnostic& d : thread_diagnostics()) {
    out += support::format("  %-12s passes=%d mode=%s fsm_state=%d%s\n",
                           d.thread.c_str(), d.passes, d.mode.c_str(),
                           d.fsm_state, d.blocked ? " BLOCKED" : "");
    if (!d.waiting_on.empty()) {
      out += "      waiting: " + d.waiting_on + "\n";
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Expression evaluation and plan construction.
// ---------------------------------------------------------------------------

namespace {

using ThreadExec = SystemSim::ThreadExec;

bool expr_reads_memory(const hic::Expr& e) {
  if ((e.kind == hic::ExprKind::VarRef || e.kind == hic::ExprKind::Index ||
       e.kind == hic::ExprKind::Member) &&
      e.symbol != nullptr && memalloc::is_memory_resident(*e.symbol)) {
    return true;
  }
  for (const auto& op : e.operands) {
    if (expr_reads_memory(*op)) return true;
  }
  return false;
}

}  // namespace

// Declared outside the class to keep system.h slim.
namespace detail {

struct EvalCtx {
  ThreadExec* thread;
  const ExternFuncs* externs;
  const std::map<const hic::Expr*, std::uint64_t>* memvals;
};

std::uint64_t eval_expr(const hic::Expr& e, const EvalCtx& ctx) {
  // Memory operands were fetched ahead of time.
  if (ctx.memvals != nullptr) {
    auto it = ctx.memvals->find(&e);
    if (it != ctx.memvals->end()) return it->second;
  }
  switch (e.kind) {
    case hic::ExprKind::IntLit:
    case hic::ExprKind::CharLit:
      return e.int_value;
    case hic::ExprKind::VarRef: {
      auto it = ctx.thread->regs.find(e.symbol);
      if (it == ctx.thread->regs.end()) {
        throw std::runtime_error("sim: unfetched memory operand " +
                                 (e.symbol != nullptr
                                      ? e.symbol->qualified_name()
                                      : e.name));
      }
      return it->second;
    }
    case hic::ExprKind::Member: {
      std::uint64_t v = eval_expr(*e.operands[0], ctx);
      return mask_width(v, e.type != nullptr ? e.type->bit_width() : 64);
    }
    case hic::ExprKind::Index:
      throw std::runtime_error("sim: array access must be a memory operand");
    case hic::ExprKind::Unary: {
      std::uint64_t v = eval_expr(*e.operands[0], ctx);
      switch (e.unary_op) {
        case hic::UnaryOp::Neg: v = ~v + 1; break;
        case hic::UnaryOp::Not: v = (v == 0) ? 1 : 0; break;
        case hic::UnaryOp::BitNot: v = ~v; break;
      }
      return mask_width(v, e.type != nullptr ? e.type->bit_width() : 64);
    }
    case hic::ExprKind::Binary: {
      std::uint64_t a = eval_expr(*e.operands[0], ctx);
      std::uint64_t b = eval_expr(*e.operands[1], ctx);
      std::uint64_t v = 0;
      switch (e.binary_op) {
        case hic::BinaryOp::Add: v = a + b; break;
        case hic::BinaryOp::Sub: v = a - b; break;
        case hic::BinaryOp::Mul: v = a * b; break;
        case hic::BinaryOp::Div: v = (b == 0) ? 0 : a / b; break;
        case hic::BinaryOp::Mod: v = (b == 0) ? 0 : a % b; break;
        case hic::BinaryOp::And: v = a & b; break;
        case hic::BinaryOp::Or: v = a | b; break;
        case hic::BinaryOp::Xor: v = a ^ b; break;
        case hic::BinaryOp::Shl: v = b >= 64 ? 0 : a << b; break;
        case hic::BinaryOp::Shr: v = b >= 64 ? 0 : a >> b; break;
        case hic::BinaryOp::LogAnd: v = (a != 0 && b != 0) ? 1 : 0; break;
        case hic::BinaryOp::LogOr: v = (a != 0 || b != 0) ? 1 : 0; break;
        case hic::BinaryOp::Eq: v = (a == b) ? 1 : 0; break;
        case hic::BinaryOp::Ne: v = (a != b) ? 1 : 0; break;
        case hic::BinaryOp::Lt: v = (a < b) ? 1 : 0; break;
        case hic::BinaryOp::Le: v = (a <= b) ? 1 : 0; break;
        case hic::BinaryOp::Gt: v = (a > b) ? 1 : 0; break;
        case hic::BinaryOp::Ge: v = (a >= b) ? 1 : 0; break;
      }
      return mask_width(v, e.type != nullptr ? e.type->bit_width() : 64);
    }
    case hic::ExprKind::Call: {
      std::vector<std::uint64_t> args;
      for (const auto& a : e.operands) args.push_back(eval_expr(*a, ctx));
      return mask_width(ctx.externs->eval(e.name, args),
                        e.type != nullptr ? e.type->bit_width() : 64);
    }
  }
  return 0;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// The main simulation loop.
// ---------------------------------------------------------------------------

void SystemSim::step() {
  const bool tracing = trace_ != nullptr && trace_->active();
  if (tracing) trace_->begin_cycle(cycle_);
  for (auto& ctrl : controllers_) ctrl->begin_cycle();
  drive_phase();
  for (auto& ctrl : controllers_) ctrl->sim->settle();
  if (tracing) {
    for (auto& ctrl : controllers_) {
      ctrl->probe->sample(*ctrl->sim, cycle_, *trace_);
    }
  }
  observe_phase();
  for (auto& ctrl : controllers_) ctrl->sim->step();
  ++cycle_;
}

bool SystemSim::run_until_passes(int target, std::uint64_t max_cycles) {
  std::uint64_t deadline = cycle_ + max_cycles;
  while (cycle_ < deadline) {
    bool all_done = true;
    for (const auto& t : threads_) {
      if (t->passes < target) all_done = false;
    }
    if (all_done) return true;
    step();
  }
  for (const auto& t : threads_) {
    if (t->passes < target) return false;
  }
  return true;
}

namespace {

/// Locates the StateAccess describing a symbol access in the current state.
const synth::StateAccess* find_access(const synth::FsmState& s,
                                      const hic::Symbol* sym, bool is_write) {
  for (const synth::StateAccess& a : s.accesses) {
    if (a.symbol == sym && a.is_write == is_write) return &a;
  }
  return nullptr;
}

}  // namespace
namespace {

using ThreadExecT = SystemSim::ThreadExec;

void drive_mem_op(ThreadExecT& t, ThreadExecT::MemOp& mo) {
  SystemSim::Controller& c = *mo.ctrl;
  rtl::ModuleSim& sim = *c.sim;
  switch (mo.stage) {
    case ThreadExecT::MemOp::Stage::PortA:
      if (c.claim_port_a(t.name)) {
        sim.set_input("a_en", 1);
        sim.set_input("a_we", mo.is_write ? 1 : 0);
        sim.set_input("a_addr", mo.addr);
        if (mo.is_write) sim.set_input("a_wdata", mo.wdata);
      }
      break;
    case ThreadExecT::MemOp::Stage::Request: {
      if (mo.is_write) {
        std::string p = std::to_string(mo.pseudo_port);
        sim.set_input("d_req" + p, 1);
        sim.set_input("d_addr" + p, mo.addr);
        sim.set_input("d_wdata" + p, mo.wdata);
      } else {
        std::string p = std::to_string(mo.pseudo_port);
        sim.set_input("c_req" + p, 1);
        sim.set_input("c_addr" + p, mo.addr);
      }
      break;
    }
    case ThreadExecT::MemOp::Stage::EvWaitSlot: {
      // Slot is a register: reading it before settle is safe.
      std::uint64_t slot = sim.get("slot");
      if (static_cast<int>(slot) == mo.target_slot) {
        std::string p = std::to_string(mo.pseudo_port);
        if (mo.is_write) {
          sim.set_input("p_req" + p, 1);
          sim.set_input("p_addr" + p, mo.addr);
          sim.set_input("p_wdata" + p, mo.wdata);
        } else {
          sim.set_input("c_req" + p, 1);
          sim.set_input("c_addr" + p, mo.addr);
        }
      }
      break;
    }
    case ThreadExecT::MemOp::Stage::PortA_Data:
    case ThreadExecT::MemOp::Stage::WaitValid:
    case ThreadExecT::MemOp::Stage::Idle:
    case ThreadExecT::MemOp::Stage::Done:
      break;
  }
}

}  // namespace

namespace {

/// Checks whether any pseudo-port other than `ours` won the named grant
/// line this cycle — the ArbitrationLoss / DependencyNotProduced split.
bool another_port_granted(const rtl::ModuleSim& sim, const char* prefix,
                          int ours, int count) {
  for (int k = 0; k < count; ++k) {
    if (k == ours) continue;
    if (sim.get(prefix + std::to_string(k)) != 0) return true;
  }
  return false;
}

// `on_access(t, mo, granted, cause)` is invoked for every cycle the op
// occupies (or waits for) its port: exactly one of granted/stalled per
// cycle. The data-valid cycle of a consumer read reports through
// `record_consume` instead.
template <typename OnProduce, typename OnConsume, typename OpenRound,
          typename OnAccess>
void observe_mem_op(SystemSim::ThreadExec& t, SystemSim::ThreadExec::MemOp& mo,
                    OnProduce&& record_produce, OnConsume&& record_consume,
                    OpenRound&& open_round_of, OnAccess&& on_access) {
  using StallCause = trace::StallCause;
  SystemSim::Controller& c = *mo.ctrl;
  rtl::ModuleSim& sim = *c.sim;
  switch (mo.stage) {
    case ThreadExec::MemOp::Stage::PortA:
      if (c.a_owner == t.name) {
        on_access(t, mo, true, StallCause::None);
        if (mo.is_write) {
          mo.stage = ThreadExec::MemOp::Stage::Done;  // commits on this edge
        } else {
          mo.stage = ThreadExec::MemOp::Stage::PortA_Data;
        }
      } else {
        on_access(t, mo, false, StallCause::PortABusy);
      }
      break;
    case ThreadExec::MemOp::Stage::PortA_Data:
      // The read issued last cycle; a_rdata now holds the value.
      mo.result = sim.get("a_rdata");
      mo.stage = ThreadExec::MemOp::Stage::Done;
      break;
    case ThreadExec::MemOp::Stage::Request: {
      std::string p = std::to_string(mo.pseudo_port);
      if (mo.is_write) {
        if (sim.get("d_grant" + p) != 0) {
          on_access(t, mo, true, StallCause::None);
          record_produce(t, mo);
          mo.stage = SystemSim::ThreadExec::MemOp::Stage::Done;
        } else {
          on_access(t, mo, false,
                    another_port_granted(sim, "d_grant", mo.pseudo_port,
                                         c.plan->producer_pseudo_ports())
                        ? StallCause::ArbitrationLoss
                        : StallCause::DependencyNotProduced);
        }
      } else {
        if (sim.get("c_grant" + p) != 0) {
          on_access(t, mo, true, StallCause::None);
          mo.round = open_round_of(mo);
          mo.stage = SystemSim::ThreadExec::MemOp::Stage::WaitValid;
        } else {
          on_access(t, mo, false,
                    another_port_granted(sim, "c_grant", mo.pseudo_port,
                                         c.plan->consumer_pseudo_ports())
                        ? StallCause::ArbitrationLoss
                        : StallCause::DependencyNotProduced);
        }
      }
      break;
    }
    case SystemSim::ThreadExec::MemOp::Stage::EvWaitSlot: {
      std::uint64_t slot = sim.get("slot");
      if (static_cast<int>(slot) != mo.target_slot) {
        on_access(t, mo, false, StallCause::NotOurSlot);
        break;
      }
      std::string p = std::to_string(mo.pseudo_port);
      if (mo.is_write) {
        if (sim.get("p_grant" + p) != 0) {
          on_access(t, mo, true, StallCause::None);
          record_produce(t, mo);
          mo.stage = SystemSim::ThreadExec::MemOp::Stage::Done;
        } else {
          on_access(t, mo, false, StallCause::DependencyNotProduced);
        }
      } else {
        // Our slot fires this edge iff our request was up.
        if (sim.get("c_req" + p) != 0) {
          on_access(t, mo, true, StallCause::None);
          mo.round = open_round_of(mo);
          mo.stage = SystemSim::ThreadExec::MemOp::Stage::WaitValid;
        } else {
          on_access(t, mo, false, StallCause::DependencyNotProduced);
        }
      }
      break;
    }
    case SystemSim::ThreadExec::MemOp::Stage::WaitValid: {
      std::string p = std::to_string(mo.pseudo_port);
      if (sim.get("c_valid" + p) != 0) {
        mo.result = sim.get("bus_rdata");
        record_consume(t, mo);
        mo.stage = SystemSim::ThreadExec::MemOp::Stage::Done;
      } else {
        on_access(t, mo, false, StallCause::DataWait);
      }
      break;
    }
    case SystemSim::ThreadExec::MemOp::Stage::Idle:
    case SystemSim::ThreadExec::MemOp::Stage::Done:
      break;
  }
}

}  // namespace

void SystemSim::drive_phase() {
  for (auto& tp : threads_) {
    ThreadExec& t = *tp;

    // --- Mode transitions that need no controller interaction. ---
    if (t.mode == ThreadExec::Mode::Gated) {
      if (t.gate && t.gate(cycle_)) {
        t.state = t.fsm.initial();
        t.mode = ThreadExec::Mode::Plan;
        if (trace_ != nullptr && trace_->active()) {
          trace::Event e;
          e.cycle = cycle_;
          e.kind = trace::EventKind::FsmState;
          e.thread = t.name;
          e.value = t.state;
          trace_->emit(e);
        }
      } else {
        continue;
      }
    }

    if (t.mode == ThreadExec::Mode::Plan) {
      const synth::FsmState& s = t.fsm.state(t.state);
      if (s.kind == synth::StateKind::Done) {
        ++t.passes;
        if (trace_ != nullptr && trace_->active()) {
          trace::Event e;
          e.cycle = cycle_;
          e.kind = trace::EventKind::PassComplete;
          e.thread = t.name;
          e.value = t.passes;
          trace_->emit(e);
        }
        t.mode = ThreadExec::Mode::Gated;
        continue;
      }
      // Build the plan for this state.
      t.plan.clear();
      t.plan_index = 0;
      t.operand_index = 0;
      auto add_stmt_plan = [&](const hic::Stmt* stmt, const hic::Expr* cond) {
        ThreadExec::StmtPlan p;
        p.stmt = stmt;
        p.cond = cond;
        // Collect memory operands from the value/cond expression tree.
        auto collect = [&](auto&& self, const hic::Expr& e) -> void {
          bool is_mem_leaf =
              (e.kind == hic::ExprKind::VarRef ||
               e.kind == hic::ExprKind::Index ||
               e.kind == hic::ExprKind::Member) &&
              e.symbol != nullptr && memalloc::is_memory_resident(*e.symbol);
          if (is_mem_leaf) {
            ThreadExec::StmtPlan::Operand op;
            op.expr = &e;
            p.operands.push_back(op);
            // Do not descend into the base; the index expression still
            // needs register evaluation at fetch time, checked there.
            return;
          }
          for (const auto& sub : e.operands) self(self, *sub);
        };
        if (cond != nullptr) collect(collect, *cond);
        if (stmt != nullptr && stmt->kind == hic::StmtKind::Assign) {
          collect(collect, *stmt->value);
          // The target's index expression may also read memory — reject
          // (documented restriction).
          if (stmt->target->kind == hic::ExprKind::Index &&
              expr_reads_memory(*stmt->target->operands[1])) {
            throw std::runtime_error(
                "sim: memory reads inside store index expressions are not "
                "supported");
          }
        }
        t.plan.push_back(std::move(p));
      };
      if (s.kind == synth::StateKind::Branch) {
        add_stmt_plan(nullptr, s.cond);
      } else {
        add_stmt_plan(s.stmt, nullptr);
        for (const hic::Stmt* c : s.chained) add_stmt_plan(c, nullptr);
      }
      t.mode = ThreadExec::Mode::Fetch;
    }

    if (t.mode != ThreadExec::Mode::Fetch &&
        t.mode != ThreadExec::Mode::Write) {
      continue;
    }

    const synth::FsmState& s = t.fsm.state(t.state);
    ThreadExec::StmtPlan& p = t.plan[t.plan_index];

    // --- Prepare the in-flight memory op, if a new one is needed. ---
    auto locate = [&](const hic::Symbol* sym) {
      auto loc = map_.locate(sym);
      if (loc.bram == nullptr) {
        throw std::runtime_error("sim: symbol not in memory map: " +
                                 sym->qualified_name());
      }
      return loc;
    };
    auto controller_of = [&](int bram_id) -> Controller* {
      for (auto& c : controllers_) {
        if (c->bram_id == bram_id) return c.get();
      }
      throw std::runtime_error("sim: no controller for bram");
    };

    auto element_addr = [&](const hic::Expr& e,
                            const memalloc::MemoryMap::Location& loc)
        -> std::uint64_t {
      std::uint64_t base = loc.placement->base_address;
      if (e.kind == hic::ExprKind::Index) {
        if (expr_reads_memory(*e.operands[1])) {
          throw std::runtime_error(
              "sim: memory reads inside index expressions are not supported");
        }
        detail::EvalCtx ctx{&t, &externs_, nullptr};
        std::uint64_t idx = detail::eval_expr(*e.operands[1], ctx);
        std::uint64_t words_per_elem =
            loc.placement->words / e.symbol->element_count();
        if (words_per_elem == 0) words_per_elem = 1;
        std::uint64_t elems = e.symbol->element_count();
        return base + (idx % elems) * words_per_elem;
      }
      return base;
    };

    if (t.mode == ThreadExec::Mode::Fetch) {
      // All operands fetched? Compute and move to write.
      while (t.operand_index < p.operands.size() &&
             p.operands[t.operand_index].fetched) {
        ++t.operand_index;
      }
      if (t.operand_index >= p.operands.size()) {
        // Compute this statement's value.
        std::map<const hic::Expr*, std::uint64_t> memvals;
        for (const auto& op : p.operands) memvals[op.expr] = op.op.result;
        detail::EvalCtx ctx{&t, &externs_, &memvals};
        if (p.cond != nullptr) {
          t.branch_value = detail::eval_expr(*p.cond, ctx);
          p.computed_valid = true;
          t.mode = ThreadExec::Mode::Advance;
        } else {
          p.computed = detail::eval_expr(*p.stmt->value, ctx);
          p.computed_valid = true;
          // Set up the write.
          const hic::Expr* target = p.stmt->target.get();
          const hic::Expr* root = target;
          while (root->kind == hic::ExprKind::Index ||
                 root->kind == hic::ExprKind::Member) {
            root = root->operands[0].get();
          }
          hic::Symbol* sym = root->symbol;
          if (sym != nullptr && memalloc::is_memory_resident(*sym)) {
            auto loc = locate(sym);
            p.write.ctrl = controller_of(loc.bram->id);
            p.write.is_write = true;
            p.write.addr = element_addr(*target, loc);
            p.write.wdata =
                mask_width(p.computed, sym->type()->bit_width());
            const synth::StateAccess* acc = find_access(s, sym, true);
            p.write.role = acc != nullptr ? acc->role
                                          : synth::AccessRole::Plain;
            p.write.dep = acc != nullptr ? acc->dep : nullptr;
            p.write.stage = ThreadExec::MemOp::Stage::Idle;
            t.mode = ThreadExec::Mode::Write;
          } else {
            // Register write completes instantly.
            if (sym != nullptr) {
              t.regs[sym] =
                  mask_width(p.computed, sym->type()->bit_width());
            }
            t.mode = ThreadExec::Mode::Advance;
          }
        }
      } else {
        // Drive the current operand's memory op.
        ThreadExec::StmtPlan::Operand& op = p.operands[t.operand_index];
        ThreadExec::MemOp& mo = op.op;
        if (mo.stage == ThreadExec::MemOp::Stage::Idle) {
          auto loc = locate(op.expr->symbol);
          mo.ctrl = controller_of(loc.bram->id);
          mo.is_write = false;
          mo.addr = element_addr(*op.expr, loc);
          const synth::StateAccess* acc =
              find_access(s, op.expr->symbol, false);
          mo.role = acc != nullptr ? acc->role : synth::AccessRole::Plain;
          mo.dep = acc != nullptr ? acc->dep : nullptr;
          if (mo.role == synth::AccessRole::ConsumerRead) {
            mo.pseudo_port =
                mo.ctrl->pseudo_port(t.name, memalloc::LogicalPort::C);
            if (mo.ctrl->kind == OrgKind::EventDriven) {
              mo.target_slot =
                  mo.ctrl->slot_of(mo.dep->id, false, mo.pseudo_port);
              mo.stage = ThreadExec::MemOp::Stage::EvWaitSlot;
            } else {
              mo.stage = ThreadExec::MemOp::Stage::Request;
            }
          } else {
            mo.stage = ThreadExec::MemOp::Stage::PortA;
          }
        }
        drive_mem_op(t, mo);
      }
    }

    if (t.mode == ThreadExec::Mode::Write) {
      ThreadExec::MemOp& mo = p.write;
      if (mo.stage == ThreadExec::MemOp::Stage::Idle) {
        if (mo.role == synth::AccessRole::ProducerWrite) {
          mo.pseudo_port =
              mo.ctrl->pseudo_port(t.name, memalloc::LogicalPort::D);
          if (mo.ctrl->kind == OrgKind::EventDriven) {
            mo.target_slot = mo.ctrl->slot_of(mo.dep->id, true,
                                              mo.pseudo_port);
            mo.stage = ThreadExec::MemOp::Stage::EvWaitSlot;
          } else {
            mo.stage = ThreadExec::MemOp::Stage::Request;
          }
        } else {
          mo.stage = ThreadExec::MemOp::Stage::PortA;
        }
      }
      drive_mem_op(t, mo);
    }
  }
}
void SystemSim::observe_phase() {
  for (auto& tp : threads_) {
    ThreadExec& t = *tp;
    if (t.mode != ThreadExec::Mode::Fetch &&
        t.mode != ThreadExec::Mode::Write &&
        t.mode != ThreadExec::Mode::Advance) {
      continue;
    }

    if (t.mode == ThreadExec::Mode::Fetch ||
        t.mode == ThreadExec::Mode::Write) {
      ThreadExec::StmtPlan& p = t.plan[t.plan_index];
      ThreadExec::MemOp* mo = nullptr;
      if (t.mode == ThreadExec::Mode::Fetch &&
          t.operand_index < p.operands.size()) {
        mo = &p.operands[t.operand_index].op;
      } else if (t.mode == ThreadExec::Mode::Write) {
        mo = &p.write;
      }
      if (mo != nullptr && mo->ctrl != nullptr) {
        const bool tracing = trace_ != nullptr && trace_->active();
        auto port_kind_of = [](const ThreadExec::MemOp& m2) {
          switch (m2.role) {
            case synth::AccessRole::ConsumerRead: return trace::PortKind::C;
            case synth::AccessRole::ProducerWrite: return trace::PortKind::D;
            case synth::AccessRole::Plain: break;
          }
          return trace::PortKind::A;
        };
        auto base_event = [&](const ThreadExec& te,
                              const ThreadExec::MemOp& m2) {
          trace::Event e;
          e.cycle = cycle_;
          e.controller = m2.ctrl->bram_id;
          e.port = port_kind_of(m2);
          e.pseudo_port = m2.pseudo_port;
          e.thread = te.name;
          if (m2.dep != nullptr) e.dep = m2.dep->id;
          return e;
        };
        observe_mem_op(
            t, *mo,
            [this, tracing, &base_event](ThreadExec& te,
                                         ThreadExec::MemOp& m2) {
              if (m2.dep == nullptr) return;
              DepRound round;
              round.dep_id = m2.dep->id;
              round.produce_grant_cycle = cycle_;
              open_round_[m2.dep->id] = rounds_.size();
              rounds_.push_back(std::move(round));
              if (tracing) {
                trace::Event e = base_event(te, m2);
                e.kind = trace::EventKind::Produce;
                trace_->emit(e);
              }
            },
            [this, tracing, &base_event](ThreadExec& te,
                                         ThreadExec::MemOp& m2) {
              if (tracing && te.trace_blocked) {
                trace::Event e = base_event(te, m2);
                e.kind = trace::EventKind::ThreadUnblock;
                trace_->emit(e);
                te.trace_blocked = false;
              }
              m2.wait_cycles = 0;
              if (m2.dep == nullptr) return;
              if (tracing) {
                trace::Event e = base_event(te, m2);
                e.kind = trace::EventKind::Consume;
                trace_->emit(e);
              }
              if (m2.round >= rounds_.size()) return;
              rounds_[m2.round].consume_cycles.emplace_back(te.name, cycle_);
              if (tracing && rounds_[m2.round].consume_cycles.size() ==
                                 m2.dep->consumers.size()) {
                trace::Event e = base_event(te, m2);
                e.kind = trace::EventKind::RoundComplete;
                e.value = static_cast<std::int64_t>(
                    rounds_[m2.round].completion_latency());
                trace_->emit(e);
              }
            },
            [this](ThreadExec::MemOp& m2) -> std::size_t {
              if (m2.dep == nullptr) return static_cast<std::size_t>(-1);
              auto it = open_round_.find(m2.dep->id);
              return it == open_round_.end() ? static_cast<std::size_t>(-1)
                                             : it->second;
            },
            [this, tracing, &base_event](ThreadExec& te,
                                         ThreadExec::MemOp& m2, bool granted,
                                         trace::StallCause cause) {
              if (granted) {
                m2.wait_cycles = 0;
              } else {
                ++m2.wait_cycles;
              }
              if (!tracing) return;
              trace::Event e = base_event(te, m2);
              e.kind = trace::EventKind::PortRequest;
              trace_->emit(e);
              if (granted) {
                e.kind = trace::EventKind::PortGrant;
                trace_->emit(e);
                if (te.trace_blocked) {
                  e.kind = trace::EventKind::ThreadUnblock;
                  trace_->emit(e);
                  te.trace_blocked = false;
                }
              } else {
                e.kind = trace::EventKind::PortStall;
                e.cause = cause;
                trace_->emit(e);
                if (!te.trace_blocked) {
                  e.kind = trace::EventKind::ThreadBlock;
                  e.cause = trace::StallCause::None;
                  trace_->emit(e);
                  te.trace_blocked = true;
                }
              }
            });
        if (mo->stage == ThreadExec::MemOp::Stage::Done) {
          if (t.mode == ThreadExec::Mode::Fetch) {
            p.operands[t.operand_index].fetched = true;
            mo->ctrl->release_port_a(t.name);
            // Fetch loop continues next cycle (or computes next drive).
          } else {
            mo->ctrl->release_port_a(t.name);
            t.mode = ThreadExec::Mode::Advance;
          }
        }
      }
    }

    if (t.mode == ThreadExec::Mode::Advance) {
      ThreadExec::StmtPlan& p = t.plan[t.plan_index];
      if (p.cond == nullptr && t.plan_index + 1 < t.plan.size()) {
        // Chained statement: move to the next statement in this state.
        ++t.plan_index;
        t.operand_index = 0;
        t.mode = ThreadExec::Mode::Fetch;
        continue;
      }
      // Choose the successor state.
      const synth::FsmState& s = t.fsm.state(t.state);
      int next = -1;
      switch (s.kind) {
        case synth::StateKind::Action:
          next = s.next;
          break;
        case synth::StateKind::Branch:
          if (s.case_targets.empty()) {
            next = (t.branch_value != 0) ? s.true_target : s.false_target;
          } else {
            for (const synth::CaseTransition& ct : s.case_targets) {
              if (!ct.is_default && ct.value == t.branch_value) {
                next = ct.target;
                break;
              }
            }
            if (next < 0) {
              for (const synth::CaseTransition& ct : s.case_targets) {
                if (ct.is_default) next = ct.target;
              }
            }
          }
          break;
        case synth::StateKind::Done:
          next = t.state;
          break;
      }
      if (trace_ != nullptr && trace_->active() && next != t.state) {
        trace::Event e;
        e.cycle = cycle_;
        e.kind = trace::EventKind::FsmState;
        e.thread = t.name;
        e.value = next;
        trace_->emit(e);
      }
      t.state = next;
      t.mode = ThreadExec::Mode::Plan;
    }
  }
}
}  // namespace hicsync::sim
