// Registry for the opaque computations of hic programs (f, g, h in Fig. 1).
//
// hic calls are "opaque combinational computations"; the simulator needs
// concrete values. Applications register C++ callables; unregistered names
// fall back to a deterministic mixing function so any program simulates
// reproducibly.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace hicsync::sim {

class ExternFuncs {
 public:
  using Fn = std::function<std::uint64_t(const std::vector<std::uint64_t>&)>;

  void register_fn(const std::string& name, Fn fn) {
    fns_[name] = std::move(fn);
  }

  [[nodiscard]] bool has(const std::string& name) const {
    return fns_.count(name) != 0;
  }

  /// Drops every registered callable, restoring the deterministic fallback
  /// for all names. The hic-rt executor pool clears and re-seeds between
  /// workloads so one session's bindings never leak into the next.
  void clear() { fns_.clear(); }

  /// Evaluates `name(args)`; unregistered names use a deterministic mix of
  /// the name hash and arguments.
  [[nodiscard]] std::uint64_t eval(const std::string& name,
                                   const std::vector<std::uint64_t>& args) const;

 private:
  std::map<std::string, Fn> fns_;
};

}  // namespace hicsync::sim
