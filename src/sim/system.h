// System-level cycle-accurate simulation.
//
// Executes a compiled hic program against the *generated* memory
// organization netlists: each thread's synthesized FSM is interpreted, and
// every shared-memory access goes through an rtl::ModuleSim instance of the
// arbitrated or event-driven controller — so blocking, arbitration delays,
// and the modulo schedule come from the same logic the Verilog backend
// emits, not from a separate behavioural model.
//
// Substitute for running the bitstream on a Virtex-II Pro (see DESIGN.md):
// the functional and latency claims of §3/§4 are cycle-level properties of
// the controllers, which this executes faithfully.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hic/sema.h"
#include "memalloc/allocator.h"
#include "memalloc/portplan.h"
#include "memorg/arbitrated.h"
#include "memorg/eventdriven.h"
#include "rtl/eval.h"
#include "sim/externs.h"
#include "synth/fsm.h"
#include "trace/bus.h"

namespace hicsync::sim {

enum class OrgKind { Arbitrated, EventDriven };

[[nodiscard]] const char* to_string(OrgKind k);

struct SystemOptions {
  OrgKind organization = OrgKind::Arbitrated;
  /// Threads restart after run-to-completion (each pass processes one
  /// message). A gate callback can hold a thread at Done (e.g. waiting for
  /// a packet arrival).
  bool restart_threads = true;
};

/// Per-thread snapshot for timeout/deadlock reporting: where the thread is
/// in its FSM and, if it is waiting on the memory system, on what.
struct ThreadDiagnostic {
  std::string thread;
  int passes = 0;
  std::string mode;        // "gated" | "plan" | "fetch" | "write" | ...
  int fsm_state = -1;
  bool blocked = false;
  /// Human-readable description of the in-flight access ("consumer read of
  /// dep 'mt1' on bram0 port C1, waiting 153 cycles"); empty when idle.
  std::string waiting_on;
};

/// One produce→consume round observed on a dependency.
struct DepRound {
  std::string dep_id;
  std::uint64_t produce_grant_cycle = 0;
  /// thread name → cycle its read data became valid.
  std::vector<std::pair<std::string, std::uint64_t>> consume_cycles;

  /// Latency from the producer's grant to the last consumer's data.
  [[nodiscard]] std::uint64_t completion_latency() const;
};

class SystemSim {
 public:
  /// `sema` must have run successfully; `map`/`plans` from the allocator
  /// and port planner. FSMs are synthesized internally.
  SystemSim(const hic::Program& program, const hic::Sema& sema,
            const memalloc::MemoryMap& map,
            const std::vector<memalloc::BramPortPlan>& plans,
            SystemOptions options);
  ~SystemSim();

  SystemSim(const SystemSim&) = delete;
  SystemSim& operator=(const SystemSim&) = delete;

  ExternFuncs& externs() { return externs_; }

  /// Attaches a hic-trace bus (not owned; may be null to detach). With no
  /// bus — or a bus with no sinks — instrumentation costs one branch per
  /// cycle, so untraced simulations run at full speed.
  void set_trace(trace::TraceBus* bus) { trace_ = bus; }
  [[nodiscard]] trace::TraceBus* trace() const { return trace_; }

  /// Gate: called when a thread is at Done (or before its first pass);
  /// returning true releases the next run-to-completion pass. Default:
  /// always true when options.restart_threads.
  void set_gate(const std::string& thread,
                std::function<bool(std::uint64_t cycle)> gate);

  /// Returns the system to its just-constructed state so the instance can
  /// run another workload: cycle counter, rounds, controller netlists
  /// (registers *and* BRAM contents), port-A arbitration history and every
  /// thread's FSM position, pass count and register file are cleared.
  /// Gates, externs and the attached trace bus are left alone — they are
  /// caller policy (the hic-rt pool clears/re-seeds externs per workload).
  /// A reset instance produces results identical to a fresh one
  /// (tests/sim/system_reset_test.cpp proves this differentially).
  void reset();

  /// Advances one clock cycle.
  void step();
  /// Runs until every thread has completed at least `passes` passes or
  /// `max_cycles` elapse. Returns true if the target was reached.
  bool run_until_passes(int passes, std::uint64_t max_cycles);

  [[nodiscard]] std::uint64_t cycle() const { return cycle_; }
  [[nodiscard]] int passes(const std::string& thread) const;
  /// Value of a (register) variable after the last completed pass.
  [[nodiscard]] std::uint64_t register_value(const std::string& thread,
                                             const std::string& var) const;
  /// Completed produce→consume rounds, in completion order.
  [[nodiscard]] const std::vector<DepRound>& rounds() const { return rounds_; }
  /// True if a thread is currently blocked waiting on the controller.
  [[nodiscard]] bool is_blocked(const std::string& thread) const;

  /// Snapshot of every thread's progress and current wait, for timeout
  /// reporting (what run_until_passes prints on failure) and tests.
  [[nodiscard]] std::vector<ThreadDiagnostic> thread_diagnostics() const;
  /// The diagnostics rendered one line per thread, e.g. for a driver to
  /// print when a simulation deadline expires.
  [[nodiscard]] std::string stall_report() const;

  // Implementation types, defined in system.cpp (opaque to users; public so
  // file-local helpers can name them).
  struct ThreadExec;
  struct Controller;

 private:
  [[nodiscard]] ThreadExec* find_thread(const std::string& name) const;
  void drive_phase();
  void observe_phase();

  const hic::Program& program_;
  const hic::Sema& sema_;
  const memalloc::MemoryMap& map_;
  SystemOptions options_;
  ExternFuncs externs_;
  rtl::Design design_;
  std::vector<std::unique_ptr<Controller>> controllers_;
  std::vector<std::unique_ptr<ThreadExec>> threads_;
  std::vector<DepRound> rounds_;
  std::map<std::string, std::size_t> open_round_;  // dep id -> rounds_ index
  std::uint64_t cycle_ = 0;
  trace::TraceBus* trace_ = nullptr;
};

}  // namespace hicsync::sim
