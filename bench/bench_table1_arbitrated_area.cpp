// Table 1 — "Required area for arbitrated memory organization".
//
// Regenerates the paper's table: per-BRAM controller overhead (LUT / FF /
// slices) for P/C = 1/2, 1/4, 1/8, derived from the two-port IP forwarding
// application. The scrape of the paper lost the numeric table cells; the
// prose constraints we reproduce are:
//   * FF constant across the sweep (the fixed baseline architecture),
//   * pseudo-port multiplexing adds LUTs only,
//   * the paper's baseline uses 66 FFs.

#include <cstdio>

#include "bench_util.h"
#include "fpga/techmap.h"
#include "support/table.h"

using namespace hicsync;

int main() {
  std::printf("=== Table 1: required area, arbitrated memory organization "
              "===\n");
  std::printf("(per-BRAM overhead; paper cells lost in scrape — prose "
              "constraints: FF constant at %d, LUT grows with consumers)\n\n",
              bench::PaperReference::kArbitratedBaselineFf);

  support::TextTable table({"P/C", "LUT", "FF", "Slices", "BRAM"});
  fpga::TechMapper mapper;
  bench::JsonBenchReport report("table1_arbitrated_area");
  int prev_lut = 0;
  int first_ff = -1;
  bool shape_ok = true;
  for (int consumers : {2, 4, 8}) {
    rtl::Design design;
    rtl::Module& m = memorg::generate_arbitrated(
        design, bench::arb_scenario(consumers), "arb");
    auto r = mapper.map(m);
    table.add_row({"1/" + std::to_string(consumers),
                   std::to_string(r.luts), std::to_string(r.ffs),
                   std::to_string(r.slices), std::to_string(r.bram_blocks)});
    const std::string prefix = "c" + std::to_string(consumers) + ".";
    report.set(prefix + "luts", r.luts);
    report.set(prefix + "ffs", r.ffs);
    report.set(prefix + "slices", r.slices);
    report.set(prefix + "bram_blocks", r.bram_blocks);
    if (first_ff < 0) first_ff = r.ffs;
    shape_ok &= (r.ffs == first_ff);
    shape_ok &= (r.luts > prev_lut);
    prev_lut = r.luts;
  }
  std::printf("%s\n", table.str().c_str());

  std::printf("shape checks:\n");
  std::printf("  FF constant across consumer counts: %s (measured %d, "
              "paper baseline %d)\n",
              shape_ok ? "yes" : "NO", first_ff,
              bench::PaperReference::kArbitratedBaselineFf);
  std::printf("  LUT monotonically increasing with consumers: %s\n",
              shape_ok ? "yes" : "NO");
  report.set("paper_baseline_ff", bench::PaperReference::kArbitratedBaselineFf);
  report.set("shape_ok", shape_ok);
  report.write();
  return shape_ok ? 0 : 1;
}
