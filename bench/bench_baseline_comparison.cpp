// §1/§5 baseline — locks and manual guards vs the memory organizations.
//
// "Current shared memory abstractions based on locks and mutual exclusions
// are difficult to use, scale, and generally result in a tedious and
// error-prone design process." The comparison the paper implies but never
// tabulates: the same 1-producer → N-consumer hand-off implemented with
//   * manual flag polling over a bare shared BRAM,
//   * a lock-register controller (acquire/release + ack word),
//   * the arbitrated organization,
//   * the event-driven organization,
// measured for area (generated RTL, technology mapped), hand-off latency,
// and shared-port traffic (polling burns bus cycles).

#include <cstdio>

#include "baseline/bare.h"
#include "baseline/lockmem.h"
#include "baseline/protocols.h"
#include "bench_util.h"
#include "fpga/techmap.h"
#include "support/table.h"

using namespace hicsync;

int main() {
  const int rounds = 6;
  std::printf("=== baseline comparison: 1 producer -> N consumers, "
              "%d rounds ===\n\n", rounds);

  fpga::TechMapper mapper;
  support::TextTable table({"substrate", "consumers", "LUT", "FF", "slices",
                            "mean latency", "bus ops/round", "enforced?",
                            "correct"});
  bool all_ok = true;
  bench::JsonBenchReport report("baseline_comparison");
  auto record = [&](const char* key, int consumers,
                    const fpga::MapResult& area,
                    const baseline::HandoffMetrics& metrics) {
    const std::string p = "c" + std::to_string(consumers) + "." + key + ".";
    report.set(p + "luts", area.luts);
    report.set(p + "slices", area.slices);
    report.set(p + "mean_latency", metrics.mean_latency());
    report.set(p + "bus_ops_per_round",
               static_cast<double>(metrics.bus_grants) / rounds);
    report.set(p + "ok", metrics.ok);
  };

  for (int consumers : {2, 4, 8}) {
    {
      baseline::BareConfig cfg;
      cfg.num_clients = consumers + 1;
      rtl::Design d;
      rtl::Module& m = baseline::generate_bare(d, cfg, "bare");
      auto area = mapper.map(m);
      auto metrics = baseline::run_polling_handoff(m, consumers, rounds);
      all_ok &= metrics.ok;
      char mean[32], ops[32];
      std::snprintf(mean, sizeof mean, "%.1f", metrics.mean_latency());
      std::snprintf(ops, sizeof ops, "%.1f",
                    static_cast<double>(metrics.bus_grants) / rounds);
      record("polling", consumers, area, metrics);
      table.add_row({"manual polling (bare)", std::to_string(consumers),
                     std::to_string(area.luts), std::to_string(area.ffs),
                     std::to_string(area.slices), mean, ops, "no",
                     metrics.ok ? "ok" : "FAILED"});
    }
    {
      baseline::LockMemConfig cfg;
      cfg.num_clients = consumers + 1;
      cfg.lock_addrs = {4, 6};
      rtl::Design d;
      rtl::Module& m = baseline::generate_lockmem(d, cfg, "lockmem");
      auto area = mapper.map(m);
      auto metrics = baseline::run_lock_handoff(m, consumers, rounds);
      all_ok &= metrics.ok;
      char mean[32], ops[32];
      std::snprintf(mean, sizeof mean, "%.1f", metrics.mean_latency());
      std::snprintf(ops, sizeof ops, "%.1f",
                    static_cast<double>(metrics.bus_grants) / rounds);
      record("lockmem", consumers, area, metrics);
      table.add_row({"locks (lockmem)", std::to_string(consumers),
                     std::to_string(area.luts), std::to_string(area.ffs),
                     std::to_string(area.slices), mean, ops, "no",
                     metrics.ok ? "ok" : "FAILED"});
    }
    {
      rtl::Design d;
      rtl::Module& m = memorg::generate_arbitrated(
          d, bench::arb_scenario(consumers), "arb");
      auto area = mapper.map(m);
      auto metrics = baseline::run_arbitrated_handoff(m, consumers, rounds);
      all_ok &= metrics.ok;
      char mean[32], ops[32];
      std::snprintf(mean, sizeof mean, "%.1f", metrics.mean_latency());
      std::snprintf(ops, sizeof ops, "%.1f",
                    static_cast<double>(metrics.bus_grants) / rounds);
      record("arbitrated", consumers, area, metrics);
      table.add_row({"arbitrated (§3.1)", std::to_string(consumers),
                     std::to_string(area.luts), std::to_string(area.ffs),
                     std::to_string(area.slices), mean, ops, "yes",
                     metrics.ok ? "ok" : "FAILED"});
    }
    {
      rtl::Design d;
      rtl::Module& m = memorg::generate_eventdriven(
          d, bench::ev_scenario(consumers), "ev");
      auto area = mapper.map(m);
      auto metrics = baseline::run_eventdriven_handoff(m, consumers, rounds);
      all_ok &= metrics.ok;
      char mean[32], ops[32];
      std::snprintf(mean, sizeof mean, "%.1f", metrics.mean_latency());
      std::snprintf(ops, sizeof ops, "%.1f",
                    static_cast<double>(metrics.bus_grants) / rounds);
      record("eventdriven", consumers, area, metrics);
      table.add_row({"event-driven (§3.2)", std::to_string(consumers),
                     std::to_string(area.luts), std::to_string(area.ffs),
                     std::to_string(area.slices), mean, ops, "yes",
                     metrics.ok ? "ok" : "FAILED"});
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "reading: the organizations spend LUTs on enforcement the baselines "
      "leave to\nthe programmer; in exchange the hand-off needs exactly "
      "1 write + N reads of\nbus traffic, while polling/locks burn extra "
      "flag reads, lock round-trips and\nack updates - and enforce "
      "nothing (the 'error-prone' cost of §1).\n");
  report.set("all_ok", all_ok);
  report.write();
  return all_ok ? 0 : 1;
}
