// hic-rt service throughput — the sessions × shards ladder.
//
// Loads the fig1 artifact into rt::Service pools of increasing shard
// count, drives S sessions of produce→run→consume traffic through each,
// and reports aggregate command/run throughput plus the shard-scaling
// ratio. Every session's registers are checked against the fresh
// single-instance baseline (the hic-rt determinism contract); a mismatch
// fails the bench, so the throughput numbers can never come from wrong
// results.
//
// Emits BENCH_rt.json (rt.fig1.shard<N>.s<S>.throughput_cmds_per_s, ...,
// rt.scaling_shard8_vs_1) for hic-report ingestion. Scaling on a
// single-core CI box hovers near 1.0 — it is recorded, not asserted;
// throughput keys are regression-gated by direction (higher is better).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/compiler.h"
#include "netapp/scenarios.h"
#include "rt/service.h"
#include "rt/store.h"
#include "rt/workload.h"
#include "support/table.h"

using namespace hicsync;

namespace {

struct LadderPoint {
  int shards;
  int sessions;
  double wall_ms = 0.0;
  double cpu_ms = 0.0;  // process CPU time across all threads
  double cmds_per_s = 0.0;
  double runs_per_s = 0.0;
  bool differential_ok = true;
};

double process_cpu_us() {
  timespec ts;
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e6 +
         static_cast<double>(ts.tv_nsec) / 1e3;
}

LadderPoint drive(const std::shared_ptr<const rt::LoadedProgram>& program,
                  int shards, int sessions,
                  const std::map<std::uint64_t, rt::WorkloadResult>&
                      baselines,
                  int distinct_inputs, bool telemetry = false,
                  int passes = 0) {
  LadderPoint point;
  point.shards = shards;
  point.sessions = sessions;

  rt::ServiceOptions options;
  options.shards = shards;
  // The overhead comparison measures steady-state span capture, not slow
  // promotion: threshold high enough that nothing hits the forensics path.
  options.telemetry.enabled = telemetry;
  options.telemetry.slow_threshold_us = 60ULL * 1000 * 1000;
  rt::Service service(program, options);

  struct Pending {
    std::uint64_t input;
    std::future<rt::CommandResult> result;
  };
  std::vector<Pending> pending;
  pending.reserve(static_cast<std::size_t>(sessions));

  double cpu_start = process_cpu_us();
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < sessions; ++i) {
    std::uint64_t input = static_cast<std::uint64_t>(i % distinct_inputs);
    std::uint64_t session = service.open_session();
    rt::BufferHandle buf = service.buffers().allocate(1);
    buf[0] = input;
    service.produce(session, std::move(buf));
    service.run(session, passes);
    pending.push_back({input, service.consume(session, {})});
  }
  service.drain();
  auto wall_us = std::chrono::duration_cast<std::chrono::microseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  double cpu_us = process_cpu_us() - cpu_start;

  for (auto& p : pending) {
    rt::CommandResult r = p.result.get();
    if (!r.ok || r.registers != baselines.at(p.input).registers) {
      point.differential_ok = false;
    }
  }

  rt::Service::Stats stats = service.stats();
  double secs = static_cast<double>(wall_us) / 1e6;
  point.wall_ms = static_cast<double>(wall_us) / 1e3;
  point.cpu_ms = cpu_us / 1e3;
  if (secs > 0) {
    point.cmds_per_s = static_cast<double>(stats.completed) / secs;
    point.runs_per_s = static_cast<double>(stats.runs) / secs;
  }
  service.shutdown();
  return point;
}

}  // namespace

int main() {
  // Compile fig1 once, round-trip it through the artifact (the same bytes
  // `hicc --emit-artifact` writes) and serve the loaded program.
  core::CompileOptions copts;
  copts.source_name = "fig1.hic";
  const std::string source = netapp::figure1_source();
  auto compiled = core::Compiler(copts).compile(source);
  if (!compiled->ok()) {
    std::fprintf(stderr, "fig1 failed to compile:\n%s",
                 compiled->diags().str().c_str());
    return 1;
  }
  rt::ProgramStore store;
  rt::ArtifactError error;
  auto program =
      store.load_bytes(rt::emit_artifact(*compiled, source), &error);
  if (program == nullptr) {
    std::fprintf(stderr, "artifact load failed: %s\n", error.str().c_str());
    return 1;
  }

  // Single-instance baselines for the differential check.
  const int distinct_inputs = 8;
  std::map<std::uint64_t, rt::WorkloadResult> baselines;
  auto baseline_sim = program->make_simulator();
  for (int k = 0; k < distinct_inputs; ++k) {
    std::uint64_t input = static_cast<std::uint64_t>(k);
    std::uint64_t seed = rt::fold_seed(rt::kWorkloadSeedInit, &input, 1);
    baselines[input] =
        rt::run_workload(*baseline_sim, program->program(), program->sema(),
                         1, 200000, seed);
    if (!baselines[input].converged) {
      std::fprintf(stderr, "baseline run %d did not converge\n", k);
      return 1;
    }
  }

  std::printf("=== hic-rt service throughput: sessions x shards ladder "
              "(fig1, arbitrated) ===\n\n");
  support::TextTable table({"shards", "sessions", "wall ms", "commands/s",
                            "runs/s", "differential"});
  bench::JsonBenchReport report("rt");

  bool ok = true;
  std::map<int, double> cmds_at_64;  // shard count -> throughput at s=64
  for (int shards : {1, 2, 4, 8}) {
    for (int sessions : {8, 64}) {
      LadderPoint p = drive(program, shards, sessions, baselines,
                            distinct_inputs);
      ok &= p.differential_ok;
      if (sessions == 64) cmds_at_64[shards] = p.cmds_per_s;

      char wall[32], cmds[32], runs[32];
      std::snprintf(wall, sizeof wall, "%.1f", p.wall_ms);
      std::snprintf(cmds, sizeof cmds, "%.0f", p.cmds_per_s);
      std::snprintf(runs, sizeof runs, "%.0f", p.runs_per_s);
      table.add_row({std::to_string(shards), std::to_string(sessions), wall,
                     cmds, runs, p.differential_ok ? "identical" : "MISMATCH"});

      std::string prefix = "rt.fig1.shard" + std::to_string(shards) + ".s" +
                           std::to_string(sessions);
      report.set(prefix + ".throughput_cmds_per_s", p.cmds_per_s);
      report.set(prefix + ".throughput_runs_per_s", p.runs_per_s);
      report.set(prefix + ".wall_ms", p.wall_ms);
    }
  }
  std::printf("%s\n", table.str().c_str());

  // Recorded, not asserted: on a single hardware thread the pool cannot
  // scale; the history store tracks the trend where cores exist.
  double scaling = cmds_at_64[1] > 0 ? cmds_at_64[8] / cmds_at_64[1] : 0.0;
  std::printf("scaling (8 shards vs 1, 64 sessions): %.2fx\n", scaling);
  std::printf("differential vs single instance: %s\n",
              ok ? "identical" : "MISMATCH");

  // Telemetry overhead at the 512-session × 4-shard point, with 3-pass
  // run commands — representative request weight, not the feather-weight
  // ladder command whose cost is mostly service machinery. Methodology,
  // tuned on a single-core shared box (±15% wall-clock drift observed):
  //   * the delta is taken on *process CPU time*, not wall time — a
  //     noisy neighbor stealing the core inflates wall but not the CPU
  //     the service itself consumed, and on a saturated box throughput
  //     is 1/CPU-per-command;
  //   * one unmeasured off/on warmup pair absorbs first-touch and
  //     frequency-ramp effects;
  //   * reps counterbalance order (even rep: off then on, odd rep: on
  //     then off) so "runs second" bias cancels;
  //   * the lower-quartile pair ratio is the gated estimate. A noisy
  //     phase disturbs pairs one-sidedly and can pollute the median,
  //     while the cleanest quarter of pairs tracks the true shift — and
  //     a genuine regression moves every quantile, so p25 still catches
  //     it.
  // The <5% claim is gated twice: the within_limit_ok flag here and the
  // rt.telemetry_overhead constraint in `hic-report --check` once the
  // run is ingested.
  const int kOverheadReps = 10;
  const int kOverheadSessions = 512;
  const int kOverheadPasses = 3;
  const double kOverheadLimitPct = 5.0;
  std::map<std::uint64_t, rt::WorkloadResult> baselines3;
  auto baseline3_sim = program->make_simulator();
  for (int k = 0; k < distinct_inputs; ++k) {
    std::uint64_t input = static_cast<std::uint64_t>(k);
    std::uint64_t seed = rt::fold_seed(rt::kWorkloadSeedInit, &input, 1);
    baselines3[input] =
        rt::run_workload(*baseline3_sim, program->program(),
                         program->sema(), kOverheadPasses, 200000, seed);
    if (!baselines3[input].converged) {
      std::fprintf(stderr, "%d-pass baseline run %d did not converge\n",
                   kOverheadPasses, k);
      return 1;
    }
  }
  auto overhead_rep = [&](bool telemetry) {
    return drive(program, 4, kOverheadSessions, baselines3, distinct_inputs,
                 telemetry, kOverheadPasses);
  };
  overhead_rep(false);  // warmup
  overhead_rep(true);
  double best_off = 0.0;
  double best_on = 0.0;
  std::vector<double> cpu_ratios;
  for (int rep = 0; rep < kOverheadReps; ++rep) {
    const bool off_first = rep % 2 == 0;
    LadderPoint first = overhead_rep(/*telemetry=*/!off_first);
    LadderPoint second = overhead_rep(/*telemetry=*/off_first);
    ok &= first.differential_ok && second.differential_ok;
    const LadderPoint& off = off_first ? first : second;
    const LadderPoint& on = off_first ? second : first;
    best_off = std::max(best_off, off.cmds_per_s);
    best_on = std::max(best_on, on.cmds_per_s);
    if (off.cpu_ms > 0) cpu_ratios.push_back(on.cpu_ms / off.cpu_ms);
  }
  std::sort(cpu_ratios.begin(), cpu_ratios.end());
  double p25_cpu_ratio =
      cpu_ratios.empty() ? 1.0 : cpu_ratios[cpu_ratios.size() / 4];
  double overhead_pct = 100.0 * (p25_cpu_ratio - 1.0);
  bool within_limit = overhead_pct <= kOverheadLimitPct;
  std::printf(
      "telemetry overhead (4 shards, %d sessions, %d-pass runs, p25 "
      "CPU ratio of %d counterbalanced pairs): off %.0f cmds/s, on %.0f "
      "cmds/s, %.2f%% CPU (limit %.0f%%) %s\n",
      kOverheadSessions, kOverheadPasses, kOverheadReps, best_off, best_on,
      overhead_pct, kOverheadLimitPct, within_limit ? "ok" : "EXCEEDED");

  report.set("rt.telemetry.throughput_off_cmds_per_s", best_off);
  report.set("rt.telemetry.throughput_on_cmds_per_s", best_on);
  report.set("rt.telemetry.overhead_pct", overhead_pct);
  report.set("rt.telemetry.limit_pct", kOverheadLimitPct);
  report.set("rt.telemetry.within_limit_ok", within_limit);

  report.set("rt.scaling_shard8_vs_1", scaling);
  report.set("rt.fig1.differential_ok", ok);
  if (!report.write()) return 1;
  return ok ? 0 : 1;
}
