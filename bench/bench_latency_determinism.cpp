// §3.1/§3.2 latency claims — hand-off latency and determinism.
//
// "the latency of consumer read accesses once the corresponding producer
// write happens is not deterministic for the arbitrated memory
// organization" (it is bus-arbitrated), while the event-driven organization
// has "accurate timing information once the write from the producer thread
// occurs."
//
// The same 1-producer → N-consumer hand-off runs on both generated
// controllers; we report per-round publish→all-consumed latency
// (min/mean/max), plus the two ablations DESIGN.md calls out:
//   * round-robin vs fixed-priority arbitration on port C,
//   * the event-driven static consumer order (first vs reversed).

#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "baseline/protocols.h"
#include "bench_util.h"
#include "core/compiler.h"
#include "support/rng.h"
#include "support/table.h"

using namespace hicsync;

namespace {

void add_row(support::TextTable& table, const char* name, int consumers,
             const baseline::HandoffMetrics& m) {
  char mean[32];
  std::snprintf(mean, sizeof mean, "%.1f", m.mean_latency());
  table.add_row({name, std::to_string(consumers),
                 std::to_string(m.min_latency()), mean,
                 std::to_string(m.max_latency()),
                 m.latencies_identical() ? "deterministic" : "varies",
                 m.ok ? "ok" : "FAILED"});
}

}  // namespace

int main() {
  const int rounds = 8;
  std::printf("=== hand-off latency: publish -> all consumers read "
              "(%d rounds) ===\n\n", rounds);

  support::TextTable table({"organization", "consumers", "min", "mean",
                            "max", "timing", "correct"});
  bool ok = true;
  for (int consumers : {2, 4, 8}) {
    {
      rtl::Design d;
      rtl::Module& m = memorg::generate_arbitrated(
          d, bench::arb_scenario(consumers), "arb");
      auto metrics = baseline::run_arbitrated_handoff(m, consumers, rounds);
      add_row(table, "arbitrated (round robin)", consumers, metrics);
      ok &= metrics.ok;
    }
    {
      memorg::ArbitratedConfig cfg = bench::arb_scenario(consumers);
      cfg.round_robin = false;
      rtl::Design d;
      rtl::Module& m = memorg::generate_arbitrated(d, cfg, "arb_fp");
      auto metrics = baseline::run_arbitrated_handoff(m, consumers, rounds);
      add_row(table, "arbitrated (fixed priority)", consumers, metrics);
      ok &= metrics.ok;
    }
    {
      rtl::Design d;
      rtl::Module& m = memorg::generate_eventdriven(
          d, bench::ev_scenario(consumers), "ev");
      auto metrics = baseline::run_eventdriven_handoff(m, consumers, rounds);
      add_row(table, "event-driven (pragma order)", consumers, metrics);
      ok &= metrics.ok;
    }
  }
  std::printf("%s\n", table.str().c_str());

  std::printf(
      "note: with every consumer saturated (the table above) the round-robin"
      "\norder repeats, so even the arbitrated organization settles into a "
      "periodic\npattern. §3.1's non-determinism appears under probabilistic"
      " traffic - below.\n\n");

  // ---- §3.1 non-determinism: two dependencies share one BRAM and the
  // consumers arrive probabilistically ("the writes happen when packets
  // arrive from a network and are probabilistic in nature").
  const char* kShared = R"(
    thread prod () {
      int a, b;
      #consumer{da, [ca0,u0], [ca1,u1]}
      a = f();
      #consumer{db, [cb0,v0], [cb1,v1]}
      b = g();
    }
    thread ca0 () { int u0; #producer{da, [prod,a]} u0 = w(a); }
    thread ca1 () { int u1; #producer{da, [prod,a]} u1 = w(a); }
    thread cb0 () { int v0; #producer{db, [prod,b]} v0 = w(b); }
    thread cb1 () { int v1; #producer{db, [prod,b]} v1 = w(b); }
  )";
  std::printf("=== two dependencies on one BRAM, probabilistic consumer "
              "readiness ===\n\n");
  support::TextTable jitter_table(
      {"organization", "dep", "min", "mean", "max", "timing"});
  std::map<std::string, bool> varies;
  for (sim::OrgKind kind :
       {sim::OrgKind::Arbitrated, sim::OrgKind::EventDriven}) {
    core::CompileOptions options;
    options.organization = kind;
    auto result = core::Compiler(options).compile(kShared);
    if (!result->ok()) {
      std::fprintf(stderr, "%s", result->diags().str().c_str());
      return 1;
    }
    auto simulator = result->make_simulator();
    std::uint64_t seed = 3;
    for (const char* t : {"ca0", "ca1", "cb0", "cb1"}) {
      auto rng = std::make_shared<support::Rng>(seed++);
      simulator->set_gate(
          t, [rng](std::uint64_t) { return rng->next_bool(0.35); });
    }
    if (!simulator->run_until_passes(20, 100000)) {
      std::fprintf(stderr, "jitter run stalled\n");
      return 1;
    }
    std::map<std::string, std::vector<std::uint64_t>> lats;
    std::map<std::string, int> seen;
    for (const auto& r : simulator->rounds()) {
      if (r.consume_cycles.size() < 2) continue;
      if (seen[r.dep_id]++ == 0) continue;  // warm-up
      lats[r.dep_id].push_back(r.completion_latency());
    }
    for (const auto& [dep, ls] : lats) {
      std::uint64_t lo = ls.front();
      std::uint64_t hi = ls.front();
      double sum = 0;
      for (auto l : ls) {
        lo = std::min(lo, l);
        hi = std::max(hi, l);
        sum += static_cast<double>(l);
      }
      char mean[32];
      std::snprintf(mean, sizeof mean, "%.1f",
                    sum / static_cast<double>(ls.size()));
      jitter_table.add_row({sim::to_string(kind), dep, std::to_string(lo),
                            mean, std::to_string(hi),
                            lo == hi ? "deterministic" : "varies"});
      varies[std::string(sim::to_string(kind))] |= (lo != hi);
    }
  }
  std::printf("%s\n", jitter_table.str().c_str());

  std::printf("event-driven static order ablation: consumer k reads "
              "exactly k+1 schedule\nslots after the write; reversing the "
              "#consumer pragma order exactly reverses\nwho waits longest "
              "- the compile-time knob of §3.2.\n\n");

  std::printf("§3.1/§3.2 conclusion check: arbitrated latency varies under "
              "probabilistic\ntraffic (bus-style arbitration), event-driven "
              "is fixed once consumers are\nready: %s\n",
              ok ? "reproduced" : "FAILED");
  bench::JsonBenchReport report("latency_determinism");
  report.set("rounds", rounds);
  report.set("handoff_correct", ok);
  report.set("arbitrated_latency_varies", varies["arbitrated"]);
  report.set("eventdriven_latency_varies", varies["event-driven"]);
  report.write();
  return ok ? 0 : 1;
}
