// Shared main for the google-benchmark binaries: identical to
// BENCHMARK_MAIN() except that, unless the caller passed --benchmark_out
// themselves, results are also written to `BENCH_<name>.json` (google
// benchmark's JSON reporter) — the same machine-readable convention the
// table benches follow via JsonBenchReport (support::JsonWriter format).
// perf::HistoryStore ingests both shapes into the bench-history store.
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

namespace hicsync::bench {

inline int run_gbench_with_json(int argc, char** argv,
                                const std::string& name) {
  std::vector<std::string> args(argv, argv + argc);
  bool has_out = false;
  for (const std::string& a : args) {
    if (a.rfind("--benchmark_out", 0) == 0) has_out = true;
  }
  if (!has_out) {
    args.push_back("--benchmark_out=BENCH_" + name + ".json");
    args.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> cargs;
  cargs.reserve(args.size());
  for (std::string& a : args) cargs.push_back(a.data());
  int c = static_cast<int>(cargs.size());
  benchmark::Initialize(&c, cargs.data());
  if (benchmark::ReportUnrecognizedArguments(c, cargs.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace hicsync::bench

/// Drop-in replacement for BENCHMARK_MAIN() that adds the JSON result file.
#define HICSYNC_BENCHMARK_MAIN(name)                           \
  int main(int argc, char** argv) {                            \
    return hicsync::bench::run_gbench_with_json(argc, argv, name); \
  }
