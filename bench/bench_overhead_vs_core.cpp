// §4 overhead — controller area relative to the core forwarding function.
//
// The paper: the two-port IP forwarding app totals 5430 slices, ~1000 of
// which are the core forwarding function, and "depending upon the
// partitioning (of threads) and complexity of the functions the area
// overhead can vary from 5-20%. Hence this overhead needs to be considered
// a priori in the design partitioning process."
//
// We regenerate the forwarding core (netapp/forwarding_rtl) and both
// controller families, and report each scenario's overhead twice: against
// our measured core and against the paper's 1000-slice figure.

#include <cstdio>

#include "bench_util.h"
#include "fpga/techmap.h"
#include "netapp/forwarding_rtl.h"
#include "support/table.h"

using namespace hicsync;

int main() {
  std::printf("=== §4 overhead: controller slices vs the core forwarding "
              "function ===\n\n");

  fpga::TechMapper mapper;
  rtl::Design core_design;
  auto core = mapper.map(netapp::generate_forwarding_core(
      core_design, netapp::ForwardingCoreConfig{}, "fwd_core"));
  std::printf("regenerated two-port forwarding core: LUT %d  FF %d  "
              "slices %d  BRAM %d\n",
              core.luts, core.ffs, core.slices, core.bram_blocks);
  std::printf("paper core figure: ~%d slices (of %d total app slices)\n\n",
              bench::PaperReference::kCoreSlices,
              bench::PaperReference::kAppSlices);

  support::TextTable table({"org", "P/C", "ctrl slices", "% of our core",
                            "% of paper core"});
  bool in_band_any = false;
  double lo = 1e9;
  double hi = 0;
  auto add = [&](const char* org, int consumers, int slices) {
    double pct_ours =
        100.0 * slices / (core.slices > 0 ? core.slices : 1);
    double pct_paper =
        100.0 * slices / bench::PaperReference::kCoreSlices;
    char a[32], b[32];
    std::snprintf(a, sizeof a, "%.1f%%", pct_ours);
    std::snprintf(b, sizeof b, "%.1f%%", pct_paper);
    table.add_row({org, "1/" + std::to_string(consumers),
                   std::to_string(slices), a, b});
    lo = std::min(lo, pct_paper);
    hi = std::max(hi, pct_paper);
    in_band_any |= pct_paper >= bench::PaperReference::kOverheadLowPct &&
                   pct_paper <= bench::PaperReference::kOverheadHighPct;
  };
  for (int consumers : {2, 4, 8}) {
    rtl::Design d;
    auto r = mapper.map(memorg::generate_arbitrated(
        d, bench::arb_scenario(consumers), "arb"));
    add("arbitrated", consumers, r.slices);
  }
  for (int consumers : {2, 4, 8}) {
    rtl::Design d;
    auto r = mapper.map(memorg::generate_eventdriven(
        d, bench::ev_scenario(consumers), "ev"));
    add("event-driven", consumers, r.slices);
  }
  std::printf("%s\n", table.str().c_str());

  std::printf("paper claim: overhead varies %.0f-%.0f%% of the core; "
              "measured span vs the paper's core: %.1f-%.1f%%\n",
              bench::PaperReference::kOverheadLowPct,
              bench::PaperReference::kOverheadHighPct, lo, hi);
  std::printf("per-BRAM overhead must be budgeted a priori in design "
              "partitioning (the paper's conclusion): %s\n",
              in_band_any ? "confirmed in band" : "outside the paper band");
  bench::JsonBenchReport report("overhead_vs_core");
  report.set("core_luts", core.luts);
  report.set("core_ffs", core.ffs);
  report.set("core_slices", core.slices);
  report.set("paper_core_slices", bench::PaperReference::kCoreSlices);
  report.set("overhead_pct_vs_paper_core_min", lo);
  report.set("overhead_pct_vs_paper_core_max", hi);
  report.set("paper_band_low_pct", bench::PaperReference::kOverheadLowPct);
  report.set("paper_band_high_pct", bench::PaperReference::kOverheadHighPct);
  report.set("in_paper_band", in_band_any);
  report.write();
  return 0;
}
