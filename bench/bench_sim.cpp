// Simulator micro-benchmarks (google-benchmark): cycle throughput of the
// system simulator (thread FSM interpreters over the generated controller
// netlists). Engineering data, not a paper experiment.
//
// The main additionally asserts hic-trace's zero-cost-when-off claim: a
// simulation with no trace bus and one with an empty bus attached (both
// take the branch-only fast path) must run within 2% of each other.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench_gbench_util.h"
#include "bench_util.h"
#include "core/compiler.h"
#include "cover/sink.h"
#include "netapp/scenarios.h"
#include "trace/bus.h"

using namespace hicsync;

static void BM_SystemSimCycles(benchmark::State& state) {
  core::CompileOptions options;
  options.organization = state.range(1) == 0 ? sim::OrgKind::Arbitrated
                                             : sim::OrgKind::EventDriven;
  auto result = core::Compiler(options).compile(
      netapp::fanout_source(static_cast<int>(state.range(0))));
  auto simulator = result->make_simulator();
  for (auto _ : state) {
    simulator->step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SystemSimCycles)
    ->Args({2, 0})
    ->Args({8, 0})
    ->Args({2, 1})
    ->Args({8, 1});

static void BM_ModuleSimSettleStep(benchmark::State& state) {
  memorg::ArbitratedConfig cfg;
  cfg.num_consumers = static_cast<int>(state.range(0));
  memorg::DepEntry e;
  e.base_address = 4;
  e.dependency_number = cfg.num_consumers;
  for (int i = 0; i < cfg.num_consumers; ++i) e.consumer_ports.push_back(i);
  cfg.deps.push_back(e);
  rtl::Design d;
  rtl::Module& m = memorg::generate_arbitrated(d, cfg, "arb");
  rtl::ModuleSim sim(m);
  sim.reset();
  for (auto _ : state) {
    sim.step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ModuleSimSettleStep)->Arg(2)->Arg(8);

static void BM_EndToEndHandoff(benchmark::State& state) {
  auto result = core::Compiler().compile(netapp::figure1_source());
  for (auto _ : state) {
    auto simulator = result->make_simulator();
    bool ok = simulator->run_until_passes(1, 1000);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_EndToEndHandoff);

static void BM_SystemSimCyclesEmptyTraceBus(benchmark::State& state) {
  auto result = core::Compiler().compile(netapp::fanout_source(4));
  auto simulator = result->make_simulator();
  trace::TraceBus bus;  // no sinks: active() is false, branch-only path
  simulator->set_trace(&bus);
  for (auto _ : state) {
    simulator->step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SystemSimCyclesEmptyTraceBus);

// The attached-sink cost of functional coverage: every event becomes a
// string-keyed bin lookup, so this bounds what `hicc --cover` adds on top
// of an untraced run (the zero-cost-when-off claim is the check below —
// coverage off must stay on the branch-only path).
static void BM_SystemSimCyclesCoverageSink(benchmark::State& state) {
  auto result = core::Compiler().compile(netapp::fanout_source(4));
  const cover::ModelInputs inputs = cover::inputs_from(
      result->options().organization, result->fsms(), result->memory_map(),
      result->port_plans());
  cover::CoverageModel model;
  cover::declare_model(cover::CoverRegistry::builtin(), inputs, model);
  cover::CoverageSink sink(model, inputs);
  auto simulator = result->make_simulator();
  trace::TraceBus bus;
  bus.attach(&sink);
  simulator->set_trace(&bus);
  for (auto _ : state) {
    simulator->step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SystemSimCyclesCoverageSink);

namespace {

double seconds_for_steps(sim::SystemSim& simulator, int steps) {
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < steps; ++i) simulator.step();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

// Asserts the acceptance criterion "tracing disabled costs no measurable
// slowdown": min-of-N wall time of untraced vs empty-bus runs, < 2% apart.
int check_tracing_disabled_overhead() {
  auto result = core::Compiler().compile(netapp::fanout_source(4));
  constexpr int kSteps = 20000;
  constexpr int kReps = 9;
  double best_off = 1e100;
  double best_on = 1e100;
  for (int r = 0; r < kReps; ++r) {
    {
      auto simulator = result->make_simulator();
      best_off = std::min(best_off, seconds_for_steps(*simulator, kSteps));
    }
    {
      auto simulator = result->make_simulator();
      trace::TraceBus bus;
      simulator->set_trace(&bus);
      best_on = std::min(best_on, seconds_for_steps(*simulator, kSteps));
    }
  }
  const double overhead_pct = 100.0 * (best_on - best_off) / best_off;
  const bool pass = overhead_pct < 2.0;
  std::printf("tracing-disabled overhead: untraced %.1f ns/cycle, "
              "empty bus %.1f ns/cycle, overhead %+.2f%% (limit 2%%): %s\n",
              best_off / kSteps * 1e9, best_on / kSteps * 1e9, overhead_pct,
              pass ? "PASS" : "FAIL");
  bench::JsonBenchReport report("sim_trace_overhead");
  report.set("untraced_ns_per_cycle", best_off / kSteps * 1e9);
  report.set("empty_bus_ns_per_cycle", best_on / kSteps * 1e9);
  report.set("overhead_pct", overhead_pct);
  report.set("limit_pct", 2.0);
  report.set("pass", pass);
  report.write();
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  int gbench = bench::run_gbench_with_json(argc, argv, "sim");
  if (gbench != 0) return gbench;
  return check_tracing_disabled_overhead();
}
