// Simulator micro-benchmarks (google-benchmark): cycle throughput of the
// system simulator (thread FSM interpreters over the generated controller
// netlists). Engineering data, not a paper experiment.

#include <benchmark/benchmark.h>

#include "core/compiler.h"
#include "netapp/scenarios.h"

using namespace hicsync;

static void BM_SystemSimCycles(benchmark::State& state) {
  core::CompileOptions options;
  options.organization = state.range(1) == 0 ? sim::OrgKind::Arbitrated
                                             : sim::OrgKind::EventDriven;
  auto result = core::Compiler(options).compile(
      netapp::fanout_source(static_cast<int>(state.range(0))));
  auto simulator = result->make_simulator();
  for (auto _ : state) {
    simulator->step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SystemSimCycles)
    ->Args({2, 0})
    ->Args({8, 0})
    ->Args({2, 1})
    ->Args({8, 1});

static void BM_ModuleSimSettleStep(benchmark::State& state) {
  memorg::ArbitratedConfig cfg;
  cfg.num_consumers = static_cast<int>(state.range(0));
  memorg::DepEntry e;
  e.base_address = 4;
  e.dependency_number = cfg.num_consumers;
  for (int i = 0; i < cfg.num_consumers; ++i) e.consumer_ports.push_back(i);
  cfg.deps.push_back(e);
  rtl::Design d;
  rtl::Module& m = memorg::generate_arbitrated(d, cfg, "arb");
  rtl::ModuleSim sim(m);
  sim.reset();
  for (auto _ : state) {
    sim.step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ModuleSimSettleStep)->Arg(2)->Arg(8);

static void BM_EndToEndHandoff(benchmark::State& state) {
  auto result = core::Compiler().compile(netapp::figure1_source());
  for (auto _ : state) {
    auto simulator = result->make_simulator();
    bool ok = simulator->run_until_passes(1, 1000);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_EndToEndHandoff);

BENCHMARK_MAIN();
