// Toolchain micro-benchmarks (google-benchmark): throughput of each stage
// of the compilation flow on the paper's scenarios. Not a paper experiment
// — engineering data for users of the library.

#include <benchmark/benchmark.h>

#include "bench_gbench_util.h"
#include "core/compiler.h"
#include "fpga/techmap.h"
#include "hic/parser.h"
#include "netapp/scenarios.h"
#include "rtl/verilog.h"

using namespace hicsync;

static void BM_ParseFigure1(benchmark::State& state) {
  const std::string src = netapp::figure1_source();
  for (auto _ : state) {
    support::DiagnosticEngine diags;
    hic::Program p = hic::parse_source(src, diags);
    benchmark::DoNotOptimize(p.threads.size());
  }
}
BENCHMARK(BM_ParseFigure1);

static void BM_FullCompileFanout(benchmark::State& state) {
  const std::string src =
      netapp::fanout_source(static_cast<int>(state.range(0)));
  core::Compiler compiler;
  for (auto _ : state) {
    auto r = compiler.compile(src);
    benchmark::DoNotOptimize(r->ok());
  }
}
BENCHMARK(BM_FullCompileFanout)->Arg(2)->Arg(4)->Arg(8);

static void BM_GenerateArbitrated(benchmark::State& state) {
  memorg::ArbitratedConfig cfg;
  cfg.num_consumers = static_cast<int>(state.range(0));
  memorg::DepEntry e;
  e.base_address = 4;
  e.dependency_number = cfg.num_consumers;
  for (int i = 0; i < cfg.num_consumers; ++i) e.consumer_ports.push_back(i);
  cfg.deps.push_back(e);
  for (auto _ : state) {
    rtl::Design d;
    rtl::Module& m = memorg::generate_arbitrated(d, cfg, "arb");
    benchmark::DoNotOptimize(m.nets().size());
  }
}
BENCHMARK(BM_GenerateArbitrated)->Arg(2)->Arg(8);

static void BM_TechMapArbitrated(benchmark::State& state) {
  memorg::ArbitratedConfig cfg;
  cfg.num_consumers = static_cast<int>(state.range(0));
  memorg::DepEntry e;
  e.base_address = 4;
  e.dependency_number = cfg.num_consumers;
  for (int i = 0; i < cfg.num_consumers; ++i) e.consumer_ports.push_back(i);
  cfg.deps.push_back(e);
  rtl::Design d;
  rtl::Module& m = memorg::generate_arbitrated(d, cfg, "arb");
  fpga::TechMapper mapper;
  for (auto _ : state) {
    auto r = mapper.map(m);
    benchmark::DoNotOptimize(r.luts);
  }
}
BENCHMARK(BM_TechMapArbitrated)->Arg(2)->Arg(8);

static void BM_EmitVerilog(benchmark::State& state) {
  auto result = core::Compiler().compile(netapp::figure1_source());
  for (auto _ : state) {
    std::string v = result->verilog();
    benchmark::DoNotOptimize(v.size());
  }
}
BENCHMARK(BM_EmitVerilog);

HICSYNC_BENCHMARK_MAIN("compile")
