// Toolchain micro-benchmarks (google-benchmark): throughput of each stage
// of the compilation flow on the paper's scenarios. Not a paper experiment
// — engineering data for users of the library.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_gbench_util.h"
#include "bound/bound.h"
#include "core/compiler.h"
#include "fpga/techmap.h"
#include "hic/parser.h"
#include "netapp/scenarios.h"
#include "perf/profile.h"
#include "rtl/verilog.h"

using namespace hicsync;

static void BM_ParseFigure1(benchmark::State& state) {
  const std::string src = netapp::figure1_source();
  for (auto _ : state) {
    support::DiagnosticEngine diags;
    hic::Program p = hic::parse_source(src, diags);
    benchmark::DoNotOptimize(p.threads.size());
  }
}
BENCHMARK(BM_ParseFigure1);

static void BM_FullCompileFanout(benchmark::State& state) {
  const std::string src =
      netapp::fanout_source(static_cast<int>(state.range(0)));
  core::Compiler compiler;
  for (auto _ : state) {
    auto r = compiler.compile(src);
    benchmark::DoNotOptimize(r->ok());
  }
}
BENCHMARK(BM_FullCompileFanout)->Arg(2)->Arg(4)->Arg(8);

// The same compile with the hic-perf pass profiler attached — the delta
// against BM_FullCompileFanout/8 is the cost of `hicc --profile`.
static void BM_FullCompileFanoutProfiled(benchmark::State& state) {
  const std::string src =
      netapp::fanout_source(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    perf::PassTimer timer;
    core::CompileOptions options;
    options.profiler = &timer;
    core::Compiler compiler(options);
    auto r = compiler.compile(src);
    benchmark::DoNotOptimize(r->ok());
    benchmark::DoNotOptimize(timer.total_wall_ns());
  }
}
BENCHMARK(BM_FullCompileFanoutProfiled)->Arg(8);

// hic-bound over the Table 1/2 fan-out ladder: the compile (front end +
// allocation + port planning, lint-only) happens once outside the loop;
// the measured region is the abstract interpretation itself — the
// milliseconds-at-1024 claim behind the static analysis.
static void BM_BoundAnalysisFanout(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  core::CompileOptions copts;
  copts.lint.enabled = true;
  copts.lint.only = true;
  core::Compiler compiler(copts);
  auto c = compiler.compile(netapp::fanout_source(n));
  bound::BoundOptions bopts;
  bopts.enabled = true;
  for (auto _ : state) {
    bound::BoundResult r =
        bound::run_bound(c->program(), c->sema(), c->memory_map(),
                         c->port_plans(), sim::OrgKind::Arbitrated, bopts);
    benchmark::DoNotOptimize(r.worklist_steps);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_BoundAnalysisFanout)->Arg(64)->Arg(256)->Arg(1024);

// Cost of one disabled ScopedPhase bracket (the default path every
// Compiler::compile pays): a null-check on entry and exit.
static void BM_ScopedPhaseDisabled(benchmark::State& state) {
  for (auto _ : state) {
    perf::ScopedPhase phase(nullptr, "off");
    benchmark::DoNotOptimize(&phase);
  }
}
BENCHMARK(BM_ScopedPhaseDisabled);

static void BM_GenerateArbitrated(benchmark::State& state) {
  memorg::ArbitratedConfig cfg;
  cfg.num_consumers = static_cast<int>(state.range(0));
  memorg::DepEntry e;
  e.base_address = 4;
  e.dependency_number = cfg.num_consumers;
  for (int i = 0; i < cfg.num_consumers; ++i) e.consumer_ports.push_back(i);
  cfg.deps.push_back(e);
  for (auto _ : state) {
    rtl::Design d;
    rtl::Module& m = memorg::generate_arbitrated(d, cfg, "arb");
    benchmark::DoNotOptimize(m.nets().size());
  }
}
BENCHMARK(BM_GenerateArbitrated)->Arg(2)->Arg(8);

static void BM_TechMapArbitrated(benchmark::State& state) {
  memorg::ArbitratedConfig cfg;
  cfg.num_consumers = static_cast<int>(state.range(0));
  memorg::DepEntry e;
  e.base_address = 4;
  e.dependency_number = cfg.num_consumers;
  for (int i = 0; i < cfg.num_consumers; ++i) e.consumer_ports.push_back(i);
  cfg.deps.push_back(e);
  rtl::Design d;
  rtl::Module& m = memorg::generate_arbitrated(d, cfg, "arb");
  fpga::TechMapper mapper;
  for (auto _ : state) {
    auto r = mapper.map(m);
    benchmark::DoNotOptimize(r.luts);
  }
}
BENCHMARK(BM_TechMapArbitrated)->Arg(2)->Arg(8);

static void BM_EmitVerilog(benchmark::State& state) {
  auto result = core::Compiler().compile(netapp::figure1_source());
  for (auto _ : state) {
    std::string v = result->verilog();
    benchmark::DoNotOptimize(v.size());
  }
}
BENCHMARK(BM_EmitVerilog);

// Asserted invariant (ISSUE 3 / docs/OBSERVABILITY.md): with no profiler
// attached, a ScopedPhase bracket is a single branch — it must not cost
// measurably more than a handful of ns even under sanitizers-off debug
// builds. Run before the benchmarks so a violation fails the binary.
static bool assert_disabled_profiler_is_a_branch() {
  constexpr int kIters = 1 << 20;
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    perf::ScopedPhase phase(nullptr, "off");
    benchmark::DoNotOptimize(&phase);
  }
  auto t1 = std::chrono::steady_clock::now();
  const double ns_per =
      std::chrono::duration<double, std::nano>(t1 - t0).count() / kIters;
  // A clock read alone is ~20ns; a branch pair is well under 5ns. 10ns
  // keeps the assertion robust on loaded CI machines while still
  // catching an accidental unconditional steady_clock::now().
  const bool ok = ns_per < 10.0;
  std::printf("disabled ScopedPhase: %.2f ns per bracket (limit 10) — %s\n",
              ns_per, ok ? "ok" : "FAIL");
  return ok;
}

// Asserted invariant (hic-perf convention): the bound phase is strictly
// opt-in. A profiled compile without --bound must not contain a "bound"
// pass; with it, the pass and its counters must appear.
static bool assert_bound_phase_is_opt_in() {
  auto has_bound_phase = [](bool enabled) {
    perf::PassTimer timer;
    core::CompileOptions options;
    options.profiler = &timer;
    options.lint.enabled = true;
    options.lint.only = true;
    options.bound.enabled = enabled;
    core::Compiler compiler(options);
    auto r = compiler.compile(netapp::figure1_source());
    if (!r->ok()) return true;  // force a FAIL either way
    for (const perf::PassTimer::Phase& p : timer.phases()) {
      if (p.name == "bound") return true;
    }
    return false;
  };
  const bool off = has_bound_phase(false);
  const bool on = has_bound_phase(true);
  const bool ok = !off && on;
  std::printf("bound phase opt-in: disabled=%s enabled=%s — %s\n",
              off ? "present" : "absent", on ? "present" : "absent",
              ok ? "ok" : "FAIL");
  return ok;
}

int main(int argc, char** argv) {
  if (!assert_disabled_profiler_is_a_branch()) return 1;
  if (!assert_bound_phase_is_opt_in()) return 1;
  return hicsync::bench::run_gbench_with_json(argc, argv, "compile");
}
