// Table 2 — "Required area for event-driven statically scheduled memory
// organization".
//
// Same sweep and conventions as Table 1. The paper's numeric cells were
// lost in the scrape; the reproducible shape: FF constant, LUT growing
// with consumer count, and (from comparing the two organizations in §4)
// the event-driven controller is the leaner of the two — no CAM, no
// arbiter, a static mux network.

#include <cstdio>

#include "bench_util.h"
#include "fpga/techmap.h"
#include "support/table.h"

using namespace hicsync;

int main() {
  std::printf("=== Table 2: required area, event-driven statically "
              "scheduled memory organization ===\n\n");

  support::TextTable table({"P/C", "LUT", "FF", "Slices", "BRAM"});
  fpga::TechMapper mapper;
  bench::JsonBenchReport report("table2_eventdriven_area");
  int prev_lut = 0;
  int first_ff = -1;
  bool shape_ok = true;
  for (int consumers : {2, 4, 8}) {
    rtl::Design design;
    rtl::Module& m = memorg::generate_eventdriven(
        design, bench::ev_scenario(consumers), "ev");
    auto r = mapper.map(m);
    table.add_row({"1/" + std::to_string(consumers),
                   std::to_string(r.luts), std::to_string(r.ffs),
                   std::to_string(r.slices), std::to_string(r.bram_blocks)});
    const std::string prefix = "c" + std::to_string(consumers) + ".";
    report.set(prefix + "luts", r.luts);
    report.set(prefix + "ffs", r.ffs);
    report.set(prefix + "slices", r.slices);
    report.set(prefix + "bram_blocks", r.bram_blocks);
    if (first_ff < 0) first_ff = r.ffs;
    shape_ok &= (r.ffs == first_ff);
    shape_ok &= (r.luts > prev_lut);
    prev_lut = r.luts;
  }
  std::printf("%s\n", table.str().c_str());

  // Cross-table shape: event-driven leaner than arbitrated at each point.
  bool leaner = true;
  for (int consumers : {2, 4, 8}) {
    rtl::Design d1;
    auto arb = mapper.map(memorg::generate_arbitrated(
        d1, bench::arb_scenario(consumers), "arb"));
    rtl::Design d2;
    auto ev = mapper.map(memorg::generate_eventdriven(
        d2, bench::ev_scenario(consumers), "ev"));
    leaner &= ev.luts < arb.luts;
  }
  std::printf("shape checks:\n");
  std::printf("  FF constant across consumer counts: %s\n",
              shape_ok ? "yes" : "NO");
  std::printf("  LUT monotonically increasing with consumers: %s\n",
              shape_ok ? "yes" : "NO");
  std::printf("  event-driven leaner than arbitrated at every point: %s\n",
              leaner ? "yes" : "NO");
  report.set("shape_ok", shape_ok);
  report.set("leaner_than_arbitrated", leaner);
  report.write();
  return (shape_ok && leaner) ? 0 : 1;
}
