// §6 future work — dependency-list size scaling.
//
// "We have not yet investigated the impact of large amount of data
// dependencies on the size of list in arbitrated memory organization and
// this is part of current research."
//
// We sweep the number of dependency-list entries and report the arbitrated
// controller's area for both lookup implementations:
//   * CAM (the paper's choice): parallel comparators, area grows with
//     entries × pseudo-ports, single-cycle lookup;
//   * serial scan (ablation): one shared comparator per pseudo-port, area
//     nearly flat, lookup takes up to |entries| extra cycles.

#include <cstdio>

#include "bench_util.h"
#include "fpga/techmap.h"
#include "fpga/timing.h"
#include "support/table.h"

using namespace hicsync;

namespace {

memorg::ArbitratedConfig with_entries(int entries, bool use_cam) {
  memorg::ArbitratedConfig cfg = bench::arb_scenario(2);
  cfg.use_cam = use_cam;
  for (int e = 1; e < entries; ++e) {
    memorg::DepEntry entry;
    entry.id = "d" + std::to_string(e);
    entry.base_address = static_cast<std::uint32_t>(8 + 4 * e);
    entry.dependency_number = 2;
    entry.producer_port = 0;
    entry.consumer_ports = {0, 1};
    cfg.deps.push_back(std::move(entry));
  }
  return cfg;
}

}  // namespace

int main() {
  std::printf("=== §6: dependency-list size scaling (arbitrated, 1 "
              "producer / 2 consumers) ===\n\n");

  support::TextTable table({"entries", "CAM LUT", "CAM slices",
                            "CAM Fmax(MHz)", "scan LUT", "scan slices",
                            "scan Fmax(MHz)", "scan extra cycles"});
  fpga::TechMapper mapper;
  bench::JsonBenchReport report("deplist_scaling");
  bool cam_grows = true;
  int prev_cam = 0;
  for (int entries : {1, 2, 4, 8, 16, 32, 64}) {
    rtl::Design d1;
    auto cam = mapper.map(memorg::generate_arbitrated(
        d1, with_entries(entries, true), "cam"));
    auto cam_t = fpga::estimate_timing(cam, false);
    rtl::Design d2;
    auto scan = mapper.map(memorg::generate_arbitrated(
        d2, with_entries(entries, false), "scan"));
    auto scan_t = fpga::estimate_timing(scan, false);
    char cfx[32], sfx[32];
    std::snprintf(cfx, sizeof cfx, "%.1f", cam_t.fmax_mhz);
    std::snprintf(sfx, sizeof sfx, "%.1f", scan_t.fmax_mhz);
    table.add_row({std::to_string(entries), std::to_string(cam.luts),
                   std::to_string(cam.slices), cfx,
                   std::to_string(scan.luts), std::to_string(scan.slices),
                   sfx, "<= " + std::to_string(entries)});
    cam_grows &= cam.luts >= prev_cam;
    prev_cam = cam.luts;
    const std::string prefix = "entries" + std::to_string(entries) + ".";
    report.set(prefix + "cam_luts", cam.luts);
    report.set(prefix + "cam_slices", cam.slices);
    report.set(prefix + "cam_fmax_mhz", cam_t.fmax_mhz);
    report.set(prefix + "scan_luts", scan.luts);
    report.set(prefix + "scan_slices", scan.slices);
    report.set(prefix + "scan_fmax_mhz", scan_t.fmax_mhz);
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "finding: the CAM's comparator bank grows linearly with the list "
      "(~2x the\nserial scan's LUTs at 64 entries). Because the lookup "
      "lands in a register\nstage, Fmax stays insensitive until the match "
      "tree outgrows the arbiter cone;\nthe cost of scaling is area first, "
      "then lookup latency if one switches to the\nscan - the trade behind "
      "the scaling question §6 leaves open.\n");
  report.set("cam_lut_monotonic", cam_grows);
  report.write();
  return cam_grows ? 0 : 1;
}
