// Shared helpers for the benchmark harness: the paper's reference values
// (where the scraped text preserved them) and scenario construction, plus
// the machine-readable result file every bench emits.
#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "memorg/arbitrated.h"
#include "memorg/eventdriven.h"
#include "support/json.h"

namespace hicsync::bench {

/// Flat key→value result file: `BENCH_<name>.json` in the working
/// directory, one object, insertion-ordered keys. The human-readable table
/// stays on stdout; this is the CI/plotting interface —
/// `perf::HistoryStore` (and `hic-report`) ingest these files.
/// Serialization and escaping live in support::JsonWriter, shared with the
/// history store; values are kept preformatted so the emitted number
/// format (%.4f doubles) stays stable across runs.
class JsonBenchReport {
 public:
  explicit JsonBenchReport(std::string name) : name_(std::move(name)) {}

  void set(const std::string& key, const std::string& value) {
    entries_.emplace_back(key,
                          "\"" + support::json_escape(value) + "\"");
  }
  void set(const std::string& key, const char* value) {
    set(key, std::string(value));
  }
  void set(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.4f", value);
    entries_.emplace_back(key, buf);
  }
  void set(const std::string& key, std::int64_t value) {
    entries_.emplace_back(key, std::to_string(value));
  }
  void set(const std::string& key, std::uint64_t value) {
    entries_.emplace_back(key, std::to_string(value));
  }
  void set(const std::string& key, int value) {
    set(key, static_cast<std::int64_t>(value));
  }
  void set(const std::string& key, bool value) {
    entries_.emplace_back(key, value ? "true" : "false");
  }

  [[nodiscard]] std::string path() const {
    return "BENCH_" + name_ + ".json";
  }

  /// Serializes and writes the report; returns false if the file could not
  /// be opened.
  bool write() const {
    std::ofstream out(path());
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path().c_str());
      return false;
    }
    out << str();
    std::printf("wrote %s\n", path().c_str());
    return true;
  }

  [[nodiscard]] std::string str() const {
    support::JsonWriter w;
    w.begin_object().key("bench").value(name_);
    for (const auto& [key, value] : entries_) {
      w.key(key).raw(value);
    }
    w.end_object();
    return w.str() + "\n";
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// §4 reference values that survive in the paper's prose. The numeric cells
/// of Tables 1 and 2 were lost in the text scrape (see DESIGN.md); these
/// are the quantitative anchors we check shape against.
struct PaperReference {
  // "The constant flip-flop count is due to the baseline architecture ...
  // which requires 66 flip-flops."
  static constexpr int kArbitratedBaselineFf = 66;
  // "For each case, 125 MHz was the target clock rate."
  static constexpr double kTargetMhz = 125.0;
  // "We achieved timing of 125.x MHz, 130 MHz, and 158 MHz for the 8, 4,
  // and 2 consumer thread cases respectively." (8-consumer value truncated
  // in the scrape; >= the 125 MHz target per the surrounding text.)
  static constexpr double kArbFmax2 = 158.0;
  static constexpr double kArbFmax4 = 130.0;
  static constexpr double kArbFmax8 = 125.0;  // lower bound
  // "we achieved timing of 129 MHz, 136 MHz, and 177 MHz for 8, 4, and 2
  // consumer thread cases" (event-driven).
  static constexpr double kEvFmax2 = 177.0;
  static constexpr double kEvFmax4 = 136.0;
  static constexpr double kEvFmax8 = 129.0;
  // "a total of 5430 slices, of which around 1000 slices were for the core
  // forwarding function" and "the area overhead can vary from 5-20%".
  static constexpr int kAppSlices = 5430;
  static constexpr int kCoreSlices = 1000;
  static constexpr double kOverheadLowPct = 5.0;
  static constexpr double kOverheadHighPct = 20.0;
};

/// The Table 1/2 scenario: one producer, `consumers` pseudo-ports, one
/// dependency on one BRAM (data at address 4), 9-bit addresses, 32-bit
/// data — the "single BRAM memory with different number of threads as
/// consumers and a single thread as a producer" of §4.
inline memorg::ArbitratedConfig arb_scenario(int consumers) {
  memorg::ArbitratedConfig cfg;
  cfg.num_consumers = consumers;
  cfg.num_producers = 1;
  memorg::DepEntry e;
  e.id = "pkt";
  e.base_address = 4;
  e.dependency_number = consumers;
  e.producer_port = 0;
  for (int i = 0; i < consumers; ++i) e.consumer_ports.push_back(i);
  cfg.deps.push_back(std::move(e));
  return cfg;
}

inline memorg::EventDrivenConfig ev_scenario(int consumers) {
  memorg::EventDrivenConfig cfg;
  cfg.num_consumers = consumers;
  cfg.num_producers = 1;
  memorg::DepEntry e;
  e.id = "pkt";
  e.base_address = 4;
  e.dependency_number = consumers;
  e.producer_port = 0;
  for (int i = 0; i < consumers; ++i) e.consumer_ports.push_back(i);
  cfg.deps.push_back(std::move(e));
  return cfg;
}

}  // namespace hicsync::bench
