// §4 timing — achieved clock rates vs the 125 MHz target.
//
// The paper: arbitrated 158 / 130 / ~125 MHz and event-driven 177 / 136 /
// 129 MHz for 2 / 4 / 8 consumers (synthesis unconstrained, post-P&R).
// We estimate Fmax from the technology-mapped logic depth of the generated
// controllers (see fpga/timing.h for the delay model and DESIGN.md for the
// substitution note). Absolute numbers depend on the calibration; the
// shape the paper's conclusions rest on is checked:
//   * Fmax decreases as consumers are added (both organizations),
//   * the event-driven organization is faster at every point,
//   * the gap narrows at 8 consumers (both approach the target).

#include <cstdio>

#include "bench_util.h"
#include "fpga/techmap.h"
#include "fpga/timing.h"
#include "support/table.h"

using namespace hicsync;

int main() {
  std::printf("=== In-text timing of §4: achieved Fmax per organization "
              "===\n");
  std::printf("target clock: %.0f MHz (paper); values are estimates from "
              "mapped logic depth\n\n",
              bench::PaperReference::kTargetMhz);

  const double paper_arb[3] = {bench::PaperReference::kArbFmax2,
                               bench::PaperReference::kArbFmax4,
                               bench::PaperReference::kArbFmax8};
  const double paper_ev[3] = {bench::PaperReference::kEvFmax2,
                              bench::PaperReference::kEvFmax4,
                              bench::PaperReference::kEvFmax8};

  support::TextTable table({"org", "consumers", "levels", "Fmax est (MHz)",
                            "paper (MHz)"});
  fpga::TechMapper mapper;
  double arb_fmax[3];
  double ev_fmax[3];
  const int counts[3] = {2, 4, 8};
  for (int i = 0; i < 3; ++i) {
    rtl::Design d;
    auto r = mapper.map(memorg::generate_arbitrated(
        d, bench::arb_scenario(counts[i]), "arb"));
    auto t = fpga::estimate_timing(r, /*launches_from_bram=*/false);
    arb_fmax[i] = t.fmax_mhz;
    char fmax[32];
    std::snprintf(fmax, sizeof fmax, "%.1f", t.fmax_mhz);
    char paper[32];
    std::snprintf(paper, sizeof paper, "%.0f", paper_arb[i]);
    table.add_row({"arbitrated", std::to_string(counts[i]),
                   std::to_string(t.logic_levels), fmax, paper});
  }
  for (int i = 0; i < 3; ++i) {
    rtl::Design d;
    auto r = mapper.map(memorg::generate_eventdriven(
        d, bench::ev_scenario(counts[i]), "ev"));
    auto t = fpga::estimate_timing(r, /*launches_from_bram=*/false);
    ev_fmax[i] = t.fmax_mhz;
    char fmax[32];
    std::snprintf(fmax, sizeof fmax, "%.1f", t.fmax_mhz);
    char paper[32];
    std::snprintf(paper, sizeof paper, "%.0f", paper_ev[i]);
    table.add_row({"event-driven", std::to_string(counts[i]),
                   std::to_string(t.logic_levels), fmax, paper});
  }
  std::printf("%s\n", table.str().c_str());

  bool decreasing = arb_fmax[0] > arb_fmax[1] && arb_fmax[1] > arb_fmax[2] &&
                    ev_fmax[0] > ev_fmax[1] && ev_fmax[1] > ev_fmax[2];
  bool ev_faster = ev_fmax[0] > arb_fmax[0] && ev_fmax[1] > arb_fmax[1] &&
                   ev_fmax[2] > arb_fmax[2];
  std::printf("shape checks:\n");
  std::printf("  Fmax decreases with consumer count: %s\n",
              decreasing ? "yes" : "NO");
  std::printf("  event-driven faster than arbitrated at every point: %s "
              "(paper ratios 1.12/1.05/1.03; measured %.2f/%.2f/%.2f)\n",
              ev_faster ? "yes" : "NO", ev_fmax[0] / arb_fmax[0],
              ev_fmax[1] / arb_fmax[1], ev_fmax[2] / arb_fmax[2]);
  std::printf("  decline 2->8 consumers: paper arb %.2fx / ev %.2fx; "
              "measured arb %.2fx / ev %.2fx\n",
              paper_arb[0] / paper_arb[2], paper_ev[0] / paper_ev[2],
              arb_fmax[0] / arb_fmax[2], ev_fmax[0] / ev_fmax[2]);
  bench::JsonBenchReport report("timing_fmax");
  for (int i = 0; i < 3; ++i) {
    const std::string c = "c" + std::to_string(counts[i]) + ".";
    report.set(c + "arbitrated_fmax_mhz", arb_fmax[i]);
    report.set(c + "eventdriven_fmax_mhz", ev_fmax[i]);
    report.set(c + "paper_arbitrated_mhz", paper_arb[i]);
    report.set(c + "paper_eventdriven_mhz", paper_ev[i]);
  }
  report.set("fmax_decreasing_with_consumers", decreasing);
  report.set("eventdriven_faster_everywhere", ev_faster);
  report.write();
  return (decreasing && ev_faster) ? 0 : 1;
}
